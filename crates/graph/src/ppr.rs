//! PageRank and personalized PageRank (PPR).
//!
//! PPR is Hive's spreading-activation workhorse: the active workpad seeds
//! a restart distribution over knowledge-network nodes, and the stationary
//! distribution ranks every other node by contextual relevance (paper
//! §2.3 "Hive propagates the concepts within the relevant neighborhoods of
//! the knowledge network ... based on the current active context").

use crate::csr::CsrView;
use crate::graph::{Graph, NodeId};
use hive_par::{atomic_vec, chunk_count, par_map, par_rounds, plain_vec, with_threads, AtomicF64};
use std::collections::HashMap;

/// Below this many edges a power iteration runs on the calling thread:
/// the per-round barrier cost would exceed the per-round work. The gate
/// depends only on graph size, and the serial path is bit-identical to
/// the parallel one, so results never change — only scheduling.
const PAR_EDGE_THRESHOLD: usize = 32_768;

/// Below this many nodes the top-k scoring pass stays serial.
const PAR_TOPK_THRESHOLD: usize = 4_096;

/// Parameters for (personalized) PageRank.
#[derive(Clone, Copy, Debug)]
pub struct PprConfig {
    /// Damping factor (probability of following an edge vs. restarting).
    pub damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig { damping: 0.85, tolerance: 1e-9, max_iters: 200 }
    }
}

/// Power-iteration PageRank with a restart distribution.
///
/// `seeds` maps seed nodes to restart mass; it is normalized internally.
/// Empty `seeds` means uniform restart (classic PageRank). Dangling mass
/// is redistributed to the restart vector, so the result always sums to 1.
pub fn personalized_pagerank(
    g: &Graph,
    seeds: &HashMap<NodeId, f64>,
    cfg: PprConfig,
) -> Vec<f64> {
    personalized_pagerank_csr(&CsrView::build(g), seeds, cfg)
}

/// Power-iteration PPR over a prebuilt [`CsrView`] snapshot.
///
/// The iteration is *pull-based*: `next[v]` is assembled from `v`'s
/// incoming edges, so every element of `next` is an independent
/// computation and the hive-par chunked schedule cannot change any
/// value. The per-iteration L1 delta and the next round's dangling mass
/// are folded per chunk and merged in chunk order, keeping the whole
/// run bit-identical for any `HIVE_THREADS`.
pub fn personalized_pagerank_csr(
    csr: &CsrView,
    seeds: &HashMap<NodeId, f64>,
    cfg: PprConfig,
) -> Vec<f64> {
    let n = csr.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Restart vector. The seed map is materialized in node order
    // before any mass is summed: floating-point addition is
    // order-sensitive, and iterating the map directly would make the
    // normalizer (and through it every rank) drift by an ulp between
    // otherwise identical runs.
    let mut restart = vec![0.0f64; n];
    // lint:allow(determinism-taint) -- sorted into node order on the next line
    let mut seed_list: Vec<(NodeId, f64)> = seeds.iter().map(|(&k, &v)| (k, v)).collect();
    seed_list.sort_by_key(|&(node, _)| node.index());
    let seed_sum: f64 = seed_list.iter().map(|&(_, mass)| mass).sum();
    if seed_list.is_empty() || seed_sum <= 0.0 {
        for r in &mut restart {
            *r = 1.0 / n as f64;
        }
    } else {
        for &(node, mass) in &seed_list {
            restart[node.index()] += mass / seed_sum;
        }
    }
    let d = cfg.damping;
    // Double-buffered rank state; round parity picks source and
    // destination. Atomic cells let disjoint chunks write through `&`.
    let bufs = [atomic_vec(&restart), atomic_vec(&vec![0.0; n])];
    let n_chunks = chunk_count(n);
    let deltas = atomic_vec(&vec![0.0; n_chunks]);
    let dangle_parts = atomic_vec(&vec![0.0; n_chunks]);
    let dangling0: f64 =
        (0..n).filter(|&i| csr.out_weight[i] == 0.0).map(|i| restart[i]).sum();
    let cur_dangling = AtomicF64::new(dangling0);
    let mut executed = 0usize;
    let mut run = || {
        par_rounds(
            n,
            cfg.max_iters,
            |r, ci, range| {
                let (src, dst) =
                    if r % 2 == 0 { (&bufs[0], &bufs[1]) } else { (&bufs[1], &bufs[0]) };
                // Restart mass plus redistributed dangling mass.
                let base = 1.0 - d + d * cur_dangling.load();
                let mut delta = 0.0;
                let mut dangle = 0.0;
                for i in range {
                    let lo = csr.in_off[i] as usize;
                    let hi = csr.in_off[i + 1] as usize;
                    let mut pulled = 0.0;
                    for e in lo..hi {
                        pulled += src[csr.in_src[e] as usize].load() * csr.in_coef[e];
                    }
                    let v = base * restart[i] + d * pulled;
                    dst[i].store(v);
                    delta += (v - src[i].load()).abs();
                    if csr.out_weight[i] == 0.0 {
                        dangle += v;
                    }
                }
                deltas[ci].store(delta);
                dangle_parts[ci].store(dangle);
            },
            |_r| {
                executed += 1;
                let delta: f64 = deltas.iter().map(AtomicF64::load).sum();
                cur_dangling.store(dangle_parts.iter().map(AtomicF64::load).sum());
                delta >= cfg.tolerance
            },
        );
    };
    if csr.edge_count() < PAR_EDGE_THRESHOLD {
        with_threads(1, run);
    } else {
        run();
    }
    // Round r writes bufs[(r + 1) % 2]; after `executed` rounds the
    // freshest ranks live in bufs[executed % 2] (restart itself if 0).
    plain_vec(&bufs[executed % 2])
}

/// Classic PageRank (uniform restart).
pub fn pagerank(g: &Graph, cfg: PprConfig) -> Vec<f64> {
    personalized_pagerank(g, &HashMap::new(), cfg)
}

/// Convenience: ranks all nodes by PPR score, descending, excluding seeds.
pub fn top_k_excluding_seeds(
    g: &Graph,
    seeds: &HashMap<NodeId, f64>,
    k: usize,
    cfg: PprConfig,
) -> Vec<(NodeId, f64)> {
    let scores = personalized_pagerank(g, seeds, cfg);
    let mut ranked: Vec<(NodeId, f64)> = if g.node_count() >= PAR_TOPK_THRESHOLD {
        let nodes: Vec<NodeId> = g.nodes().collect();
        par_map(&nodes, |&u| (u, scores[u.index()]))
            .into_iter()
            .filter(|(u, _)| !seeds.contains_key(u))
            .collect()
    } else {
        g.nodes().filter(|n| !seeds.contains_key(n)).map(|n| (n, scores[n.index()])).collect()
    };
    // Bounded partial select: the comparator is a total order (NodeId
    // breaks exact-score ties), so selecting the k-th element and then
    // sorting only the kept prefix returns exactly what the old
    // full-sort-then-truncate produced.
    let cmp = |a: &(NodeId, f64), b: &(NodeId, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    if k == 0 {
        ranked.clear();
    } else if k < ranked.len() {
        ranked.select_nth_unstable_by(k - 1, cmp);
        ranked.truncate(k);
    }
    ranked.sort_by(cmp);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_sum(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn pagerank_sums_to_one() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(c, a, 1.0);
        let pr = pagerank(&g, PprConfig::default());
        assert!((approx_sum(&pr) - 1.0).abs() < 1e-6);
        // Symmetric cycle: all equal.
        assert!((pr[0] - pr[1]).abs() < 1e-6);
        assert!((pr[1] - pr[2]).abs() < 1e-6);
    }

    #[test]
    fn dangling_mass_conserved() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b"); // dangling
        g.add_edge(a, b, 1.0);
        let pr = pagerank(&g, PprConfig::default());
        assert!((approx_sum(&pr) - 1.0).abs() < 1e-6);
        assert!(pr[b.index()] > pr[a.index()]);
    }

    #[test]
    fn personalization_biases_toward_seed_neighborhood() {
        // Two triangles joined by a weak bridge.
        let mut g = Graph::new();
        let ids: Vec<_> = (0..6).map(|i| g.add_node(format!("n{i}"))).collect();
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_undirected_edge(ids[u], ids[v], 1.0);
        }
        g.add_undirected_edge(ids[2], ids[3], 0.05);
        let mut seeds = HashMap::new();
        seeds.insert(ids[0], 1.0);
        let ppr = personalized_pagerank(&g, &seeds, PprConfig::default());
        // Every node in the seed triangle outranks every node across the bridge.
        for &near in &[0usize, 1, 2] {
            for &far in &[3usize, 4, 5] {
                assert!(
                    ppr[ids[near].index()] > ppr[ids[far].index()],
                    "n{near} should outrank n{far}"
                );
            }
        }
    }

    #[test]
    fn top_k_excludes_seeds() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_undirected_edge(a, b, 1.0);
        let mut seeds = HashMap::new();
        seeds.insert(a, 1.0);
        let top = top_k_excluding_seeds(&g, &seeds, 10, PprConfig::default());
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, b);
    }

    #[test]
    fn top_k_partial_select_matches_full_sort() {
        // Ring with varied weights plus exact ties (isolated nodes all
        // score alike), so the NodeId tie-break is exercised.
        let mut g = Graph::new();
        let ids: Vec<_> = (0..40).map(|i| g.add_node(format!("n{i}"))).collect();
        for i in 0..30usize {
            g.add_undirected_edge(ids[i], ids[(i + 1) % 30], 0.2 + (i % 7) as f64 * 0.3);
        }
        let mut seeds = HashMap::new();
        seeds.insert(ids[4], 1.0);
        let scores = personalized_pagerank(&g, &seeds, PprConfig::default());
        let mut full: Vec<(NodeId, f64)> = g
            .nodes()
            .filter(|n| !seeds.contains_key(n))
            .map(|n| (n, scores[n.index()]))
            .collect();
        full.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for k in [0usize, 1, 7, 39, 40, 64] {
            let mut expect = full.clone();
            expect.truncate(k);
            let got = top_k_excluding_seeds(&g, &seeds, k, PprConfig::default());
            assert_eq!(got.len(), expect.len(), "k={k}");
            for (a, b) in got.iter().zip(&expect) {
                assert_eq!(a.0, b.0, "k={k}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert!(pagerank(&g, PprConfig::default()).is_empty());
    }

    #[test]
    fn weighted_edges_split_proportionally() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 3.0);
        g.add_edge(a, c, 1.0);
        // Make b and c non-dangling so the comparison is purely edge-driven.
        g.add_edge(b, a, 1.0);
        g.add_edge(c, a, 1.0);
        let pr = pagerank(&g, PprConfig::default());
        assert!(pr[b.index()] > pr[c.index()]);
    }
}
