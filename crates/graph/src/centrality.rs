//! Centrality measures used to rank peers and resources.

use crate::graph::{Graph, NodeId};
use crate::shortest::dijkstra;
use hive_par::{par_map, par_reduce, with_threads};
use hive_rng::{Rng, SliceRandom};

/// Below this many sources the per-source sweeps stay serial; the gate
/// depends only on input size, and hive-par's chunk-ordered merge keeps
/// serial and parallel results bit-identical anyway.
const PAR_SOURCE_THRESHOLD: usize = 16;

/// Elementwise vector add, used to merge per-chunk score partials in
/// chunk order.
fn merge_scores(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// Weighted degree centrality (sum of out-edge weights) per node.
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    g.nodes().map(|u| g.out_weight(u)).collect()
}

/// Harmonic centrality per node: `sum over v != u of 1 / d(u, v)`.
///
/// Edge weights are treated as *costs*. Exact (all-sources) — prefer
/// [`harmonic_centrality_sampled`] on large graphs.
pub fn harmonic_centrality(g: &Graph) -> Vec<f64> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let one_source = |&u: &NodeId| -> f64 {
        let dm = dijkstra(g, u);
        g.nodes()
            .filter(|&v| v != u)
            .map(|v| {
                let d = dm.distance(v);
                if d.is_finite() && d > 0.0 {
                    1.0 / d
                } else {
                    0.0
                }
            })
            .sum()
    };
    if nodes.len() < PAR_SOURCE_THRESHOLD {
        with_threads(1, || par_map(&nodes, one_source))
    } else {
        par_map(&nodes, one_source)
    }
}

/// Sampled approximation of *inbound* harmonic centrality.
///
/// Runs Dijkstra from `samples` random pivot sources and accumulates
/// `1/d(pivot, v)` into each reachable `v`, scaled by `n/samples`.
pub fn harmonic_centrality_sampled(g: &Graph, samples: usize, seed: u64) -> Vec<f64> {
    let n = g.node_count();
    let mut scores = vec![0.0f64; n];
    if n == 0 || samples == 0 {
        return scores;
    }
    let mut pivots: Vec<NodeId> = g.nodes().collect();
    let mut rng = Rng::seed_from_u64(seed);
    pivots.shuffle(&mut rng);
    pivots.truncate(samples.min(n));
    let scale = n as f64 / pivots.len() as f64;
    let fold = |mut acc: Vec<f64>, &p: &NodeId| -> Vec<f64> {
        let dm = dijkstra(g, p);
        for v in g.nodes() {
            if v == p {
                continue;
            }
            let d = dm.distance(v);
            if d.is_finite() && d > 0.0 {
                acc[v.index()] += scale / d;
            }
        }
        acc
    };
    let reduce = || par_reduce(&pivots, || vec![0.0f64; n], fold, merge_scores);
    scores = if pivots.len() < PAR_SOURCE_THRESHOLD { with_threads(1, reduce) } else { reduce() };
    scores
}

/// Sampled betweenness centrality (Brandes' algorithm from `samples`
/// random pivot sources, unweighted BFS distances over out-edges),
/// scaled by `n / samples`.
///
/// Betweenness surfaces *brokers* — the researchers whose removal would
/// disconnect communities — which Hive's peer ranking uses as a
/// complementary signal to degree and harmonic centrality.
pub fn betweenness_sampled(g: &Graph, samples: usize, seed: u64) -> Vec<f64> {
    let n = g.node_count();
    let mut score = vec![0.0f64; n];
    if n == 0 || samples == 0 {
        return score;
    }
    let mut pivots: Vec<NodeId> = g.nodes().collect();
    let mut rng = Rng::seed_from_u64(seed);
    pivots.shuffle(&mut rng);
    pivots.truncate(samples.min(n));
    let scale = n as f64 / pivots.len() as f64;
    let fold = |mut acc: Vec<f64>, &s: &NodeId| -> Vec<f64> {
        // Brandes' single-source accumulation (unweighted).
        let mut stack: Vec<usize> = Vec::new();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![i64::MAX; n];
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s.index());
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for e in g.out_edges(NodeId(v as u32)) {
                let w = e.neighbor.index();
                if dist[w] == i64::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s.index() {
                acc[w] += delta[w] * scale;
            }
        }
        acc
    };
    let reduce = || par_reduce(&pivots, || vec![0.0f64; n], fold, merge_scores);
    score = if pivots.len() < PAR_SOURCE_THRESHOLD { with_threads(1, reduce) } else { reduce() };
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> (Graph, NodeId, Vec<NodeId>) {
        let mut g = Graph::new();
        let hub = g.add_node("hub");
        let leaves: Vec<_> = (0..4).map(|i| g.add_node(format!("leaf{i}"))).collect();
        for &l in &leaves {
            g.add_undirected_edge(hub, l, 1.0);
        }
        (g, hub, leaves)
    }

    #[test]
    fn hub_has_max_degree() {
        let (g, hub, leaves) = star();
        let deg = degree_centrality(&g);
        for &l in &leaves {
            assert!(deg[hub.index()] > deg[l.index()]);
        }
    }

    #[test]
    fn hub_has_max_harmonic() {
        let (g, hub, leaves) = star();
        let h = harmonic_centrality(&g);
        // Hub: 4 neighbors at distance 1 = 4. Leaf: 1 + 3 * 1/2 = 2.5.
        assert!((h[hub.index()] - 4.0).abs() < 1e-9);
        for &l in &leaves {
            assert!((h[l.index()] - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_matches_exact_with_all_pivots() {
        let (g, _, _) = star();
        let exact = harmonic_centrality(&g);
        let sampled = harmonic_centrality_sampled(&g, g.node_count(), 1);
        // The star is symmetric, so inbound == outbound harmonic here.
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_and_zero_samples() {
        let g = Graph::new();
        assert!(harmonic_centrality_sampled(&g, 3, 0).is_empty());
        let (g, _, _) = star();
        assert_eq!(harmonic_centrality_sampled(&g, 0, 0), vec![0.0; 5]);
    }

    /// Two triangles joined through a single broker node.
    fn barbell() -> (Graph, NodeId) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..7).map(|i| g.add_node(format!("n{i}"))).collect();
        for &(a, b) in &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)] {
            g.add_undirected_edge(ids[a], ids[b], 1.0);
        }
        // ids[3] bridges the two triangles.
        g.add_undirected_edge(ids[2], ids[3], 1.0);
        g.add_undirected_edge(ids[3], ids[4], 1.0);
        (g, ids[3])
    }

    #[test]
    fn broker_has_max_betweenness() {
        let (g, broker) = barbell();
        let bc = betweenness_sampled(&g, g.node_count(), 1);
        for n in g.nodes() {
            if n != broker {
                assert!(
                    bc[broker.index()] > bc[n.index()],
                    "broker {:.1} vs {:?} {:.1}",
                    bc[broker.index()],
                    n,
                    bc[n.index()]
                );
            }
        }
    }

    #[test]
    fn leaf_betweenness_is_zero_with_all_pivots() {
        let (g, _, leaves) = star();
        let bc = betweenness_sampled(&g, g.node_count(), 2);
        for &l in &leaves {
            assert!(bc[l.index()].abs() < 1e-9, "leaves broker nothing");
        }
    }

    #[test]
    fn betweenness_sampling_approximates_full() {
        let (g, broker) = barbell();
        let full = betweenness_sampled(&g, g.node_count(), 3);
        let sampled = betweenness_sampled(&g, 4, 3);
        // Under sampling the broker stays among the top brokers (the two
        // bridge-adjacent triangle nodes are legitimately close).
        let mut ranked: Vec<usize> = (0..sampled.len()).collect();
        ranked.sort_by(|&a, &b| sampled[b].partial_cmp(&sampled[a]).expect("finite"));
        assert!(
            ranked[..2].contains(&broker.index()),
            "broker should stay near the top: {sampled:?}"
        );
        // Exact (all-pivot) betweenness puts the broker strictly first.
        let max_full = full
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(max_full, broker.index());
    }
}
