//! Dynamic personalized PageRank via Gauss–Southwell forward push.
//!
//! [`personalized_pagerank_csr`] answers every query by re-running the
//! full power iteration — 100+ rounds over every edge, even when the
//! graph moved by a single edge since the last answer. This module
//! maintains the answer *incrementally*: a [`DynamicPpr`] engine keeps,
//! per canonicalized seed distribution, a `(rank, residual)` pair
//! satisfying the forward-push invariant
//!
//! ```text
//!     rank + Σ_u residual[u] · ppr(e_u)  =  exact PPR vector
//! ```
//!
//! where `ppr(e_u)` is the (unknown) PPR vector personalized at node
//! `u`. Because every `ppr(e_u)` is a probability distribution, the L1
//! error of serving `rank` as the answer is bounded by `‖residual‖₁` —
//! so pushing residual mass until that norm falls under
//! [`DynPprConfig::push_tolerance`] yields scores provably within the
//! tolerance of the true stationary distribution.
//!
//! Two operations preserve the invariant exactly (in exact arithmetic):
//!
//! * **push at `u`** — settle `(1-d)·r[u]` into `rank[u]` and spill
//!   `d·r[u]` onto `u`'s out-neighbors in proportion to edge weight
//!   (dangling nodes spill onto the restart distribution, matching the
//!   power iteration's dangling redistribution);
//! * **edge arrival `(u, v, w)`** — `u`'s out-distribution changes from
//!   `c` to `c′`, which perturbs every registered residual by
//!   `d/(1-d) · rank[u] · (c′ - c)`. The perturbation is *zero-sum* (a
//!   redistribution of `u`'s spill), touches only `u`'s out-neighbors,
//!   and costs O(out-degree) per seed-set — no iteration at all until
//!   the next query.
//!
//! The absolute perturbation mass accumulates in a per-state `dirt`
//! counter; once it exceeds [`DynPprConfig::error_budget`] the engine
//! discards the patched state and re-solves with
//! [`personalized_pagerank_csr`] — bit-identical to a cold caller — the
//! same patch-or-rebuild discipline the CSR view uses under its
//! `REBUILD_FRACTION`. Push sweeps run single-threaded in ascending
//! node order, so results are reproducible for any `HIVE_THREADS`; the
//! fallback path inherits the chunk-order determinism of the shared
//! power iteration.

use crate::csr::CsrView;
use crate::graph::{Graph, NodeId};
use crate::ppr::{personalized_pagerank_csr, PprConfig};
use std::collections::HashMap;

/// Tuning knobs of the incremental engine (the iteration itself is
/// configured by the shared [`PprConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct DynPprConfig {
    /// Serve once `‖residual‖₁` falls below this. The served scores are
    /// within `push_tolerance` (L1) of the exact stationary
    /// distribution; the default is chosen so that together with the
    /// full iteration's own convergence slack the incremental and full
    /// answers stay within 1e-8 of each other.
    pub push_tolerance: f64,
    /// Accumulated absolute perturbation mass after which a state is
    /// re-solved from scratch instead of patched (bounds float drift
    /// from long push histories).
    pub error_budget: f64,
    /// Maximum number of seed-set states kept resident (oldest evicted
    /// first).
    pub max_states: usize,
    /// Hard cap on push sweeps per query; exceeding it falls back to a
    /// full solve.
    pub max_sweeps: usize,
}

impl Default for DynPprConfig {
    fn default() -> Self {
        DynPprConfig {
            push_tolerance: 2e-9,
            error_budget: 0.05,
            max_states: 32,
            max_sweeps: 400,
        }
    }
}

/// Work counters of a [`DynamicPpr`] engine (monotone; plain data so
/// callers can diff across calls).
#[derive(Clone, Copy, Debug, Default)]
pub struct DynPprStats {
    /// Queries answered by a full power-iteration solve (first sight of
    /// a seed set, or post-fallback).
    pub full_solves: u64,
    /// Full solves forced by an exhausted error budget or sweep cap.
    pub fallbacks: u64,
    /// Queries answered from pushed residuals (the incremental path).
    pub pushed_queries: u64,
    /// Queries answered from a still-exact cached rank (no graph motion
    /// since the last solve).
    pub exact_hits: u64,
    /// Total push sweeps executed.
    pub sweeps: u64,
    /// Total single-node push operations executed.
    pub pushes: u64,
    /// Seed-set states evicted to respect `max_states`.
    pub evictions: u64,
}

/// One maintained seed distribution: canonical key, normalized restart
/// support, and the `(rank, residual)` pair.
struct SeedState {
    /// Sorted `(node index, raw mass bits)` — the cache key.
    key: Vec<(u32, u64)>,
    /// Sorted `(node index, normalized mass)` restart support, exactly
    /// as the power iteration materializes it.
    restart: Vec<(u32, f64)>,
    rank: Vec<f64>,
    residual: Vec<f64>,
    /// Accumulated absolute perturbation mass since the last full solve.
    dirt: f64,
    /// True while `rank` is verbatim power-iteration output for the
    /// current graph (no arrivals since).
    exact: bool,
}

/// Incremental PPR engine over an owned, mutable graph.
///
/// Feed edge arrivals through [`DynamicPpr::apply_edge`] /
/// [`DynamicPpr::apply_undirected_edge`] (the `DbDelta` journal's graph
/// effects, in core) and query with [`DynamicPpr::scores_incremental`].
/// [`DynamicPpr::scores`] always returns exact power-iteration output,
/// bit-identical to calling [`personalized_pagerank_csr`] on a cold
/// build of the same graph.
pub struct DynamicPpr {
    graph: Graph,
    cfg: PprConfig,
    dyn_cfg: DynPprConfig,
    /// Cached per-node total out-weight (kept in lockstep with `graph`
    /// so pushes don't re-sum adjacency lists).
    out_w: Vec<f64>,
    /// Lazily rebuilt pull-CSR for the full-solve path.
    csr: Option<CsrView>,
    /// Registration order (oldest first — the eviction order).
    states: Vec<SeedState>,
    stats: DynPprStats,
}

/// Sorted canonical form of a seed map: `(node index, mass bits)`.
fn canonical_key(seeds: &HashMap<NodeId, f64>) -> Vec<(u32, u64)> {
    // lint:allow(determinism-taint) -- sorted into node order on the next line
    let mut key: Vec<(u32, u64)> = seeds.iter().map(|(&n, &m)| (n.0, m.to_bits())).collect();
    key.sort_unstable();
    key
}

/// The normalized restart support the power iteration would build from
/// these seeds: node order, mass divided by the order-stable sum.
fn restart_support(key: &[(u32, u64)]) -> Vec<(u32, f64)> {
    let seed_sum: f64 = key.iter().map(|&(_, bits)| f64::from_bits(bits)).sum();
    key.iter().map(|&(n, bits)| (n, f64::from_bits(bits) / seed_sum)).collect()
}

/// One Gauss–Seidel push pass in ascending node order: settles `(1-d)`
/// of each above-threshold residual into the rank and spills the rest
/// onto out-neighbors (or the restart support for dangling nodes).
/// In-place updates mean spills to higher-numbered nodes are consumed
/// within the same sweep. Returns `true` once `‖residual‖₁` is under
/// tolerance, `false` if the sweep cap was hit first.
fn push_to_tolerance(
    graph: &Graph,
    out_w: &[f64],
    cfg: &PprConfig,
    dyn_cfg: &DynPprConfig,
    st: &mut SeedState,
    stats: &mut DynPprStats,
) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return true;
    }
    let d = cfg.damping;
    let tol = dyn_cfg.push_tolerance;
    // Skipping nodes below theta leaves at most n·theta = tol/4 mass
    // unpushed, so the stop condition stays reachable.
    let theta = tol / (4.0 * n as f64);
    let mut total: f64 = st.residual.iter().map(|r| r.abs()).sum();
    let mut sweeps = 0usize;
    while total > tol {
        if sweeps >= dyn_cfg.max_sweeps {
            return false;
        }
        for u in 0..n {
            let r_u = st.residual[u];
            if r_u.abs() < theta {
                continue;
            }
            st.residual[u] = 0.0;
            st.rank[u] += (1.0 - d) * r_u;
            let spill = d * r_u;
            let w_u = out_w[u];
            if w_u == 0.0 {
                // Dangling spill teleports to the restart distribution,
                // mirroring the power iteration's dangling handling.
                for &(s, m) in &st.restart {
                    st.residual[s as usize] += spill * m;
                }
            } else {
                for &(t, w) in graph.out_slice(NodeId(u as u32)) {
                    st.residual[t.index()] += spill * w / w_u;
                }
            }
            stats.pushes += 1;
        }
        total = st.residual.iter().map(|r| r.abs()).sum();
        sweeps += 1;
        stats.sweeps += 1;
    }
    true
}

impl DynamicPpr {
    /// Wraps a graph snapshot. The engine owns its copy; deliver later
    /// mutations through [`DynamicPpr::apply_edge`] so registered
    /// states stay maintained.
    pub fn new(graph: Graph, cfg: PprConfig, dyn_cfg: DynPprConfig) -> Self {
        let out_w: Vec<f64> = graph.nodes().map(|u| graph.out_weight(u)).collect();
        DynamicPpr { graph, cfg, dyn_cfg, out_w, csr: None, states: Vec::new(), stats: Default::default() }
    }

    /// The engine's current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Work counters.
    pub fn stats(&self) -> DynPprStats {
        self.stats
    }

    /// Interns `key`, creating the node if needed. New nodes start
    /// isolated, so every maintained `(rank, residual)` pair extends
    /// with exact zeros — no perturbation occurs until edges arrive.
    pub fn add_node(&mut self, key: impl Into<String>) -> NodeId {
        let before = self.graph.node_count();
        let id = self.graph.add_node(key);
        if self.graph.node_count() > before {
            self.out_w.push(0.0);
            for st in &mut self.states {
                st.rank.push(0.0);
                st.residual.push(0.0);
            }
            self.csr = None;
        }
        id
    }

    /// Delivers a directed edge arrival `u → v` with weight `w` (the
    /// `apply_delta` hook: core maps each journaled `DbDelta` onto the
    /// same `add_edge` sequence a fresh build replays).
    ///
    /// `u`'s out-distribution changes from `c` to `c′`; each registered
    /// state's residual absorbs `d/(1-d) · rank[u] · (c′ - c)`, which
    /// restores the push invariant for the new graph exactly. The
    /// absolute mass of the perturbation accrues to the state's error
    /// budget.
    pub fn apply_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        let ui = u.index();
        let old: Vec<(NodeId, f64)> = self.graph.out_slice(u).to_vec();
        let w_old = self.out_w[ui];
        self.graph.add_edge(u, v, w);
        let w_new = w_old + w;
        self.out_w[ui] = w_new;
        self.csr = None;
        let d = self.cfg.damping;
        // `add_edge` either bumps an existing slot in place or appends,
        // so the new out-list is positionally aligned with the old one.
        let new: Vec<(NodeId, f64)> = self.graph.out_slice(u).to_vec();
        for st in &mut self.states {
            st.exact = false;
            let p_u = st.rank[ui];
            if p_u == 0.0 {
                continue;
            }
            let kappa = d / (1.0 - d) * p_u;
            let mut dirt = 0.0;
            for (i, &(t, wt_new)) in new.iter().enumerate() {
                let c_new = wt_new / w_new;
                let c_old = match old.get(i) {
                    Some(&(_, wt_old)) if w_old > 0.0 => wt_old / w_old,
                    _ => 0.0,
                };
                let delta = kappa * (c_new - c_old);
                st.residual[t.index()] += delta;
                dirt += delta.abs();
            }
            if w_old == 0.0 {
                // `u` was dangling: its spill used to teleport to the
                // restart distribution; retract that share.
                for &(s, m) in &st.restart {
                    let delta = kappa * m;
                    st.residual[s as usize] -= delta;
                    dirt += delta.abs();
                }
            }
            st.dirt += dirt;
        }
    }

    /// Delivers an undirected arrival (both directions, matching
    /// `Graph::add_undirected_edge`'s self-loop handling).
    pub fn apply_undirected_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        self.apply_edge(u, v, w);
        if u != v {
            self.apply_edge(v, u, w);
        }
    }

    fn ensure_csr(&mut self) {
        if self.csr.is_none() {
            self.csr = Some(CsrView::build(&self.graph));
        }
    }

    fn solve(&mut self, seeds: &HashMap<NodeId, f64>) -> Vec<f64> {
        self.ensure_csr();
        self.stats.full_solves += 1;
        match &self.csr {
            Some(csr) => personalized_pagerank_csr(csr, seeds, self.cfg),
            None => Vec::new(), // unreachable: ensure_csr just filled it
        }
    }

    fn find_state(&self, key: &[(u32, u64)]) -> Option<usize> {
        self.states.iter().position(|s| s.key == key)
    }

    /// Full solve + (re)register the state as exact.
    fn solve_into_state(&mut self, seeds: &HashMap<NodeId, f64>, key: Vec<(u32, u64)>) -> Vec<f64> {
        let rank = self.solve(seeds);
        let n = self.graph.node_count();
        let fresh = SeedState {
            restart: restart_support(&key),
            key,
            rank: rank.clone(),
            residual: vec![0.0; n],
            dirt: 0.0,
            exact: true,
        };
        match self.find_state(&fresh.key) {
            Some(i) => self.states[i] = fresh,
            None => {
                if self.states.len() >= self.dyn_cfg.max_states.max(1) {
                    self.states.remove(0);
                    self.stats.evictions += 1;
                }
                self.states.push(fresh);
            }
        }
        rank
    }

    /// Exact scores: bit-identical to [`personalized_pagerank_csr`]
    /// over a cold [`CsrView::build`] of the current graph. Served from
    /// the cached rank when no arrival occurred since the last solve,
    /// else re-solved (and the state reset).
    pub fn scores(&mut self, seeds: &HashMap<NodeId, f64>) -> Vec<f64> {
        let key = canonical_key(seeds);
        if key.is_empty() || restart_support(&key).iter().map(|&(_, m)| m).sum::<f64>() <= 0.0 {
            // Uniform-restart queries are not maintained incrementally.
            return self.solve(seeds);
        }
        if let Some(i) = self.find_state(&key) {
            if self.states[i].exact {
                self.stats.exact_hits += 1;
                return self.states[i].rank.clone();
            }
        }
        self.solve_into_state(seeds, key)
    }

    /// Incrementally maintained scores: within
    /// [`DynPprConfig::push_tolerance`] (L1) of the exact stationary
    /// distribution. First sight of a seed set, an exhausted error
    /// budget, or a blown sweep cap all fall back to the exact solve.
    pub fn scores_incremental(&mut self, seeds: &HashMap<NodeId, f64>) -> Vec<f64> {
        let key = canonical_key(seeds);
        if key.is_empty() {
            return self.solve(seeds);
        }
        let Some(i) = self.find_state(&key) else {
            return self.solve_into_state(seeds, key);
        };
        if self.states[i].exact {
            self.stats.exact_hits += 1;
            return self.states[i].rank.clone();
        }
        if self.states[i].dirt > self.dyn_cfg.error_budget {
            self.stats.fallbacks += 1;
            return self.solve_into_state(seeds, key);
        }
        let pushed = push_to_tolerance(
            &self.graph,
            &self.out_w,
            &self.cfg,
            &self.dyn_cfg,
            &mut self.states[i],
            &mut self.stats,
        );
        if !pushed {
            self.stats.fallbacks += 1;
            return self.solve_into_state(seeds, key);
        }
        self.stats.pushed_queries += 1;
        self.states[i].rank.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn line_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..6).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_undirected_edge(w[0], w[1], 1.0);
        }
        (g, ids)
    }

    #[test]
    fn incremental_tracks_full_after_arrivals() {
        let (g, ids) = line_graph();
        let mut seeds = HashMap::new();
        seeds.insert(ids[0], 1.0);
        // On a 6-node graph the perturbation mass is a sizable fraction
        // of the rank, so widen the budget to keep the push path live.
        let dyn_cfg = DynPprConfig { error_budget: 100.0, ..Default::default() };
        let mut engine = DynamicPpr::new(g.clone(), PprConfig::default(), dyn_cfg);
        let mut shadow = g;
        let _ = engine.scores_incremental(&seeds);
        for (u, v, w) in [(1usize, 4usize, 0.7), (2, 5, 0.3), (0, 3, 0.5)] {
            engine.apply_undirected_edge(ids[u], ids[v], w);
            shadow.add_undirected_edge(ids[u], ids[v], w);
            let inc = engine.scores_incremental(&seeds);
            let full = personalized_pagerank_csr(&CsrView::build(&shadow), &seeds, PprConfig::default());
            assert!(l1(&inc, &full) <= 1e-8, "L1 drift {:.3e}", l1(&inc, &full));
        }
        assert!(engine.stats().pushed_queries >= 1, "push path exercised");
    }

    #[test]
    fn dangling_source_arrival_is_exact() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b"); // dangling
        let c = g.add_node("c");
        g.add_edge(a, b, 1.0);
        g.add_edge(c, a, 1.0);
        let mut seeds = HashMap::new();
        seeds.insert(a, 1.0);
        let mut engine = DynamicPpr::new(g.clone(), PprConfig::default(), DynPprConfig::default());
        let _ = engine.scores_incremental(&seeds);
        // b stops being dangling: its teleport share must be retracted.
        engine.apply_edge(b, c, 0.5);
        g.add_edge(b, c, 0.5);
        let inc = engine.scores_incremental(&seeds);
        let full = personalized_pagerank_csr(&CsrView::build(&g), &seeds, PprConfig::default());
        assert!(l1(&inc, &full) <= 1e-8);
    }

    #[test]
    fn zero_budget_forces_bit_identical_fallback() {
        let (g, ids) = line_graph();
        let mut seeds = HashMap::new();
        seeds.insert(ids[2], 1.0);
        let cfg = DynPprConfig { error_budget: 0.0, ..Default::default() };
        let mut engine = DynamicPpr::new(g.clone(), PprConfig::default(), cfg);
        let mut shadow = g;
        let _ = engine.scores_incremental(&seeds);
        engine.apply_undirected_edge(ids[0], ids[5], 0.9);
        shadow.add_undirected_edge(ids[0], ids[5], 0.9);
        let inc = engine.scores_incremental(&seeds);
        let full = personalized_pagerank_csr(&CsrView::build(&shadow), &seeds, PprConfig::default());
        let inc_bits: Vec<u64> = inc.iter().map(|x| x.to_bits()).collect();
        let full_bits: Vec<u64> = full.iter().map(|x| x.to_bits()).collect();
        assert_eq!(inc_bits, full_bits, "budget fallback must equal cold solve bitwise");
        assert_eq!(engine.stats().fallbacks, 1);
    }

    #[test]
    fn new_nodes_grow_states_exactly() {
        let (g, ids) = line_graph();
        let mut seeds = HashMap::new();
        seeds.insert(ids[1], 1.0);
        let mut engine = DynamicPpr::new(g.clone(), PprConfig::default(), DynPprConfig::default());
        let mut shadow = g;
        let _ = engine.scores_incremental(&seeds);
        let fresh = engine.add_node("n6");
        let shadow_fresh = shadow.add_node("n6");
        assert_eq!(fresh, shadow_fresh);
        engine.apply_undirected_edge(ids[3], fresh, 0.4);
        shadow.add_undirected_edge(ids[3], shadow_fresh, 0.4);
        let inc = engine.scores_incremental(&seeds);
        let full = personalized_pagerank_csr(&CsrView::build(&shadow), &seeds, PprConfig::default());
        assert_eq!(inc.len(), full.len());
        assert!(l1(&inc, &full) <= 1e-8);
    }

    #[test]
    fn exact_mode_matches_cold_bitwise() {
        let (g, ids) = line_graph();
        let mut seeds = HashMap::new();
        seeds.insert(ids[0], 2.0);
        seeds.insert(ids[4], 1.0);
        let mut engine = DynamicPpr::new(g.clone(), PprConfig::default(), DynPprConfig::default());
        let mut shadow = g;
        engine.apply_undirected_edge(ids[1], ids[5], 0.6);
        shadow.add_undirected_edge(ids[1], ids[5], 0.6);
        let exact = engine.scores(&seeds);
        let cold = personalized_pagerank_csr(&CsrView::build(&shadow), &seeds, PprConfig::default());
        let a: Vec<u64> = exact.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = cold.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
        // Second call is an exact hit, still bitwise equal.
        let again = engine.scores(&seeds);
        assert_eq!(a, again.iter().map(|x| x.to_bits()).collect::<Vec<u64>>());
        assert_eq!(engine.stats().exact_hits, 1);
    }

    #[test]
    fn state_eviction_respects_cap() {
        let (g, ids) = line_graph();
        let cfg = DynPprConfig { max_states: 2, ..Default::default() };
        let mut engine = DynamicPpr::new(g, PprConfig::default(), cfg);
        for &s in &ids[..4] {
            let mut seeds = HashMap::new();
            seeds.insert(s, 1.0);
            let _ = engine.scores_incremental(&seeds);
        }
        assert_eq!(engine.stats().evictions, 2);
    }
}
