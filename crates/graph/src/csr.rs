//! Compressed-sparse-row (CSR) snapshot of a [`Graph`].
//!
//! The dynamic [`Graph`] stores per-node `Vec`s of edges — convenient
//! for incremental construction, hostile to the tight loops of power
//! iteration. [`CsrView`] flattens the **incoming** adjacency into
//! three parallel arrays (offsets / sources / pull coefficients), the
//! layout used by shared-memory graph engines (Ligra) and in-memory RDF
//! stores (RDF-3X): one cache-friendly sweep per iteration, and a
//! *pull* orientation in which every node's next rank is computed
//! independently — which is what makes the hive-par chunked iteration
//! deterministic (each element's value never depends on chunk
//! scheduling).
//!
//! Build once per graph snapshot and reuse across queries; callers that
//! cache a `CsrView` (e.g. the knowledge network) skip the rebuild on
//! every ranking call.

use crate::graph::Graph;

/// Immutable CSR snapshot of a graph's incoming adjacency, prepared for
/// pull-based PageRank-style iteration.
#[derive(Clone, Debug, Default)]
pub struct CsrView {
    /// `in_off[v]..in_off[v+1]` indexes `v`'s incoming edges.
    pub(crate) in_off: Vec<u32>,
    /// Source node index of each incoming edge.
    pub(crate) in_src: Vec<u32>,
    /// Pull coefficient of each incoming edge: `w(u→v) / out_weight(u)`.
    pub(crate) in_coef: Vec<f64>,
    /// Total outgoing edge weight per node (0 ⇒ dangling).
    pub(crate) out_weight: Vec<f64>,
}

impl CsrView {
    /// Flattens `g`'s incoming adjacency. Edge order within a node is
    /// the graph's insertion order, so repeated builds of the same
    /// graph are identical.
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let out_weight: Vec<f64> = g.nodes().map(|u| g.out_weight(u)).collect();
        let mut in_off = Vec::with_capacity(n + 1);
        let mut in_src = Vec::with_capacity(g.edge_count());
        let mut in_coef = Vec::with_capacity(g.edge_count());
        in_off.push(0u32);
        for v in g.nodes() {
            for e in g.in_edges(v) {
                let u = e.neighbor.index();
                in_src.push(u as u32);
                // Every in-edge has a source with outgoing weight > 0.
                in_coef.push(e.weight / out_weight[u]);
            }
            in_off.push(in_src.len() as u32);
        }
        CsrView { in_off, in_src, in_coef, out_weight }
    }

    /// Number of nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.out_weight.len()
    }

    /// Number of (directed) edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.in_src.len()
    }

    /// True if the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out_weight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_flattens_incoming_edges() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 3.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(b, c, 2.0);
        let csr = CsrView::build(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 3);
        // a has no in-edges; b one from a; c from a and b.
        assert_eq!(&csr.in_off, &[0, 0, 1, 3]);
        assert_eq!(csr.in_src[0], a.index() as u32);
        // coef of a→b is 3/(3+1).
        assert!((csr.in_coef[0] - 0.75).abs() < 1e-12);
        assert_eq!(csr.out_weight[c.index()], 0.0);
    }
}
