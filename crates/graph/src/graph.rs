//! Dynamic directed weighted graph with string-keyed node interning.
//!
//! Every Hive knowledge layer (social, co-authorship, citation, activity)
//! is a weighted graph over entity keys; this structure is the shared
//! in-memory representation. Parallel edges are merged by summing weights
//! (repeated interactions strengthen a relationship).

use std::collections::HashMap;

/// Dense node identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A borrowed view of one outgoing or incoming edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRef {
    /// The neighbor on the other side of the edge.
    pub neighbor: NodeId,
    /// Edge weight (> 0).
    pub weight: f64,
}

/// Directed weighted graph. Node keys are interned strings (entity IRIs
/// in practice); parallel edge insertions accumulate weight.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    keys: Vec<String>,
    by_key: HashMap<String, NodeId>,
    out: Vec<Vec<(NodeId, f64)>>,
    inc: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `key`, creating the node if needed.
    pub fn add_node(&mut self, key: impl Into<String>) -> NodeId {
        let key = key.into();
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        // Capacity invariant: node ids are u32; see TermDict::intern for
        // the same rationale.
        let id = NodeId(u32::try_from(self.keys.len()).expect("node id overflow")); // lint:allow(no-panic-paths)
        self.by_key.insert(key.clone(), id);
        self.keys.push(key);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Looks up a node by key without inserting.
    pub fn node(&self, key: &str) -> Option<NodeId> {
        self.by_key.get(key).copied()
    }

    /// The key of a node.
    pub fn key(&self, id: NodeId) -> &str {
        &self.keys[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of directed edges (after merging parallels).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds (or strengthens) a directed edge `u -> v` by `weight`.
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weight must be finite and positive, got {weight}"
        );
        if let Some(slot) = self.out[u.index()].iter_mut().find(|(n, _)| *n == v) {
            slot.1 += weight;
            // The in-adjacency mirror must hold a matching entry; if it
            // ever drifted, re-creating it here repairs the invariant
            // instead of panicking.
            match self.inc[v.index()].iter_mut().find(|(n, _)| *n == u) {
                Some(back) => back.1 += weight,
                None => self.inc[v.index()].push((u, weight)),
            }
        } else {
            self.out[u.index()].push((v, weight));
            self.inc[v.index()].push((u, weight));
            self.edge_count += 1;
        }
    }

    /// Adds (or strengthens) the edge in both directions.
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        self.add_edge(u, v, weight);
        if u != v {
            self.add_edge(v, u, weight);
        }
    }

    /// Weight of edge `u -> v`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.out[u.index()].iter().find(|(n, _)| *n == v).map(|(_, w)| *w)
    }

    /// Outgoing edges of `u`.
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out[u.index()]
            .iter()
            .map(|&(neighbor, weight)| EdgeRef { neighbor, weight })
    }

    /// Incoming edges of `u`.
    pub fn in_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.inc[u.index()]
            .iter()
            .map(|&(neighbor, weight)| EdgeRef { neighbor, weight })
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u.index()].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.inc[u.index()].len()
    }

    /// Sum of outgoing edge weights of `u`.
    pub fn out_weight(&self, u: NodeId) -> f64 {
        self.out[u.index()].iter().map(|(_, w)| w).sum()
    }

    /// Borrow of `u`'s raw out-adjacency slot list (insertion order,
    /// parallels already merged) — the allocation-free view the
    /// forward-push kernel iterates per spill.
    pub(crate) fn out_slice(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.out[u.index()]
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.keys.len() as u32).map(NodeId)
    }

    /// All directed edges as `(u, v, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |u| {
            self.out[u.index()].iter().map(move |&(v, w)| (u, v, w))
        })
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let a2 = g.add_node("a");
        assert_eq!(a, a2);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.key(a), "a");
        assert_eq!(g.node("a"), Some(a));
        assert_eq!(g.node("b"), None);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 0.5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(a, b), Some(1.5));
        // In-adjacency mirrors the merge.
        let inc: Vec<_> = g.in_edges(b).collect();
        assert_eq!(inc.len(), 1);
        assert!((inc[0].weight - 1.5).abs() < 1e-12);
    }

    #[test]
    fn undirected_edge_adds_both_directions() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_undirected_edge(a, b, 2.0);
        assert_eq!(g.edge_weight(a, b), Some(2.0));
        assert_eq!(g.edge_weight(b, a), Some(2.0));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_loop_undirected_added_once() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        g.add_undirected_edge(a, a, 1.0);
        assert_eq!(g.edge_weight(a, a), Some(1.0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "edge weight")]
    fn zero_weight_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 0.0);
    }

    #[test]
    fn degrees_and_weights() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 2.0);
        g.add_edge(b, c, 4.0);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(c), 2);
        assert!((g.out_weight(a) - 3.0).abs() < 1e-12);
        assert!((g.total_weight() - 7.0).abs() < 1e-12);
        assert_eq!(g.edges().count(), 3);
    }
}
