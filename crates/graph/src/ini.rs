//! Impact Neighborhood Indexing (INI) for diffusion graphs.
//!
//! Re-implementation of the idea behind paper ref \[6\] (Kim, Candan,
//! Sapino, "Impact Neighborhood Indexing (INI) in Diffusion Graphs",
//! CIKM'12), which Hive uses to discover and explain relationships.
//!
//! The *impact* of a source node on the rest of the graph is its truncated
//! decaying diffusion: mass `1` starts at the source, at each step a
//! fraction `alpha` continues along out-edges proportionally to weight and
//! `1-alpha` settles, and mass below `epsilon` is dropped. A node's
//! **impact neighborhood** is the set of nodes receiving settled mass at
//! least `epsilon`.
//!
//! Two engines answer impact queries:
//!
//! * [`RecomputeEngine`] — baseline; recomputes the diffusion per query.
//! * [`ImpactIndex`] — caches impact vectors and maintains a reverse
//!   member index so that an edge update only invalidates the sources
//!   whose neighborhoods touch the updated endpoints (the INI idea).
//!
//! Experiment E2 sweeps query/update mixes to show the index wins when
//! queries dominate and degrades gracefully under heavy updates.

use crate::graph::{Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Diffusion parameters shared by both engines.
#[derive(Clone, Copy, Debug)]
pub struct DiffusionParams {
    /// Continuation probability per hop in `(0, 1)`.
    pub alpha: f64,
    /// Truncation threshold: residual mass below this is dropped.
    pub epsilon: f64,
}

impl Default for DiffusionParams {
    fn default() -> Self {
        DiffusionParams { alpha: 0.5, epsilon: 1e-4 }
    }
}

/// Push-style truncated diffusion from `src` over out-edges.
///
/// Returns settled mass per reached node (including the source itself).
pub fn diffuse(g: &Graph, src: NodeId, params: DiffusionParams) -> HashMap<NodeId, f64> {
    let mut settled: HashMap<NodeId, f64> = HashMap::new();
    let mut residual: HashMap<NodeId, f64> = HashMap::new();
    residual.insert(src, 1.0);
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(src);
    let mut queued: HashSet<NodeId> = HashSet::new();
    queued.insert(src);
    while let Some(u) = queue.pop_front() {
        queued.remove(&u);
        let r = residual.remove(&u).unwrap_or(0.0);
        if r < params.epsilon {
            // Too small to matter; settle what's left and stop pushing.
            *settled.entry(u).or_insert(0.0) += r;
            continue;
        }
        *settled.entry(u).or_insert(0.0) += (1.0 - params.alpha) * r;
        let ow = g.out_weight(u);
        if ow == 0.0 {
            // Dangling: remaining mass settles here.
            *settled.entry(u).or_insert(0.0) += params.alpha * r;
            continue;
        }
        for e in g.out_edges(u) {
            let share = params.alpha * r * e.weight / ow;
            let slot = residual.entry(e.neighbor).or_insert(0.0);
            *slot += share;
            if *slot >= params.epsilon && queued.insert(e.neighbor) {
                queue.push_back(e.neighbor);
            }
        }
    }
    // Only keep entries above the reporting threshold.
    settled.retain(|_, v| *v >= params.epsilon);
    settled
}

/// Common interface over the indexed and baseline engines, so experiment
/// harnesses can drive either uniformly.
pub trait ImpactQueryEngine {
    /// Adds (or strengthens) a directed edge, updating internal state.
    fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64);
    /// The impact neighborhood of `src`.
    fn impact(&mut self, src: NodeId) -> HashMap<NodeId, f64>;
    /// Engine name for reporting.
    fn name(&self) -> &'static str;
}

/// Baseline: recomputes the diffusion on every query.
pub struct RecomputeEngine {
    graph: Graph,
    params: DiffusionParams,
}

impl RecomputeEngine {
    /// Wraps a graph.
    pub fn new(graph: Graph, params: DiffusionParams) -> Self {
        RecomputeEngine { graph, params }
    }

    /// Access to the underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl ImpactQueryEngine for RecomputeEngine {
    fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        self.graph.add_edge(u, v, w);
    }

    fn impact(&mut self, src: NodeId) -> HashMap<NodeId, f64> {
        diffuse(&self.graph, src, self.params)
    }

    fn name(&self) -> &'static str {
        "recompute"
    }
}

/// INI: cached impact vectors with reverse-membership invalidation.
///
/// Invalidation is *lazy*: [`ImpactQueryEngine::add_edge`] only marks
/// the updated endpoint dirty (O(1)), and the reverse-index walk that
/// evicts touched vectors runs once at the next query
/// ([`ImpactIndex::sweep`]). A burst of updates between queries pays the
/// walk once instead of per edge, and sources evicted by one dirty node
/// are already gone when the next dirty node sweeps.
pub struct ImpactIndex {
    graph: Graph,
    params: DiffusionParams,
    /// Cached impact vector per source.
    cache: HashMap<NodeId, HashMap<NodeId, f64>>,
    /// Reverse index: node -> sources whose cached neighborhood contains it.
    members: HashMap<NodeId, HashSet<NodeId>>,
    /// Endpoints of edges added since the last sweep; their touching
    /// vectors are evicted lazily on the next query.
    dirty: HashSet<NodeId>,
    /// Cache statistics for experiments.
    hits: u64,
    misses: u64,
}

impl ImpactIndex {
    /// Wraps a graph with an empty (lazy) index.
    pub fn new(graph: Graph, params: DiffusionParams) -> Self {
        ImpactIndex {
            graph,
            params,
            cache: HashMap::new(),
            members: HashMap::new(),
            dirty: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Eagerly computes impact vectors for all nodes.
    pub fn build_full(&mut self) {
        self.sweep();
        for src in self.graph.nodes().collect::<Vec<_>>() {
            self.materialize(src);
        }
    }

    /// `(cache_hits, cache_misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Access to the underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn invalidate_touching(&mut self, node: NodeId) {
        // Any cached source whose neighborhood contains `node` may change.
        let sources = self.members.remove(&node).unwrap_or_default();
        for src in sources {
            if let Some(vec) = self.cache.remove(&src) {
                for member in vec.keys() {
                    if let Some(set) = self.members.get_mut(member) {
                        set.remove(&src);
                    }
                }
            }
        }
    }

    /// Drains the dirty set, evicting every cached vector that touches a
    /// dirty endpoint. Runs before any cache read so queries never see a
    /// stale vector.
    fn sweep(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        // Drain order of the HashSet is nondeterministic; sort so the
        // eviction sequence (and the hits/misses it produces) is
        // run-stable across processes.
        let mut dirty: Vec<NodeId> = self.dirty.drain().collect();
        dirty.sort_unstable();
        for node in dirty {
            self.invalidate_touching(node);
        }
    }

    fn materialize(&mut self, src: NodeId) -> HashMap<NodeId, f64> {
        let vec = diffuse(&self.graph, src, self.params);
        for member in vec.keys() {
            self.members.entry(*member).or_default().insert(src);
        }
        self.cache.insert(src, vec.clone());
        vec
    }
}

impl ImpactQueryEngine for ImpactIndex {
    fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        self.graph.add_edge(u, v, w);
        // Sources reaching `u` can now reach further through the new edge;
        // `u`'s own vector changes too. Vectors not touching `u` keep the
        // same diffusion and stay valid. (`v` gaining in-mass does not
        // change any vector that never visited `u`.) The eviction walk is
        // deferred to the next query: updates are O(1).
        self.dirty.insert(u);
    }

    fn impact(&mut self, src: NodeId) -> HashMap<NodeId, f64> {
        self.sweep();
        if let Some(vec) = self.cache.get(&src) {
            self.hits += 1;
            return vec.clone();
        }
        self.misses += 1;
        self.materialize(src)
    }

    fn name(&self) -> &'static str {
        "ini-index"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        (g, ids)
    }

    #[test]
    fn diffusion_mass_is_conserved() {
        let (g, ids) = line_graph();
        let params = DiffusionParams { alpha: 0.5, epsilon: 1e-9 };
        let imp = diffuse(&g, ids[0], params);
        let total: f64 = imp.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass should be ~1, got {total}");
    }

    #[test]
    fn impact_decays_with_distance() {
        let (g, ids) = line_graph();
        let params = DiffusionParams { alpha: 0.5, epsilon: 1e-9 };
        let imp = diffuse(&g, ids[0], params);
        let vals: Vec<f64> = ids.iter().map(|n| imp.get(n).copied().unwrap_or(0.0)).collect();
        // Settled mass decreases along the chain until the dangling tail.
        assert!(vals[0] > vals[1]);
        assert!(vals[1] > vals[2]);
    }

    #[test]
    fn truncation_limits_neighborhood() {
        let (g, ids) = line_graph();
        let tight = DiffusionParams { alpha: 0.5, epsilon: 0.2 };
        let imp = diffuse(&g, ids[0], tight);
        assert!(imp.len() < 4, "tight epsilon should truncate, got {}", imp.len());
    }

    #[test]
    fn engines_agree() {
        let (g, ids) = line_graph();
        let params = DiffusionParams::default();
        let mut base = RecomputeEngine::new(g.clone(), params);
        let mut idx = ImpactIndex::new(g, params);
        for &src in &ids {
            let a = base.impact(src);
            let b = idx.impact(src);
            assert_eq!(a.len(), b.len());
            for (k, v) in &a {
                assert!((b[k] - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn index_caches_and_invalidates() {
        let (g, ids) = line_graph();
        let params = DiffusionParams { alpha: 0.5, epsilon: 1e-6 };
        let mut idx = ImpactIndex::new(g, params);
        let before = idx.impact(ids[0]);
        idx.impact(ids[0]);
        assert_eq!(idx.stats(), (1, 1), "second query should hit the cache");
        // Add an edge from the tail: ids[0]'s neighborhood contains n3, and
        // the new edge leaves n3, so ids[0]'s vector must be invalidated.
        let g_n3 = ids[3];
        let n_new = {
            // New node reachable only through the new edge.
            // (Engines own their graph, so add through the index.)
            idx.graph.add_node("n_new")
        };
        idx.add_edge(g_n3, n_new, 1.0);
        let after = idx.impact(ids[0]);
        assert!(after.contains_key(&n_new), "diffusion should now reach n_new");
        assert_ne!(before.len(), after.len());
        // Consistency with a fresh recompute.
        let mut base = RecomputeEngine::new(idx.graph().clone(), params);
        let fresh = base.impact(ids[0]);
        assert_eq!(after.len(), fresh.len());
        for (k, v) in &fresh {
            assert!((after[k] - v).abs() < 1e-12);
        }
    }

    #[test]
    fn untouched_vectors_stay_cached() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(c, d, 1.0);
        let mut idx = ImpactIndex::new(g, DiffusionParams::default());
        idx.impact(a); // miss 1
        idx.impact(c); // miss 2
        // Edge in the c/d component does not touch a's neighborhood.
        idx.add_edge(d, c, 1.0);
        idx.impact(a); // hit
        assert_eq!(idx.stats(), (1, 2));
    }

    #[test]
    fn update_bursts_sweep_once_at_the_next_query() {
        let (g, ids) = line_graph();
        let params = DiffusionParams { alpha: 0.5, epsilon: 1e-6 };
        let mut idx = ImpactIndex::new(g, params);
        idx.impact(ids[0]); // miss
        // A burst of updates marks endpoints dirty without walking the
        // reverse index...
        let extra: Vec<NodeId> = (0..8).map(|i| idx.graph.add_node(format!("x{i}"))).collect();
        for &x in &extra {
            idx.add_edge(ids[3], x, 1.0);
        }
        assert_eq!(idx.dirty.len(), 1, "burst collapses to one dirty endpoint");
        // ...and the next query sweeps once, then recomputes.
        let after = idx.impact(ids[0]);
        assert!(idx.dirty.is_empty(), "query drained the dirty set");
        for &x in &extra {
            assert!(after.contains_key(&x) || after[&ids[3]] >= params.epsilon);
        }
        let mut base = RecomputeEngine::new(idx.graph().clone(), params);
        let fresh = base.impact(ids[0]);
        assert_eq!(after.len(), fresh.len());
        for (k, v) in &fresh {
            assert!((after[k] - v).abs() < 1e-12);
        }
    }

    #[test]
    fn build_full_prewarms() {
        let (g, ids) = line_graph();
        let mut idx = ImpactIndex::new(g, DiffusionParams::default());
        idx.build_full();
        for &src in &ids {
            idx.impact(src);
        }
        let (hits, misses) = idx.stats();
        assert_eq!(hits, 4);
        assert_eq!(misses, 0);
    }
}
