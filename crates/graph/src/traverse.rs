//! Traversals: BFS, DFS, and (weakly) connected components.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Nodes reachable from `start` (following out-edges), in BFS order.
pub fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for e in g.out_edges(u) {
            if !visited[e.neighbor.index()] {
                visited[e.neighbor.index()] = true;
                queue.push_back(e.neighbor);
            }
        }
    }
    order
}

/// Nodes reachable from `start` (following out-edges), in DFS preorder.
pub fn dfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u.index()] {
            continue;
        }
        visited[u.index()] = true;
        order.push(u);
        // Push in reverse so lower-indexed neighbors are visited first.
        let mut nbrs: Vec<NodeId> = g.out_edges(u).map(|e| e.neighbor).collect();
        nbrs.reverse();
        stack.extend(nbrs);
    }
    order
}

/// Weakly connected components (edges treated as undirected).
///
/// Returns a component id per node; ids are dense, assigned in order of
/// first discovery.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for s in g.nodes() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let id = next;
        next += 1;
        let mut queue = VecDeque::new();
        comp[s.index()] = id;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in g.out_edges(u).chain(g.in_edges(u)) {
                if comp[e.neighbor.index()] == usize::MAX {
                    comp[e.neighbor.index()] = id;
                    queue.push_back(e.neighbor);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..5).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        (g, ids)
    }

    #[test]
    fn bfs_visits_reachable_in_order() {
        let (g, ids) = chain();
        assert_eq!(bfs_order(&g, ids[0]), ids);
        assert_eq!(bfs_order(&g, ids[3]), vec![ids[3], ids[4]]);
    }

    #[test]
    fn dfs_preorder() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(b, d, 1.0);
        // DFS explores b's subtree before c.
        assert_eq!(dfs_order(&g, a), vec![a, b, d, c]);
    }

    #[test]
    fn components_respect_direction_weakly() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(d, c, 1.0);
        let comp = connected_components(&g);
        assert_eq!(comp[a.index()], comp[b.index()]);
        assert_eq!(comp[c.index()], comp[d.index()]);
        assert_ne!(comp[a.index()], comp[c.index()]);
    }

    #[test]
    fn singleton_components() {
        let mut g = Graph::new();
        g.add_node("x");
        g.add_node("y");
        let comp = connected_components(&g);
        assert_eq!(comp, vec![0, 1]);
    }
}
