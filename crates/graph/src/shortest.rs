//! Dijkstra shortest paths over positive edge weights.
//!
//! Here weight is a *cost* (lower = closer); callers that hold strength
//! weights convert with `-ln(w)` or `1/w` first.

use crate::graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest path run.
#[derive(Clone, Debug)]
pub struct DistanceMap {
    dist: Vec<f64>,
    prev: Vec<Option<NodeId>>,
    source: NodeId,
}

impl DistanceMap {
    /// Distance from the source to `n` (`f64::INFINITY` if unreachable).
    pub fn distance(&self, n: NodeId) -> f64 {
        self.dist[n.index()]
    }

    /// True if `n` is reachable from the source.
    pub fn reachable(&self, n: NodeId) -> bool {
        self.dist[n.index()].is_finite()
    }

    /// Reconstructs the path from the source to `target` (inclusive), or
    /// `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(target) {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while cur != self.source {
            cur = self.prev[cur.index()]?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

struct Entry {
    cost: f64,
    node: NodeId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Single-source Dijkstra treating edge weights as costs.
///
/// Panics (debug) if an edge weight is non-positive, which the [`Graph`]
/// constructor already forbids.
pub fn dijkstra(g: &Graph, source: NodeId) -> DistanceMap {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Entry { cost: 0.0, node: source });
    while let Some(Entry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue;
        }
        for e in g.out_edges(node) {
            let ncost = cost + e.weight;
            if ncost < dist[e.neighbor.index()] {
                dist[e.neighbor.index()] = ncost;
                prev[e.neighbor.index()] = Some(node);
                heap.push(Entry { cost: ncost, node: e.neighbor });
            }
        }
    }
    DistanceMap { dist, prev, source }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_path_basics() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(a, c, 5.0);
        let dm = dijkstra(&g, a);
        assert!((dm.distance(c) - 2.0).abs() < 1e-12);
        assert_eq!(dm.path_to(c), Some(vec![a, b, c]));
        assert!(!dm.reachable(d));
        assert_eq!(dm.path_to(d), None);
    }

    #[test]
    fn source_distance_zero() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let dm = dijkstra(&g, a);
        assert_eq!(dm.distance(a), 0.0);
        assert_eq!(dm.path_to(a), Some(vec![a]));
    }

    #[test]
    fn respects_direction() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1.0);
        let dm = dijkstra(&g, b);
        assert!(!dm.reachable(a));
    }
}
