//! Link-prediction scores over the symmetrized neighbor sets.
//!
//! Hive's evidence engine uses these as "indirect" relationship signals
//! (e.g. *citing the same paper*, *attending the same sessions* — both are
//! common-neighbor structures in the respective layers).

use crate::graph::{Graph, NodeId};
use std::collections::HashSet;

fn neighbor_set(g: &Graph, u: NodeId) -> HashSet<NodeId> {
    g.out_edges(u)
        .map(|e| e.neighbor)
        .chain(g.in_edges(u).map(|e| e.neighbor))
        .filter(|&n| n != u)
        .collect()
}

/// Number of common (symmetrized) neighbors of `u` and `v`.
pub fn common_neighbors(g: &Graph, u: NodeId, v: NodeId) -> usize {
    let nu = neighbor_set(g, u);
    let nv = neighbor_set(g, v);
    nu.intersection(&nv).count()
}

/// Jaccard similarity of neighbor sets, in `[0, 1]`.
pub fn jaccard(g: &Graph, u: NodeId, v: NodeId) -> f64 {
    let nu = neighbor_set(g, u);
    let nv = neighbor_set(g, v);
    let inter = nu.intersection(&nv).count();
    let union = nu.union(&nv).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Adamic–Adar score: common neighbors weighted by inverse log-degree,
/// so rare shared contacts count more than hubs.
pub fn adamic_adar(g: &Graph, u: NodeId, v: NodeId) -> f64 {
    let nu = neighbor_set(g, u);
    let nv = neighbor_set(g, v);
    nu.intersection(&nv)
        .map(|&z| {
            let deg = neighbor_set(g, z).len();
            if deg > 1 {
                1.0 / (deg as f64).ln()
            } else {
                // Degree-1 shared neighbor: strongest possible signal;
                // cap instead of dividing by ln(1) = 0.
                2.0
            }
        })
        .sum()
}

/// Preferential-attachment score: product of degrees.
pub fn preferential_attachment(g: &Graph, u: NodeId, v: NodeId) -> f64 {
    (neighbor_set(g, u).len() * neighbor_set(g, v).len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// u and v share z1, z2; v additionally knows w; hub h knows everyone.
    fn fixture() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let u = g.add_node("u");
        let v = g.add_node("v");
        let z1 = g.add_node("z1");
        let z2 = g.add_node("z2");
        let w = g.add_node("w");
        g.add_undirected_edge(u, z1, 1.0);
        g.add_undirected_edge(u, z2, 1.0);
        g.add_undirected_edge(v, z1, 1.0);
        g.add_undirected_edge(v, z2, 1.0);
        g.add_undirected_edge(v, w, 1.0);
        (g, u, v, z1, w)
    }

    #[test]
    fn common_neighbors_counts() {
        let (g, u, v, _, _) = fixture();
        assert_eq!(common_neighbors(&g, u, v), 2);
    }

    #[test]
    fn jaccard_value() {
        let (g, u, v, _, _) = fixture();
        // |{z1,z2}| / |{z1,z2,w}| = 2/3.
        assert!((jaccard(&g, u, v) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_sets() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert_eq!(jaccard(&g, a, b), 0.0);
    }

    #[test]
    fn adamic_adar_prefers_rare_contacts() {
        let (mut g, u, v, z1, _) = fixture();
        let base = adamic_adar(&g, u, v);
        // Turn z1 into a hub: its contribution should drop.
        for i in 0..10 {
            let extra = g.add_node(format!("extra{i}"));
            g.add_undirected_edge(z1, extra, 1.0);
        }
        let after = adamic_adar(&g, u, v);
        assert!(after < base, "hubifying a shared neighbor lowers AA: {after} < {base}");
    }

    #[test]
    fn directed_edges_are_symmetrized() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let z = g.add_node("z");
        g.add_edge(a, z, 1.0); // a -> z
        g.add_edge(z, b, 1.0); // z -> b
        assert_eq!(common_neighbors(&g, a, b), 1);
    }

    #[test]
    fn preferential_attachment_value() {
        let (g, u, v, _, _) = fixture();
        assert_eq!(preferential_attachment(&g, u, v), 6.0); // 2 * 3
    }

    #[test]
    fn self_loops_excluded_from_neighbor_sets() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_undirected_edge(a, a, 1.0);
        g.add_undirected_edge(a, b, 1.0);
        assert_eq!(common_neighbors(&g, a, b), 0);
        assert!((jaccard(&g, a, b) - 0.0).abs() < 1e-12 || jaccard(&g, a, b) >= 0.0);
    }
}
