//! # hive-graph — weighted graph analytics substrate
//!
//! Graph algorithms backing Hive's peer-network services (paper §2.4):
//!
//! * a dynamic directed weighted multigraph with node interning,
//! * traversals (BFS/DFS, connected components),
//! * shortest paths (Dijkstra),
//! * **personalized PageRank** — the spreading-activation primitive used to
//!   contextualize recommendations by the active workpad,
//! * **community discovery** — label propagation and greedy modularity
//!   (Table 1: "Community discovery and tracking"),
//! * **Impact Neighborhood Indexing (INI)** — an incremental index of
//!   decaying diffusion impact sets (paper ref \[6\], Kim/Candan/Sapino,
//!   CIKM'12), with a full-recompute baseline for the E2 experiment,
//! * link-prediction scores (common neighbors, Jaccard, Adamic–Adar) used
//!   as relationship evidence,
//! * centrality measures for ranking peers.
//!
//! ```
//! use hive_graph::Graph;
//!
//! let mut g = Graph::new();
//! let a = g.add_node("ann");
//! let b = g.add_node("bob");
//! g.add_edge(a, b, 0.9);
//! assert_eq!(g.out_degree(a), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centrality;
pub mod community;
pub mod csr;
pub mod graph;
pub mod ini;
pub mod kcore;
pub mod linkpred;
pub mod ppr;
pub mod ppr_dyn;
pub mod shortest;
pub mod traverse;

pub use community::{label_propagation, louvain, modularity, nmi, nmi_of_partitions, CommunityAssignment};
pub use graph::{EdgeRef, Graph, NodeId};
pub use ini::{ImpactIndex, ImpactQueryEngine, RecomputeEngine};
pub use linkpred::{adamic_adar, common_neighbors, jaccard, preferential_attachment};
pub use csr::CsrView;
pub use ppr::{
    pagerank, personalized_pagerank, personalized_pagerank_csr, top_k_excluding_seeds, PprConfig,
};
pub use ppr_dyn::{DynPprConfig, DynPprStats, DynamicPpr};
pub use centrality::{betweenness_sampled, degree_centrality, harmonic_centrality, harmonic_centrality_sampled};
pub use ini::{diffuse, DiffusionParams};
pub use kcore::{core_numbers, k_core};
pub use shortest::{dijkstra, DistanceMap};
pub use traverse::{bfs_order, connected_components, dfs_order};
