//! # hive-rng — deterministic, dependency-free pseudo-randomness
//!
//! Every stochastic component of Hive (world simulation, randomized
//! graph algorithms, sketching, benchmarks, the property-test runner)
//! draws from this module, so a seed uniquely determines an experiment.
//! The workspace is hermetic — no registry crates — and `hive-lint`
//! rule R3 keeps wall-clock entropy out of library code, so this crate
//! is the *only* source of randomness in the system.
//!
//! The generator is Xoshiro256\*\* (Blackman & Vigna) seeded through
//! SplitMix64, the same construction the `rand` crate uses for
//! `StdRng` seeding. It is not cryptographic; it is fast, has 256 bits
//! of state, and passes BigCrush — exactly what simulation needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: expands a 64-bit seed into a stream of well-mixed
/// words. Used to initialize the Xoshiro state and usable on its own
/// for cheap hashing-style mixing.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A seeded Xoshiro256\*\* generator.
///
/// The API mirrors the subset of `rand` the codebase used, so call
/// sites read the same: `gen_range(0..n)`, `gen_bool(p)`, `gen_f64()`,
/// plus slice helpers via [`SliceRandom`].
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    /// Equal seeds yield identical streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(0.1..1.0)`. An empty range returns its start
    /// rather than panicking (hive-lint R2 keeps library code
    /// panic-free).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method). `bound == 0`
    /// returns 0.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle_slice<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, `None` on an empty slice.
    pub fn choose_from<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            slice.get(self.bounded_u64(slice.len() as u64) as usize)
        }
    }

    /// Derives an independent generator (for splitting one seed across
    /// subsystems without correlated streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Types [`Rng::gen_range`] can sample a `T` from. The generic
/// parameter (rather than an associated type) lets the *expected output
/// type* drive integer-literal inference at call sites, exactly as
/// `rand::Rng::gen_range` did.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start >= end {
                    return start;
                }
                let span = (end as i128 - start as i128) as u64;
                // span + 1 may wrap only for a full 64-bit domain, which
                // no caller uses; saturate to stay safe.
                (start as i128 + rng.bounded_u64(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        if !(self.start < self.end) {
            return self.start;
        }
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Slice extension trait mirroring `rand::seq::SliceRandom`, so call
/// sites keep the familiar `xs.shuffle(&mut rng)` shape.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Shuffles in place (Fisher–Yates).
    fn shuffle(&mut self, rng: &mut Rng);
    /// Uniformly chosen element, `None` if empty.
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a Self::Item>;
    /// Up to `amount` distinct elements, sampled without replacement in
    /// random order (partial Fisher–Yates over indices). Returns an
    /// iterator so call sites can `.copied()` / `.cloned()` as with
    /// `rand::seq::SliceRandom`.
    fn choose_multiple<'a>(&'a self, rng: &mut Rng, amount: usize)
        -> std::vec::IntoIter<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn shuffle(&mut self, rng: &mut Rng) {
        rng.shuffle_slice(self);
    }
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a T> {
        rng.choose_from(self)
    }
    fn choose_multiple<'a>(&'a self, rng: &mut Rng, amount: usize)
        -> std::vec::IntoIter<&'a T> {
        let n = self.len();
        let k = amount.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.bounded_u64((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        let picked: Vec<&'a T> = idx.into_iter().filter_map(|i| self.get(i)).collect();
        picked.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference vector for the zero seed (Vigna's splitmix64.c).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(&mut s), 0x6e789e6aa1b965f4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_range_bounds_and_coverage() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = Rng::seed_from_u64(6);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.gen_range(1..=3usize) {
                1 => lo = true,
                3 => hi = true,
                2 => {}
                v => panic!("out of range: {v}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn empty_ranges_do_not_panic() {
        let mut rng = Rng::seed_from_u64(7);
        assert_eq!(rng.gen_range(5..5usize), 5);
        assert_eq!(rng.gen_range(5..3usize), 5);
        assert_eq!(rng.gen_range(2.0..2.0f64), 2.0);
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = Rng::seed_from_u64(8);
        for _ in 0..5000 {
            let v = rng.gen_range(0.1..1.0);
            assert!((0.1..1.0).contains(&v));
            let w = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Rng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Identical seeds give identical permutations.
        let mut rng2 = Rng::seed_from_u64(10);
        let mut v2: Vec<u32> = (0..50).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = Rng::seed_from_u64(11);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let xs = [1, 2, 3];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).expect("non-empty")));
        }
    }

    #[test]
    fn bounded_u64_zero_bound() {
        let mut rng = Rng::seed_from_u64(12);
        assert_eq!(rng.bounded_u64(0), 0);
        assert_eq!(rng.bounded_u64(1), 0);
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Rng::seed_from_u64(13);
        let mut b = a.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
