//! Tensor streams: a sequence of same-shape epoch snapshots.
//!
//! Hive encodes multi-relational activity (who asked whom, in which
//! session, at which epoch) as a tensor per epoch; SCENT monitors the
//! sequence for structural change.

use crate::tensor::SparseTensor;

/// A sequence of equal-shape sparse tensors, one per epoch.
#[derive(Clone, Debug)]
pub struct TensorStream {
    shape: Vec<usize>,
    epochs: Vec<SparseTensor>,
}

impl TensorStream {
    /// Creates an empty stream for tensors of `shape`.
    pub fn new(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty());
        TensorStream { shape, epochs: Vec::new() }
    }

    /// The per-epoch tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of epochs so far.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True if no epochs were pushed.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Appends an epoch snapshot; its shape must match the stream's.
    pub fn push(&mut self, t: SparseTensor) {
        assert_eq!(t.shape(), self.shape.as_slice(), "epoch shape mismatch");
        self.epochs.push(t);
    }

    /// The epoch at `i`.
    pub fn epoch(&self, i: usize) -> &SparseTensor {
        &self.epochs[i]
    }

    /// Iterates epochs in order.
    pub fn iter(&self) -> impl Iterator<Item = &SparseTensor> {
        self.epochs.iter()
    }

    /// Iterates consecutive epoch pairs `(t-1, t)` with the index `t`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, &SparseTensor, &SparseTensor)> {
        self.epochs
            .windows(2)
            .enumerate()
            .map(|(i, w)| (i + 1, &w[0], &w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut s = TensorStream::new(vec![2, 2]);
        for i in 0..3 {
            let mut t = SparseTensor::new(vec![2, 2]);
            t.set(&[0, 0], i as f64 + 1.0);
            s.push(t);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.epoch(1).get(&[0, 0]), 2.0);
        let pairs: Vec<usize> = s.pairs().map(|(i, _, _)| i).collect();
        assert_eq!(pairs, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_enforced() {
        let mut s = TensorStream::new(vec![2, 2]);
        s.push(SparseTensor::new(vec![3, 2]));
    }

    #[test]
    fn empty_stream() {
        let s = TensorStream::new(vec![4]);
        assert!(s.is_empty());
        assert_eq!(s.pairs().count(), 0);
    }
}
