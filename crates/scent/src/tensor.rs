//! Sparse COO tensors of arbitrary order.

use std::collections::HashMap;

/// A sparse tensor: a shape and a coordinate->value map. Zero values are
/// never stored.
#[derive(Clone, Debug, Default)]
pub struct SparseTensor {
    shape: Vec<usize>,
    data: HashMap<Vec<usize>, f64>,
}

impl SparseTensor {
    /// Creates an empty tensor with the given shape (order = shape.len()).
    pub fn new(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensor order must be >= 1");
        assert!(shape.iter().all(|&d| d > 0), "all dimensions must be positive");
        SparseTensor { shape, data: HashMap::new() }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's order (number of modes).
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    fn check_index(&self, idx: &[usize]) {
        assert_eq!(idx.len(), self.shape.len(), "index order mismatch");
        for (i, (&x, &d)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(x < d, "index {x} out of bounds for mode {i} (dim {d})");
        }
    }

    /// Value at `idx` (0 if unset).
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.check_index(idx);
        self.data.get(idx).copied().unwrap_or(0.0)
    }

    /// Sets the value at `idx` (removing the entry when 0).
    pub fn set(&mut self, idx: &[usize], v: f64) {
        self.check_index(idx);
        if v == 0.0 {
            self.data.remove(idx);
        } else {
            self.data.insert(idx.to_vec(), v);
        }
    }

    /// Adds `v` to the value at `idx`.
    pub fn add(&mut self, idx: &[usize], v: f64) {
        let cur = self.get(idx);
        self.set(idx, cur + v);
    }

    /// Iterates `(coordinates, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> {
        self.data.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.values().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Frobenius distance `||self - other||_F` (shapes must match).
    pub fn frobenius_distance(&self, other: &SparseTensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        let mut sum = 0.0;
        for (idx, v) in self.iter() {
            let d = v - other.data.get(idx).copied().unwrap_or(0.0);
            sum += d * d;
        }
        for (idx, v) in other.iter() {
            if !self.data.contains_key(idx) {
                sum += v * v;
            }
        }
        sum.sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.values().sum()
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, s: f64) {
        if s == 0.0 {
            self.data.clear();
        } else {
            for v in self.data.values_mut() {
                *v *= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_add() {
        let mut t = SparseTensor::new(vec![3, 3, 2]);
        t.set(&[0, 1, 0], 2.0);
        t.add(&[0, 1, 0], 0.5);
        assert_eq!(t.get(&[0, 1, 0]), 2.5);
        assert_eq!(t.get(&[2, 2, 1]), 0.0);
        assert_eq!(t.nnz(), 1);
        t.add(&[0, 1, 0], -2.5);
        assert_eq!(t.nnz(), 0, "zeroed entries vanish");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut t = SparseTensor::new(vec![2, 2]);
        t.set(&[2, 0], 1.0);
    }

    #[test]
    #[should_panic(expected = "order mismatch")]
    fn order_checked() {
        let t = SparseTensor::new(vec![2, 2]);
        t.get(&[0]);
    }

    #[test]
    fn frobenius_norm_and_distance() {
        let mut a = SparseTensor::new(vec![2, 2]);
        a.set(&[0, 0], 3.0);
        a.set(&[1, 1], 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let mut b = SparseTensor::new(vec![2, 2]);
        b.set(&[0, 0], 3.0);
        assert!((a.frobenius_distance(&b) - 4.0).abs() < 1e-12);
        // Symmetric, including entries only in `other`.
        assert!((b.frobenius_distance(&a) - 4.0).abs() < 1e-12);
        assert_eq!(a.frobenius_distance(&a), 0.0);
    }

    #[test]
    fn scale_and_sum() {
        let mut t = SparseTensor::new(vec![2]);
        t.set(&[0], 1.0);
        t.set(&[1], 2.0);
        assert_eq!(t.sum(), 3.0);
        t.scale(2.0);
        assert_eq!(t.sum(), 6.0);
        t.scale(0.0);
        assert_eq!(t.nnz(), 0);
    }
}
