//! CP-ALS decomposition of 3-mode sparse tensors — the
//! decomposition-based monitoring *baseline* SCENT is compared against.
//!
//! Alternating least squares with hash-free sparse MTTKRP; rank-R factor
//! matrices per mode; a small ridge term keeps the R×R normal equations
//! well conditioned.

use crate::tensor::SparseTensor;
use hive_par::{par_map, par_reduce, with_threads};
use hive_rng::Rng;

/// Below this many observed entries an ALS sweep stays serial — the
/// scoped-pool spawn would cost more than the sweep. The gate depends
/// only on tensor size, and hive-par's chunk-ordered merges keep serial
/// and parallel results bit-identical regardless. Calibrated against
/// the `cp_t4_vs_t1` bench: an ALS sweep spawns several scopes per
/// iteration, so it needs a larger tensor than a single fused pass to
/// amortize them.
const PAR_ENTRY_THRESHOLD: usize = 8_192;

/// A rank-R CP model of a 3-mode tensor.
#[derive(Clone, Debug)]
pub struct CpModel {
    /// Factor matrices `[A (I×R), B (J×R), C (K×R)]`, row-major.
    pub factors: [Vec<Vec<f64>>; 3],
    /// Decomposition rank.
    pub rank: usize,
    /// Root sum-squared reconstruction error over the observed entries
    /// after the final iteration.
    pub residual: f64,
}

impl CpModel {
    /// Reconstructed value at `(i, j, k)`.
    pub fn reconstruct(&self, i: usize, j: usize, k: usize) -> f64 {
        let (a, b, c) = (&self.factors[0][i], &self.factors[1][j], &self.factors[2][k]);
        (0..self.rank).map(|r| a[r] * b[r] * c[r]).sum()
    }

    /// Root sum-squared difference between two models' reconstructions
    /// evaluated at `coords` — the decomposition-based change score.
    pub fn reconstruction_distance(&self, other: &CpModel, coords: &[[usize; 3]]) -> f64 {
        coords
            .iter()
            .map(|&[i, j, k]| {
                let d = self.reconstruct(i, j, k) - other.reconstruct(i, j, k);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Solves the symmetric positive (semi)definite system `G x = b` by
/// Gaussian elimination with partial pivoting; `G` gets a ridge `1e-9 I`.
#[allow(clippy::needless_range_loop)] // index math mirrors the textbook elimination
fn solve_spd(g: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut m: Vec<Vec<f64>> = g
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r[i] += 1e-9;
            r.push(b[i]);
            r
        })
        .collect();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&a, &b2| m[a][col].abs().total_cmp(&m[b2][col].abs()))
            .unwrap_or(col);
        m.swap(col, piv);
        let pivot = m[col][col];
        if pivot.abs() < 1e-300 {
            continue;
        }
        for row in (col + 1)..n {
            let f = m[row][col] / pivot;
            if f == 0.0 {
                continue;
            }
            for c2 in col..=n {
                m[row][c2] -= f * m[col][c2];
            }
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = m[row][n];
        for c2 in (row + 1)..n {
            s -= m[row][c2] * x[c2];
        }
        let d = m[row][row];
        x[row] = if d.abs() < 1e-300 { 0.0 } else { s / d };
    }
    x
}

/// `AᵀA` for a row-major matrix with R columns.
#[allow(clippy::needless_range_loop)] // symmetric fill-in over (p, q) pairs
fn gram(mat: &[Vec<f64>], r: usize) -> Vec<Vec<f64>> {
    let mut g = vec![vec![0.0; r]; r];
    for row in mat {
        for p in 0..r {
            if row[p] == 0.0 {
                continue;
            }
            for q in p..r {
                g[p][q] += row[p] * row[q];
            }
        }
    }
    for p in 0..r {
        for q in 0..p {
            g[p][q] = g[q][p];
        }
    }
    g
}

/// Elementwise (Hadamard) product of two R×R matrices.
fn hadamard(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    a.iter()
        .zip(b)
        .map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| x * y).collect())
        .collect()
}

/// CP-ALS on a 3-mode sparse tensor.
///
/// Panics if the tensor is not order-3 or `rank == 0`.
pub fn cp_als(t: &SparseTensor, rank: usize, iters: usize, seed: u64) -> CpModel {
    assert_eq!(t.order(), 3, "cp_als requires a 3-mode tensor");
    assert!(rank > 0, "rank must be positive");
    let dims = [t.shape()[0], t.shape()[1], t.shape()[2]];
    let mut rng = Rng::seed_from_u64(seed);
    let mut factors: [Vec<Vec<f64>>; 3] = [
        (0..dims[0])
            .map(|_| (0..rank).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect(),
        (0..dims[1])
            .map(|_| (0..rank).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect(),
        (0..dims[2])
            .map(|_| (0..rank).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect(),
    ];
    let entries: Vec<([usize; 3], f64)> = t
        .iter()
        .map(|(idx, v)| ([idx[0], idx[1], idx[2]], v))
        .collect();
    let small = entries.len() < PAR_ENTRY_THRESHOLD;
    let merge_mats = |mut a: Vec<Vec<f64>>, b: Vec<Vec<f64>>| {
        for (ra, rb) in a.iter_mut().zip(b) {
            for (x, y) in ra.iter_mut().zip(rb) {
                *x += y;
            }
        }
        a
    };
    let sweep = |factors: &mut [Vec<Vec<f64>>; 3]| {
        for _ in 0..iters {
            for mode in 0..3 {
                let (m1, m2) = match mode {
                    0 => (1, 2),
                    1 => (0, 2),
                    _ => (0, 1),
                };
                // MTTKRP: M[i_mode][r] += x * F1[i_m1][r] * F2[i_m2][r],
                // folded per fixed entry chunk, partial matrices merged
                // in chunk order.
                let f1s = &factors[m1];
                let f2s = &factors[m2];
                let mttkrp = par_reduce(
                    &entries,
                    || vec![vec![0.0; rank]; dims[mode]],
                    |mut acc, &([i, j, k], x)| {
                        let coords = [i, j, k];
                        let row = &mut acc[coords[mode]];
                        let f1 = &f1s[coords[m1]];
                        let f2 = &f2s[coords[m2]];
                        for r in 0..rank {
                            row[r] += x * f1[r] * f2[r];
                        }
                        acc
                    },
                    merge_mats,
                );
                let g = hadamard(&gram(&factors[m1], rank), &gram(&factors[m2], rank));
                // Each row's normal equations are independent.
                factors[mode] = par_map(&mttkrp, |row| solve_spd(&g, row));
            }
        }
    };
    if small {
        with_threads(1, || sweep(&mut factors));
    } else {
        sweep(&mut factors);
    }
    let model = CpModel { factors, rank, residual: 0.0 };
    let sq_err = |acc: f64, &([i, j, k], x): &([usize; 3], f64)| {
        let d = x - model.reconstruct(i, j, k);
        acc + d * d
    };
    let resid = || par_reduce(&entries, || 0.0f64, sq_err, |a, b| a + b).sqrt();
    let residual = if small { with_threads(1, resid) } else { resid() };
    CpModel { residual, ..model }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an exactly rank-1 tensor a⊗b⊗c.
    fn rank1_tensor() -> SparseTensor {
        let a = [1.0, 2.0, 0.5];
        let b = [0.5, 1.5];
        let c = [2.0, 1.0];
        let mut t = SparseTensor::new(vec![3, 2, 2]);
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                for (k, &ck) in c.iter().enumerate() {
                    t.set(&[i, j, k], ai * bj * ck);
                }
            }
        }
        t
    }

    #[test]
    fn rank1_recovered_exactly() {
        let t = rank1_tensor();
        let model = cp_als(&t, 1, 30, 1);
        let rel = model.residual / t.frobenius_norm();
        assert!(rel < 1e-6, "rank-1 tensor should be fit exactly, rel={rel}");
        // Spot-check a reconstruction.
        assert!((model.reconstruct(1, 1, 0) - t.get(&[1, 1, 0])).abs() < 1e-6);
    }

    #[test]
    fn higher_rank_fits_better() {
        // Sum of two random rank-1 components.
        let mut t = rank1_tensor();
        let mut t2 = SparseTensor::new(vec![3, 2, 2]);
        for i in 0..3 {
            for j in 0..2 {
                for k in 0..2 {
                    t2.set(&[i, j, k], ((i + 1) * (2 - j) + k) as f64 * 0.3);
                }
            }
        }
        for (idx, v) in t2.iter() {
            t.add(idx, v);
        }
        let r1 = cp_als(&t, 1, 40, 1).residual;
        let r3 = cp_als(&t, 3, 40, 1).residual;
        assert!(r3 <= r1 + 1e-9, "rank 3 should fit at least as well: {r3} vs {r1}");
    }

    #[test]
    fn identical_tensors_have_zero_reconstruction_distance() {
        let t = rank1_tensor();
        let m1 = cp_als(&t, 2, 25, 7);
        let m2 = cp_als(&t, 2, 25, 7);
        let coords: Vec<[usize; 3]> = t.iter().map(|(i, _)| [i[0], i[1], i[2]]).collect();
        assert!(m1.reconstruction_distance(&m2, &coords) < 1e-9);
    }

    #[test]
    fn changed_tensor_scores_higher_than_unchanged() {
        let t = rank1_tensor();
        let mut changed = t.clone();
        changed.set(&[0, 0, 0], 10.0);
        changed.set(&[2, 1, 1], 9.0);
        let base = cp_als(&t, 2, 25, 3);
        let same = cp_als(&t, 2, 25, 4); // different init, same data
        let diff = cp_als(&changed, 2, 25, 3);
        let coords: Vec<[usize; 3]> = t.iter().map(|(i, _)| [i[0], i[1], i[2]]).collect();
        let d_same = base.reconstruction_distance(&same, &coords);
        let d_diff = base.reconstruction_distance(&diff, &coords);
        assert!(d_diff > d_same * 3.0, "change should dominate init noise: {d_diff} vs {d_same}");
    }

    #[test]
    fn solver_solves_small_system() {
        let g = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let b = vec![1.0, 2.0];
        let x = solve_spd(&g, &b);
        // 4x + y = 1; x + 3y = 2 -> x = 1/11, y = 7/11.
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-6);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "3-mode")]
    fn order_checked() {
        let t = SparseTensor::new(vec![2, 2]);
        cp_als(&t, 1, 5, 0);
    }
}
