//! # hive-scent — SCENT: compressed monitoring of tensor streams
//!
//! Re-implementation of the idea behind paper ref \[15\] (Lin, Candan,
//! Sundaram, Xie, "SCENT: Scalable Compressed Monitoring of Evolving
//! Multi-Relational Social Networks", ACM TOMCCAP 2011), which Hive uses
//! for "internet scale monitoring of multi-relational social media data,
//! encoded in the form of tensor streams" (paper §2.4):
//!
//! * sparse COO tensors of arbitrary order ([`tensor`]),
//! * epoch-snapshot tensor streams ([`stream`]),
//! * **randomized tensor ensembles**: compressed-sensing style sketches —
//!   each measurement is a stable random ±1 projection of the tensor, so
//!   sketch distance estimates the Frobenius distance between epochs at a
//!   fraction of the cost ([`sketch`]),
//! * structural change detection over per-epoch scores with an online
//!   z-score rule, plus precision/recall scoring against planted changes
//!   ([`detect`]),
//! * baselines: exact full-diff scoring and CP-ALS decomposition-based
//!   scoring ([`cp`]), reproducing the paper's claim that SCENT detects
//!   changes "faster and more accurately than the other methods"
//!   (experiment E1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cp;
pub mod detect;
pub mod sketch;
pub mod stream;
pub mod tensor;

pub use cp::{cp_als, CpModel};
pub use detect::{detect_changes, detect_changes_cusum, f1_score, ChangeDetector, DetectorBackend, EpochScore};
pub use sketch::{SketchConfig, TensorSketch};
pub use stream::TensorStream;
pub use tensor::SparseTensor;
