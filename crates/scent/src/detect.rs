//! Structural change detection over tensor streams.
//!
//! Every backend reduces an epoch transition `(T_{t-1}, T_t)` to a change
//! score; the detector flags epochs whose score is an outlier against the
//! trailing score history (online z-score). Experiment E1 compares the
//! three backends on runtime and F1 against planted changes.

use crate::cp::cp_als;
use crate::sketch::{SketchConfig, TensorSketch};
use crate::stream::TensorStream;

/// How to score an epoch transition.
#[derive(Clone, Copy, Debug)]
pub enum DetectorBackend {
    /// SCENT: compressed-sensing sketch distance.
    Sketch(SketchConfig),
    /// Exact Frobenius distance between consecutive epochs.
    FullDiff,
    /// CP-ALS per epoch; score = reconstruction distance on the union of
    /// observed coordinates.
    CpAls {
        /// Decomposition rank.
        rank: usize,
        /// ALS iterations per epoch.
        iters: usize,
        /// Factor initialization seed.
        seed: u64,
    },
}

/// A scored epoch transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochScore {
    /// Epoch index `t` of the transition `(t-1, t)`.
    pub epoch: usize,
    /// Change score (backend-specific scale).
    pub score: f64,
}

/// Scores every epoch transition of a stream with one backend.
#[derive(Clone, Debug)]
pub struct ChangeDetector {
    backend: DetectorBackend,
}

impl ChangeDetector {
    /// Creates a detector with the given backend.
    pub fn new(backend: DetectorBackend) -> Self {
        ChangeDetector { backend }
    }

    /// The backend's display name.
    pub fn name(&self) -> &'static str {
        match self.backend {
            DetectorBackend::Sketch(_) => "scent-sketch",
            DetectorBackend::FullDiff => "full-diff",
            DetectorBackend::CpAls { .. } => "cp-als",
        }
    }

    /// Scores all transitions of `stream`.
    pub fn score_stream(&self, stream: &TensorStream) -> Vec<EpochScore> {
        match self.backend {
            DetectorBackend::Sketch(cfg) => {
                let sketches: Vec<TensorSketch> = stream
                    .iter()
                    .map(|t| TensorSketch::compute(t, cfg))
                    .collect();
                sketches
                    .windows(2)
                    .enumerate()
                    .map(|(i, w)| EpochScore {
                        epoch: i + 1,
                        score: w[0].estimate_distance(&w[1]),
                    })
                    .collect()
            }
            DetectorBackend::FullDiff => stream
                .pairs()
                .map(|(t, a, b)| EpochScore { epoch: t, score: a.frobenius_distance(b) })
                .collect(),
            DetectorBackend::CpAls { rank, iters, seed } => {
                let models: Vec<_> = stream
                    .iter()
                    .map(|t| cp_als(t, rank, iters, seed))
                    .collect();
                stream
                    .pairs()
                    .map(|(t, a, b)| {
                        // Union of observed coordinates of the two epochs.
                        let mut coords: Vec<[usize; 3]> = a
                            .iter()
                            .chain(b.iter())
                            .map(|(i, _)| [i[0], i[1], i[2]])
                            .collect();
                        coords.sort_unstable();
                        coords.dedup();
                        EpochScore {
                            epoch: t,
                            score: models[t - 1].reconstruction_distance(&models[t], &coords),
                        }
                    })
                    .collect()
            }
        }
    }
}

/// Flags change epochs by an online z-score rule: epoch `t` is flagged
/// when its score exceeds `mean + threshold * std` of the *previous*
/// scores (at least `warmup` of them). Flagged scores are excluded from
/// the running statistics so a detected shift does not mask the next one.
pub fn detect_changes(scores: &[EpochScore], threshold: f64, warmup: usize) -> Vec<usize> {
    let warmup = warmup.max(2);
    let mut detected = Vec::new();
    let mut history: Vec<f64> = Vec::new();
    for s in scores {
        if history.len() >= warmup {
            let n = history.len() as f64;
            let mean = history.iter().sum::<f64>() / n;
            let var = history.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            let std = var.sqrt().max(1e-12);
            if s.score > mean + threshold * std {
                detected.push(s.epoch);
                continue; // outlier: keep it out of the running stats
            }
        }
        history.push(s.score);
    }
    detected
}

/// CUSUM change detection over epoch scores.
///
/// Maintains the cumulative sum of positive deviations from a running
/// baseline mean; an epoch is flagged when the sum exceeds
/// `threshold * baseline_std`, after which the accumulator resets.
/// Compared to the z-score rule, CUSUM accumulates *persistent* small
/// shifts (a community slowly densifying) that no single epoch would
/// flag.
pub fn detect_changes_cusum(
    scores: &[EpochScore],
    threshold: f64,
    drift: f64,
    warmup: usize,
) -> Vec<usize> {
    let warmup = warmup.max(2);
    if scores.len() <= warmup {
        return Vec::new();
    }
    let base: Vec<f64> = scores[..warmup].iter().map(|s| s.score).collect();
    let mean = base.iter().sum::<f64>() / base.len() as f64;
    let var = base.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / base.len() as f64;
    let std = var.sqrt().max(1e-12);
    let mut cusum = 0.0f64;
    let mut detected = Vec::new();
    for s in &scores[warmup..] {
        // Positive deviations beyond the allowed drift accumulate.
        cusum = (cusum + (s.score - mean) / std - drift).max(0.0);
        if cusum > threshold {
            detected.push(s.epoch);
            cusum = 0.0;
        }
    }
    detected
}

/// Precision / recall / F1 of `detected` against `planted` change epochs.
/// A detection within `tolerance` epochs of a planted change counts as a
/// hit (each planted change may be claimed once).
pub fn f1_score(detected: &[usize], planted: &[usize], tolerance: usize) -> (f64, f64, f64) {
    if detected.is_empty() && planted.is_empty() {
        return (1.0, 1.0, 1.0);
    }
    let mut claimed = vec![false; planted.len()];
    let mut tp = 0usize;
    for &d in detected {
        if let Some(pos) = planted.iter().enumerate().position(|(i, &p)| {
            !claimed[i] && d.abs_diff(p) <= tolerance
        }) {
            claimed[pos] = true;
            tp += 1;
        }
    }
    let precision = if detected.is_empty() { 0.0 } else { tp as f64 / detected.len() as f64 };
    let recall = if planted.is_empty() { 1.0 } else { tp as f64 / planted.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::SparseTensor;
    use hive_rng::Rng;

    /// A stream of noisy epochs with a planted structural shift: a dense
    /// block appears at the given epochs.
    fn planted_stream(epochs: usize, change_at: &[usize], seed: u64) -> TensorStream {
        let shape = vec![20, 20, 3];
        let mut stream = TensorStream::new(shape.clone());
        let mut rng = Rng::seed_from_u64(seed);
        // A stable background pattern with small per-epoch jitter.
        let background: Vec<(Vec<usize>, f64)> = (0..150)
            .map(|_| {
                (
                    vec![rng.gen_range(0..20), rng.gen_range(0..20), rng.gen_range(0..3)],
                    rng.gen_range(0.2..1.0),
                )
            })
            .collect();
        for e in 0..epochs {
            let mut t = SparseTensor::new(shape.clone());
            for (idx, v) in &background {
                t.set(idx, v + rng.gen_range(-0.05..0.05));
            }
            if change_at.contains(&e) {
                // Structural shift: a new dense community block.
                for i in 0..6 {
                    for j in 0..6 {
                        t.add(&[i, j, 0], 2.0);
                    }
                }
            }
            stream.push(t);
        }
        stream
    }

    #[test]
    fn all_backends_flag_the_planted_change() {
        let planted = vec![10];
        let stream = planted_stream(16, &planted, 1);
        for backend in [
            DetectorBackend::FullDiff,
            DetectorBackend::Sketch(SketchConfig { measurements: 512, seed: 3 }),
            DetectorBackend::CpAls { rank: 2, iters: 8, seed: 3 },
        ] {
            let det = ChangeDetector::new(backend);
            let scores = det.score_stream(&stream);
            let hits = detect_changes(&scores, 5.0, 5);
            // The block appears at 10 and disappears at 11: both
            // transitions are legitimate structural changes.
            assert!(
                hits.contains(&10),
                "{} missed the planted change, hits={hits:?}",
                det.name()
            );
            for &h in &hits {
                assert!(
                    h == 10 || h == 11,
                    "{} produced spurious hit {h} (hits={hits:?})",
                    det.name()
                );
            }
        }
    }

    #[test]
    fn quiet_stream_yields_no_detections() {
        let stream = planted_stream(12, &[], 5);
        let det = ChangeDetector::new(DetectorBackend::FullDiff);
        let scores = det.score_stream(&stream);
        let hits = detect_changes(&scores, 4.0, 4);
        assert!(hits.is_empty(), "no planted change, got {hits:?}");
    }

    #[test]
    fn scores_cover_all_transitions() {
        let stream = planted_stream(8, &[], 2);
        let det = ChangeDetector::new(DetectorBackend::Sketch(SketchConfig::default()));
        let scores = det.score_stream(&stream);
        assert_eq!(scores.len(), 7);
        assert_eq!(scores[0].epoch, 1);
        assert_eq!(scores[6].epoch, 7);
    }

    #[test]
    fn f1_scoring() {
        let (p, r, f) = f1_score(&[10, 20], &[10, 20], 0);
        assert_eq!((p, r, f), (1.0, 1.0, 1.0));
        let (p, r, _) = f1_score(&[10], &[10, 20], 0);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.5);
        let (p, _, _) = f1_score(&[10, 15], &[10], 0);
        assert_eq!(p, 0.5);
        // Tolerance window.
        let (_, r, _) = f1_score(&[11], &[10], 1);
        assert_eq!(r, 1.0);
        // Each planted change claimed once.
        let (p, r, _) = f1_score(&[10, 10], &[10], 0);
        assert_eq!(p, 0.5);
        assert_eq!(r, 1.0);
        assert_eq!(f1_score(&[], &[], 0), (1.0, 1.0, 1.0));
        assert_eq!(f1_score(&[], &[5], 0).2, 0.0);
    }

    #[test]
    fn cusum_flags_abrupt_shift() {
        // Flat baseline, then a clear jump.
        let scores: Vec<EpochScore> = (1..=20)
            .map(|e| EpochScore { epoch: e, score: if e >= 12 { 10.0 } else { 1.0 } })
            .collect();
        let hits = detect_changes_cusum(&scores, 4.0, 0.5, 5);
        assert!(hits.contains(&12), "jump at 12 flagged, got {hits:?}");
        assert!(hits.iter().all(|&h| h >= 12), "no flags before the jump: {hits:?}");
    }

    #[test]
    fn cusum_accumulates_persistent_drift() {
        // Each epoch only +0.8 std above the mean: a 3-sigma z-rule never
        // fires, but the deviation persists and CUSUM accumulates it.
        let mut scores: Vec<EpochScore> = (1..=6)
            .map(|e| EpochScore { epoch: e, score: 1.0 + (e % 2) as f64 * 0.2 })
            .collect();
        for e in 7..=20 {
            scores.push(EpochScore { epoch: e, score: 1.18 }); // ~ +0.8 std
        }
        let z_hits = detect_changes(&scores, 3.0, 6);
        let cusum_hits = detect_changes_cusum(&scores, 4.0, 0.3, 6);
        assert!(z_hits.is_empty(), "z-rule misses the slow drift: {z_hits:?}");
        assert!(!cusum_hits.is_empty(), "CUSUM accumulates it");
    }

    #[test]
    fn cusum_quiet_stream_stays_quiet() {
        let scores: Vec<EpochScore> = (1..=20)
            .map(|e| EpochScore { epoch: e, score: 1.0 + ((e * 7) % 3) as f64 * 0.01 })
            .collect();
        assert!(detect_changes_cusum(&scores, 6.0, 0.5, 6).is_empty());
    }

    #[test]
    fn detect_changes_warmup_respected() {
        let scores: Vec<EpochScore> = (1..=3)
            .map(|e| EpochScore { epoch: e, score: 100.0 * e as f64 })
            .collect();
        // With warmup 5 there is never enough history to flag anything.
        assert!(detect_changes(&scores, 1.0, 5).is_empty());
    }
}
