//! Randomized tensor ensemble sketches (compressed-sensing style).
//!
//! Each of the `r` ensemble members is a stable random ±1 measurement
//! vector over tensor coordinates: measurement `m_k = Σ_idx s_k(idx) ·
//! T[idx]`, with the sign `s_k(idx)` derived from a hash of `(seed, k,
//! idx)` — no measurement matrix is ever materialized, so sketching a
//! sparse tensor costs `O(nnz · r)`.
//!
//! By the AMS/JL argument, `||sketch(A) - sketch(B)|| / sqrt(r)` is an
//! unbiased estimate of `||A - B||_F`, which is exactly the quantity the
//! change detector needs — computed from `2r` numbers instead of the full
//! tensors.

use crate::tensor::SparseTensor;

/// Sketch parameters.
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Ensemble size (number of measurements).
    pub measurements: usize,
    /// Hash seed; sketches are only comparable under the same seed.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig { measurements: 64, seed: 0x5ce27 }
    }
}

/// A fixed-size sketch of one tensor epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorSketch {
    values: Vec<f64>,
    seed: u64,
}

/// SplitMix64: a fast, well-distributed 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Stable coordinate hash.
fn index_hash(idx: &[usize]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &x in idx {
        h = splitmix64(h ^ x as u64);
    }
    h
}

/// The ±1 sign of measurement `k` at coordinate hash `ih`.
fn sign(seed: u64, k: usize, ih: u64) -> f64 {
    let bit = splitmix64(seed ^ splitmix64(ih ^ (k as u64).wrapping_mul(0x9e37_79b9))) & 1;
    if bit == 0 {
        1.0
    } else {
        -1.0
    }
}

impl TensorSketch {
    /// Sketches a tensor.
    pub fn compute(t: &SparseTensor, cfg: SketchConfig) -> Self {
        assert!(cfg.measurements > 0, "need at least one measurement");
        let mut values = vec![0.0f64; cfg.measurements];
        for (idx, v) in t.iter() {
            let ih = index_hash(idx);
            for (k, slot) in values.iter_mut().enumerate() {
                *slot += sign(cfg.seed, k, ih) * v;
            }
        }
        TensorSketch { values, seed: cfg.seed }
    }

    /// Incrementally applies a delta `(idx, dv)` to an existing sketch —
    /// the streaming update path (cost `O(r)` per changed cell).
    pub fn apply_delta(&mut self, idx: &[usize], dv: f64) {
        let ih = index_hash(idx);
        for (k, slot) in self.values.iter_mut().enumerate() {
            *slot += sign(self.seed, k, ih) * dv;
        }
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the sketch has no measurements (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Estimated Frobenius distance to another sketch (same seed and
    /// ensemble size required).
    pub fn estimate_distance(&self, other: &TensorSketch) -> f64 {
        assert_eq!(self.seed, other.seed, "sketches use different seeds");
        assert_eq!(self.values.len(), other.values.len(), "ensemble size mismatch");
        let sum: f64 = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / self.values.len() as f64).sqrt()
    }

    /// Estimated Frobenius norm of the sketched tensor.
    pub fn estimate_norm(&self) -> f64 {
        let sum: f64 = self.values.iter().map(|v| v * v).sum();
        (sum / self.values.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_rng::Rng;

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut t = SparseTensor::new(shape.to_vec());
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.gen_range(0..d)).collect();
            t.set(&idx, rng.gen_range(-1.0..1.0));
        }
        t
    }

    #[test]
    fn norm_estimate_is_close() {
        let t = random_tensor(&[30, 30, 5], 400, 1);
        let sk = TensorSketch::compute(&t, SketchConfig { measurements: 512, seed: 7 });
        let exact = t.frobenius_norm();
        let est = sk.estimate_norm();
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.25, "relative error {rel} too high (est {est}, exact {exact})");
    }

    #[test]
    fn distance_estimate_tracks_true_distance() {
        let a = random_tensor(&[30, 30, 5], 400, 1);
        let mut b = a.clone();
        // Perturb ~40 cells.
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..40 {
            let idx = vec![
                rng.gen_range(0..30),
                rng.gen_range(0..30),
                rng.gen_range(0..5),
            ];
            b.add(&idx, rng.gen_range(-1.0..1.0));
        }
        let cfg = SketchConfig { measurements: 512, seed: 42 };
        let sa = TensorSketch::compute(&a, cfg);
        let sb = TensorSketch::compute(&b, cfg);
        let exact = a.frobenius_distance(&b);
        let est = sa.estimate_distance(&sb);
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.3, "distance estimate off by {rel} (est {est}, exact {exact})");
    }

    #[test]
    fn identical_tensors_have_zero_distance() {
        let t = random_tensor(&[10, 10], 50, 3);
        let cfg = SketchConfig::default();
        let s1 = TensorSketch::compute(&t, cfg);
        let s2 = TensorSketch::compute(&t, cfg);
        assert_eq!(s1.estimate_distance(&s2), 0.0);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let t = random_tensor(&[10, 10], 50, 4);
        let cfg = SketchConfig { measurements: 32, seed: 5 };
        let mut sk = TensorSketch::compute(&t, cfg);
        let mut t2 = t.clone();
        t2.add(&[3, 4], 0.7);
        sk.apply_delta(&[3, 4], 0.7);
        let fresh = TensorSketch::compute(&t2, cfg);
        for (a, b) in sk.values.iter().zip(&fresh.values) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "different seeds")]
    fn seed_mismatch_rejected() {
        let t = random_tensor(&[4, 4], 5, 0);
        let s1 = TensorSketch::compute(&t, SketchConfig { measurements: 8, seed: 1 });
        let s2 = TensorSketch::compute(&t, SketchConfig { measurements: 8, seed: 2 });
        s1.estimate_distance(&s2);
    }

    #[test]
    fn more_measurements_reduce_error() {
        let a = random_tensor(&[20, 20, 4], 300, 11);
        let b = random_tensor(&[20, 20, 4], 300, 12);
        let exact = a.frobenius_distance(&b);
        let err = |r: usize| {
            // Average over several seeds to damp luck.
            let mut total = 0.0;
            for seed in 0..8 {
                let cfg = SketchConfig { measurements: r, seed };
                let sa = TensorSketch::compute(&a, cfg);
                let sb = TensorSketch::compute(&b, cfg);
                total += (sa.estimate_distance(&sb) - exact).abs() / exact;
            }
            total / 8.0
        };
        let coarse = err(8);
        let fine = err(512);
        assert!(fine < coarse, "error should shrink with r: {fine} < {coarse}");
    }
}
