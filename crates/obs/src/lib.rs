//! # hive-obs — deterministic observability for the Hive platform
//!
//! A zero-registry-dependency metrics/tracing substrate: hierarchical
//! spans with enter/exit timing, named counters, and fixed-bucket
//! latency histograms, keyed by [`ServiceKind`] — the paper's Table 1
//! service inventory. Everything the layer records derives from the
//! platform's **logical clock** (ticks, never wall time — lint rule R3
//! holds here too), so two runs of the same seeded workload produce
//! **byte-identical** reports, and an obs-on run returns bit-identical
//! query results to an obs-off run (the observer-effect contract; see
//! `tests/obs_determinism.rs`).
//!
//! Recording is per-thread: each thread owns a [`Registry`] and the
//! deterministic workload drivers are single-threaded, so reports never
//! depend on scheduling. Counters recorded *inside* `hive-par` pool
//! workers are harvested by the pool via [`drain_counters`] /
//! [`merge_counters`] and folded into the caller's registry — counter
//! sums are order-independent, so parallel runs report the same counts
//! as serial runs.
//!
//! The recording level comes from the `HIVE_OBS` environment variable
//! (read once): `off` (default, near-zero overhead), `counts`
//! (counters only), or `full` (counters + spans + histograms). Tests
//! use [`with_level`] for a scoped, thread-local override instead of
//! mutating the environment.
//!
//! ```
//! use hive_obs as obs;
//! obs::with_level(obs::Level::Full, || {
//!     obs::reset();
//!     let t = obs::service_enter(obs::ServiceKind::Search, 10);
//!     obs::count("store.pattern_scan", 3);
//!     obs::service_exit(obs::ServiceKind::Search, t, 12);
//!     let report = obs::report_text();
//!     assert!(report.contains("search"));
//!     assert!(report.contains("store.pattern_scan"));
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;

pub use registry::{Histogram, Registry, ServiceStats, SpanStats, BUCKET_LABELS, N_BUCKETS};

use std::cell::RefCell;
use std::sync::OnceLock;

/// How much the layer records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing (the default; every hook is a cheap no-op).
    #[default]
    Off,
    /// Counters and per-service call counts only.
    Counts,
    /// Counters, hierarchical spans, and latency histograms.
    Full,
}

impl Level {
    /// Parses a `HIVE_OBS` value; anything unrecognized is `Off`.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "counts" => Level::Counts,
            "full" => Level::Full,
            _ => Level::Off,
        }
    }

    /// Stable label (`off` / `counts` / `full`).
    pub fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Counts => "counts",
            Level::Full => "full",
        }
    }
}

/// The paper's Table 1 service inventory, one variant per instrumented
/// facade entry-point family. [`ServiceKind::table1_group`] maps each
/// back to its Table 1 row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKind {
    /// Concept-map bootstrapping from user documents (§2.1).
    ConceptBootstrap,
    /// Activity-context construction (active workpad + history).
    ActivityContext,
    /// Contextualized peer recommendation (§2.4).
    PeerRecommendation,
    /// Content-profile peer similarity.
    SimilarPeers,
    /// Session-attendance prediction per peer.
    SessionPrediction,
    /// Connection request/response management.
    ConnectionManagement,
    /// Follow relationships and follow filters.
    FollowManagement,
    /// Context-aware search (§2.3).
    Search,
    /// Pure contextual resource recommendation.
    ResourceRecommendation,
    /// Collaborative-filtering recommendations.
    CollaborativeFiltering,
    /// Relationship discovery and explanation (Figure 2).
    RelationshipExplanation,
    /// Community discovery over the social layers.
    CommunityDiscovery,
    /// Context-biased extractive summarization.
    Summarization,
    /// Scheduled, size-constrained update reports.
    UpdateReport,
    /// Trending sessions / rising topics.
    Trends,
    /// Real-time update feeds, highlights, digests, tickers.
    Feed,
    /// Activity-history search.
    HistorySearch,
    /// Bucketed activity timelines.
    Timeline,
    /// Question asking and answering.
    QuestionAnswering,
    /// Session check-ins.
    CheckIn,
    /// Workpad curation and collection exchange.
    Workpad,
    /// Content registration (users, papers, presentations, slides).
    Ingest,
    /// Engagement events (comments, tweets, views, attendance).
    Engagement,
    /// Platform administration (clock advancement).
    Admin,
}

impl ServiceKind {
    /// Every kind, in declaration order.
    pub const ALL: &'static [ServiceKind] = &[
        ServiceKind::ConceptBootstrap,
        ServiceKind::ActivityContext,
        ServiceKind::PeerRecommendation,
        ServiceKind::SimilarPeers,
        ServiceKind::SessionPrediction,
        ServiceKind::ConnectionManagement,
        ServiceKind::FollowManagement,
        ServiceKind::Search,
        ServiceKind::ResourceRecommendation,
        ServiceKind::CollaborativeFiltering,
        ServiceKind::RelationshipExplanation,
        ServiceKind::CommunityDiscovery,
        ServiceKind::Summarization,
        ServiceKind::UpdateReport,
        ServiceKind::Trends,
        ServiceKind::Feed,
        ServiceKind::HistorySearch,
        ServiceKind::Timeline,
        ServiceKind::QuestionAnswering,
        ServiceKind::CheckIn,
        ServiceKind::Workpad,
        ServiceKind::Ingest,
        ServiceKind::Engagement,
        ServiceKind::Admin,
    ];

    /// Stable kebab-case label used as the report/JSON key.
    pub fn label(self) -> &'static str {
        match self {
            ServiceKind::ConceptBootstrap => "concept-bootstrap",
            ServiceKind::ActivityContext => "activity-context",
            ServiceKind::PeerRecommendation => "peer-recommendation",
            ServiceKind::SimilarPeers => "similar-peers",
            ServiceKind::SessionPrediction => "session-prediction",
            ServiceKind::ConnectionManagement => "connection-management",
            ServiceKind::FollowManagement => "follow-management",
            ServiceKind::Search => "search",
            ServiceKind::ResourceRecommendation => "resource-recommendation",
            ServiceKind::CollaborativeFiltering => "collaborative-filtering",
            ServiceKind::RelationshipExplanation => "relationship-explanation",
            ServiceKind::CommunityDiscovery => "community-discovery",
            ServiceKind::Summarization => "summarization",
            ServiceKind::UpdateReport => "update-report",
            ServiceKind::Trends => "trends",
            ServiceKind::Feed => "feed",
            ServiceKind::HistorySearch => "history-search",
            ServiceKind::Timeline => "timeline",
            ServiceKind::QuestionAnswering => "question-answering",
            ServiceKind::CheckIn => "check-in",
            ServiceKind::Workpad => "workpad",
            ServiceKind::Ingest => "ingest",
            ServiceKind::Engagement => "engagement",
            ServiceKind::Admin => "admin",
        }
    }

    /// The Table 1 row this service belongs to (content/registration
    /// plumbing that Table 1 implies but does not list is grouped under
    /// `content-and-platform`).
    pub fn table1_group(self) -> &'static str {
        match self {
            ServiceKind::ConceptBootstrap | ServiceKind::ActivityContext => {
                "concept-map-and-personalization"
            }
            ServiceKind::PeerRecommendation
            | ServiceKind::SimilarPeers
            | ServiceKind::SessionPrediction
            | ServiceKind::ConnectionManagement
            | ServiceKind::FollowManagement => "peer-network-services",
            ServiceKind::Search
            | ServiceKind::ResourceRecommendation
            | ServiceKind::CollaborativeFiltering
            | ServiceKind::RelationshipExplanation
            | ServiceKind::CommunityDiscovery
            | ServiceKind::Summarization
            | ServiceKind::UpdateReport
            | ServiceKind::Trends => "discovery-recommendation-preview",
            ServiceKind::HistorySearch | ServiceKind::Timeline => "personal-activity-history",
            ServiceKind::Feed
            | ServiceKind::QuestionAnswering
            | ServiceKind::CheckIn
            | ServiceKind::Workpad
            | ServiceKind::Ingest
            | ServiceKind::Engagement
            | ServiceKind::Admin => "content-and-platform",
        }
    }
}

/// Opaque handle returned by [`service_enter`] / [`span_enter`] and
/// consumed by the matching exit call. Carries the span-stack depth so
/// a missed exit (panic unwound past it) cannot corrupt later spans.
#[derive(Clone, Copy, Debug)]
pub struct SpanToken {
    depth: Option<usize>,
}

impl SpanToken {
    /// A token that records nothing on exit.
    pub const NONE: SpanToken = SpanToken { depth: None };
}

fn env_level() -> Level {
    static ENV: OnceLock<Level> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HIVE_OBS").map(|v| Level::parse(&v)).unwrap_or(Level::Off)
    })
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::new(env_level()));
}

/// Runs `f` with mutable access to this thread's registry. Recording is
/// best-effort and panic-free: a re-entrant borrow (impossible in the
/// current call graph, but cheap to guard) silently skips the record.
fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> Option<R> {
    REGISTRY.with(|cell| cell.try_borrow_mut().ok().map(|mut r| f(&mut r)))
}

/// The active recording level on this thread.
pub fn level() -> Level {
    with_registry(|r| r.level()).unwrap_or(Level::Off)
}

/// Sets the recording level for this thread (the `hive-par` pool uses
/// this to propagate the caller's level into scoped workers).
pub fn set_level(level: Level) {
    with_registry(|r| r.set_level(level));
}

/// Runs `f` with the level pinned on this thread, restoring the
/// previous level afterwards (panic-safe). The canonical test hook.
pub fn with_level<R>(new: Level, f: impl FnOnce() -> R) -> R {
    struct Restore(Level);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_level(self.0);
        }
    }
    let prev = level();
    set_level(new);
    let _restore = Restore(prev);
    f()
}

/// Clears every recorded value on this thread (level is kept). Call at
/// deployment start so reports describe exactly one platform lifetime.
pub fn reset() {
    with_registry(Registry::clear);
}

/// Adds `delta` to the named counter. No-op at `Level::Off`.
pub fn count(name: &str, delta: u64) {
    with_registry(|r| r.count(name, delta));
}

/// Opens a service span: bumps the per-service call counter (`counts`
/// and up) and pushes a span frame stamped with the logical-clock tick
/// `now` (`full` only). Pair with [`service_exit`].
pub fn service_enter(kind: ServiceKind, now: u64) -> SpanToken {
    with_registry(|r| r.service_enter(kind, now)).unwrap_or(SpanToken::NONE)
}

/// Closes a service span opened by [`service_enter`], recording the
/// tick duration into the service's histogram and the span tree.
pub fn service_exit(kind: ServiceKind, token: SpanToken, now: u64) {
    with_registry(|r| r.span_exit_at(token.depth, Some(kind), now));
}

/// Opens a plain hierarchical span (internal phases like a knowledge
/// network rebuild). Records only at `Level::Full`.
pub fn span_enter(label: &'static str, now: u64) -> SpanToken {
    with_registry(|r| r.span_enter(label, now)).unwrap_or(SpanToken::NONE)
}

/// Closes a span opened by [`span_enter`].
pub fn span_exit(token: SpanToken, now: u64) {
    with_registry(|r| r.span_exit_at(token.depth, None, now));
}

/// Takes (and clears) this thread's named counters. Pool workers call
/// this at the end of their run so the pool can fold worker-side counts
/// back into the caller's registry.
pub fn drain_counters() -> Vec<(String, u64)> {
    with_registry(Registry::drain_counters).unwrap_or_default()
}

/// Adds a batch of drained counters into this thread's registry.
/// Addition commutes, so merge order (worker scheduling) cannot affect
/// the totals.
pub fn merge_counters(items: &[(String, u64)]) {
    with_registry(|r| {
        for (name, delta) in items {
            r.count(name, *delta);
        }
    });
}

/// Raises a named high-water-mark gauge to at least `value` (no-op at
/// [`Level::Off`]). Gauges record peaks — deepest reader lag, largest
/// published generation — and merge by maximum, not by sum.
pub fn gauge_max(name: &str, value: u64) {
    with_registry(|r| r.gauge_max(name, value));
}

/// Overwrites a named gauge with its latest reading (no-op at
/// [`Level::Off`]). Use for level state whose most recent value is the
/// meaningful one — current replica lag, current queue depth — where
/// [`gauge_max`] would freeze the historical peak instead.
pub fn gauge_set(name: &str, value: u64) {
    with_registry(|r| r.gauge_set(name, value));
}

/// Takes (and clears) this thread's gauges as sorted pairs.
pub fn drain_gauges() -> Vec<(String, u64)> {
    with_registry(Registry::drain_gauges).unwrap_or_default()
}

/// Folds a batch of drained gauges into this thread's registry by
/// maximum. Max commutes, so merge order (worker scheduling) cannot
/// affect the peaks.
pub fn merge_gauges(items: &[(String, u64)]) {
    with_registry(|r| {
        for (name, value) in items {
            r.gauge_max(name, *value);
        }
    });
}

/// A deep copy of this thread's registry (for assertions and renders).
pub fn snapshot() -> Registry {
    with_registry(|r| r.clone()).unwrap_or_default()
}

/// The stable, sorted plain-text report of this thread's registry.
pub fn report_text() -> String {
    snapshot().render_report()
}

/// The stable, sorted JSON report of this thread's registry.
pub fn report_json() -> String {
    snapshot().render_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("full"), Level::Full);
        assert_eq!(Level::parse(" Counts "), Level::Counts);
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("banana"), Level::Off);
        assert_eq!(Level::Full.label(), "full");
    }

    #[test]
    fn every_kind_has_unique_label_and_a_group() {
        let mut labels: Vec<&str> = ServiceKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n, "labels must be unique");
        for k in ServiceKind::ALL {
            assert!(!k.table1_group().is_empty());
        }
    }

    #[test]
    fn off_level_records_nothing() {
        with_level(Level::Off, || {
            reset();
            count("x", 3);
            let t = service_enter(ServiceKind::Search, 0);
            service_exit(ServiceKind::Search, t, 5);
            let snap = snapshot();
            assert!(snap.is_empty());
            assert!(snap.render_report().contains("no data recorded"));
        });
    }

    #[test]
    fn counts_level_skips_spans() {
        with_level(Level::Counts, || {
            reset();
            let t = service_enter(ServiceKind::Search, 0);
            count("store.pattern_scan", 2);
            service_exit(ServiceKind::Search, t, 7);
            let snap = snapshot();
            assert_eq!(snap.service(ServiceKind::Search).map(|s| s.calls), Some(1));
            assert!(snap.spans().next().is_none(), "no spans at counts level");
            assert_eq!(snap.counter("store.pattern_scan"), 2);
        });
    }

    #[test]
    fn full_level_builds_a_span_tree() {
        with_level(Level::Full, || {
            reset();
            let outer = service_enter(ServiceKind::Search, 10);
            let inner = span_enter("kn-build", 10);
            span_exit(inner, 13);
            service_exit(ServiceKind::Search, outer, 14);
            let snap = snapshot();
            let spans: Vec<(String, SpanStats)> =
                snap.spans().map(|(p, s)| (p.to_string(), *s)).collect();
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].0, "search");
            assert_eq!(spans[0].1.ticks, 4);
            assert_eq!(spans[1].0, "search/kn-build");
            assert_eq!(spans[1].1.ticks, 3);
            let svc = snap.service(ServiceKind::Search).copied().unwrap_or_default();
            assert_eq!(svc.calls, 1);
            assert_eq!(svc.ticks, 4);
        });
    }

    #[test]
    fn reports_are_stable_and_sorted() {
        let render = || {
            with_level(Level::Full, || {
                reset();
                count("zeta", 1);
                count("alpha", 2);
                let t = service_enter(ServiceKind::Timeline, 0);
                service_exit(ServiceKind::Timeline, t, 1);
                (report_text(), report_json())
            })
        };
        let (t1, j1) = render();
        let (t2, j2) = render();
        assert_eq!(t1, t2);
        assert_eq!(j1, j2);
        let alpha = t1.find("alpha").unwrap();
        let zeta = t1.find("zeta").unwrap();
        assert!(alpha < zeta, "counters sorted by name");
        assert!(hive_json::Json::parse(&j1).is_ok(), "json report parses");
    }

    #[test]
    fn drained_counters_merge_commutatively() {
        with_level(Level::Counts, || {
            reset();
            count("a", 1);
            let drained = drain_counters();
            assert_eq!(drained, vec![("a".to_string(), 1)]);
            assert_eq!(snapshot().counter("a"), 0, "drain clears");
            merge_counters(&[("a".to_string(), 2), ("b".to_string(), 5)]);
            merge_counters(&[("b".to_string(), 1)]);
            assert_eq!(snapshot().counter("a"), 2);
            assert_eq!(snapshot().counter("b"), 6);
        });
    }

    #[test]
    fn unbalanced_exits_are_harmless() {
        with_level(Level::Full, || {
            reset();
            let t = span_enter("only", 0);
            span_exit(t, 1);
            // A second exit with the same token must not underflow.
            span_exit(t, 2);
            span_exit(SpanToken::NONE, 3);
            assert_eq!(snapshot().spans().count(), 1);
        });
    }
}
