//! The per-thread metric store: counters, per-service stats, span tree.

use crate::{Level, ServiceKind, SpanToken};
use hive_json::Json;
use std::collections::BTreeMap;

/// Number of fixed histogram buckets.
pub const N_BUCKETS: usize = 8;

/// Human-readable tick ranges of the fixed buckets, in order.
pub const BUCKET_LABELS: [&str; N_BUCKETS] =
    ["0", "1", "2", "3-4", "5-8", "9-16", "17-32", "33+"];

/// A fixed-bucket histogram over logical-tick durations. The bucket
/// layout is compiled in (never data-dependent), so two runs of the
/// same workload fill identical buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
}

impl Histogram {
    /// Records one duration (in ticks).
    pub fn record(&mut self, ticks: u64) {
        let idx = match ticks {
            0 => 0,
            1 => 1,
            2 => 2,
            3..=4 => 3,
            5..=8 => 4,
            9..=16 => 5,
            17..=32 => 6,
            _ => 7,
        };
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
    }

    /// The bucket counts, ordered as [`BUCKET_LABELS`].
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    fn render(&self) -> String {
        let cells: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        format!("[{}]", cells.join(","))
    }
}

/// Aggregated per-service statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Completed + in-flight invocations (bumped at enter).
    pub calls: u64,
    /// Total logical ticks spent inside the service span (`full` only).
    pub ticks: u64,
    /// Latency histogram over per-call tick durations (`full` only).
    pub hist: Histogram,
}

/// Aggregated statistics for one span-tree path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans at this path.
    pub count: u64,
    /// Total logical ticks across those spans.
    pub ticks: u64,
}

#[derive(Clone, Debug)]
struct Frame {
    path: String,
    enter: u64,
}

/// One thread's recorded observability state. Obtain a copy of the
/// active registry with [`crate::snapshot`]; render it with
/// [`Registry::render_report`] / [`Registry::render_json`] — both are
/// stable and sorted, so tests can assert on them byte-exactly.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    level: Level,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    services: BTreeMap<ServiceKind, ServiceStats>,
    spans: BTreeMap<String, SpanStats>,
    stack: Vec<Frame>,
}

impl Registry {
    /// A fresh registry recording at `level`.
    pub fn new(level: Level) -> Self {
        Registry { level, ..Registry::default() }
    }

    /// The active recording level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Changes the recording level (existing data is kept).
    pub fn set_level(&mut self, level: Level) {
        self.level = level;
    }

    /// Drops every recorded value, keeping the level.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.services.clear();
        self.spans.clear();
        self.stack.clear();
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.services.is_empty()
            && self.spans.is_empty()
    }

    /// Adds `delta` to a named counter (no-op at `Level::Off`).
    pub fn count(&mut self, name: &str, delta: u64) {
        if self.level == Level::Off || delta == 0 {
            return;
        }
        let slot = match self.counters.get_mut(name) {
            Some(v) => v,
            None => self.counters.entry(name.to_string()).or_insert(0),
        };
        *slot = slot.saturating_add(delta);
    }

    /// The current value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sorted iterator over the named counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Raises a named high-water-mark gauge to at least `value` (no-op
    /// at `Level::Off`). Unlike counters, gauges merge by maximum, so
    /// they record peaks (deepest epoch lag, largest published
    /// generation) rather than totals.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        if self.level == Level::Off {
            return;
        }
        if let Some(v) = self.gauges.get_mut(name) {
            *v = (*v).max(value);
            return;
        }
        self.gauges.insert(name.to_string(), value);
    }

    /// Overwrites a named gauge with its latest reading (no-op at
    /// `Level::Off`). Where [`Registry::gauge_max`] records peaks, this
    /// records level state — current replica lag, current queue depth —
    /// whose most recent value is the meaningful one.
    pub fn gauge_set(&mut self, name: &str, value: u64) {
        if self.level == Level::Off {
            return;
        }
        self.gauges.insert(name.to_string(), value);
    }

    /// The current value of a named gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sorted iterator over the named gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Takes (and clears) the named gauges as sorted pairs.
    pub fn drain_gauges(&mut self) -> Vec<(String, u64)> {
        std::mem::take(&mut self.gauges).into_iter().collect()
    }

    /// Stats recorded for one service, if any.
    pub fn service(&self, kind: ServiceKind) -> Option<&ServiceStats> {
        self.services.get(&kind)
    }

    /// Iterator over `(kind, stats)` for every touched service.
    pub fn services(&self) -> impl Iterator<Item = (ServiceKind, &ServiceStats)> {
        self.services.iter().map(|(k, v)| (*k, v))
    }

    /// Sorted iterator over the aggregated span tree.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStats)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Takes (and clears) the named counters as sorted pairs.
    pub fn drain_counters(&mut self) -> Vec<(String, u64)> {
        std::mem::take(&mut self.counters).into_iter().collect()
    }

    /// Opens a service span (see [`crate::service_enter`]).
    pub fn service_enter(&mut self, kind: ServiceKind, now: u64) -> SpanToken {
        if self.level == Level::Off {
            return SpanToken::NONE;
        }
        self.services.entry(kind).or_default().calls += 1;
        self.push_frame(kind.label(), now)
    }

    /// Opens a plain span (see [`crate::span_enter`]).
    pub fn span_enter(&mut self, label: &'static str, now: u64) -> SpanToken {
        if self.level != Level::Full {
            return SpanToken::NONE;
        }
        self.push_frame(label, now)
    }

    fn push_frame(&mut self, label: &'static str, now: u64) -> SpanToken {
        if self.level != Level::Full {
            return SpanToken::NONE;
        }
        let path = match self.stack.last() {
            Some(parent) => format!("{}/{label}", parent.path),
            None => label.to_string(),
        };
        self.stack.push(Frame { path, enter: now });
        SpanToken { depth: Some(self.stack.len() - 1) }
    }

    /// Closes the span opened at stack depth `depth`, attributing its
    /// tick duration to the span tree (and, when `kind` is given, to
    /// that service's histogram). Stale or `NONE` tokens are ignored;
    /// abandoned child frames above `depth` are discarded unrecorded.
    pub fn span_exit_at(&mut self, depth: Option<usize>, kind: Option<ServiceKind>, now: u64) {
        let Some(depth) = depth else { return };
        if depth >= self.stack.len() {
            return;
        }
        self.stack.truncate(depth + 1);
        let Some(frame) = self.stack.pop() else { return };
        let ticks = now.saturating_sub(frame.enter);
        let agg = self.spans.entry(frame.path).or_default();
        agg.count += 1;
        agg.ticks = agg.ticks.saturating_add(ticks);
        if let Some(kind) = kind {
            let svc = self.services.entry(kind).or_default();
            svc.ticks = svc.ticks.saturating_add(ticks);
            svc.hist.record(ticks);
        }
    }

    /// Renders the stable, sorted plain-text report: services (by
    /// label), then span paths, then counters, then gauges — each
    /// section omitted when empty.
    pub fn render_report(&self) -> String {
        let mut out = format!("hive-obs report (level={})\n", self.level.label());
        if self.is_empty() {
            out.push_str("(no data recorded)\n");
            return out;
        }
        let mut services: Vec<(&'static str, ServiceKind, &ServiceStats)> =
            self.services.iter().map(|(k, v)| (k.label(), *k, v)).collect();
        services.sort_by(|a, b| a.0.cmp(b.0));
        if !services.is_empty() {
            out.push_str("services:\n");
            for (label, _kind, stats) in &services {
                if stats.hist.is_empty() {
                    out.push_str(&format!("  {label:<28} calls={}\n", stats.calls));
                } else {
                    out.push_str(&format!(
                        "  {label:<28} calls={:<6} ticks={:<8} hist={}\n",
                        stats.calls,
                        stats.ticks,
                        stats.hist.render()
                    ));
                }
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (path, s) in &self.spans {
                out.push_str(&format!("  {path:<40} count={:<6} ticks={}\n", s.count, s.ticks));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} = {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} = {v}\n"));
            }
        }
        out
    }

    /// Renders the same snapshot as sorted JSON (via `hive-json`).
    pub fn render_json(&self) -> String {
        let int = |v: u64| Json::Int(v.min(i64::MAX as u64) as i64);
        let mut services: Vec<(&'static str, ServiceKind, &ServiceStats)> =
            self.services.iter().map(|(k, v)| (k.label(), *k, v)).collect();
        services.sort_by(|a, b| a.0.cmp(b.0));
        let services_json = Json::Obj(
            services
                .into_iter()
                .map(|(label, kind, s)| {
                    (
                        label.to_string(),
                        Json::Obj(vec![
                            ("group".to_string(), Json::Str(kind.table1_group().to_string())),
                            ("calls".to_string(), int(s.calls)),
                            ("ticks".to_string(), int(s.ticks)),
                            (
                                "hist".to_string(),
                                Json::Arr(s.hist.buckets().iter().map(|&b| int(b)).collect()),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let spans_json = Json::Obj(
            self.spans
                .iter()
                .map(|(path, s)| {
                    (
                        path.clone(),
                        Json::Obj(vec![
                            ("count".to_string(), int(s.count)),
                            ("ticks".to_string(), int(s.ticks)),
                        ]),
                    )
                })
                .collect(),
        );
        let counters_json =
            Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), int(*v))).collect());
        let gauges_json =
            Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), int(*v))).collect());
        Json::Obj(vec![
            ("level".to_string(), Json::Str(self.level.label().to_string())),
            ("services".to_string(), services_json),
            ("spans".to_string(), spans_json),
            ("counters".to_string(), counters_json),
            ("gauges".to_string(), gauges_json),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_all_ticks() {
        let mut h = Histogram::default();
        for t in [0u64, 1, 2, 3, 4, 5, 8, 9, 16, 17, 32, 33, 1_000_000] {
            h.record(t);
        }
        assert_eq!(h.buckets().iter().sum::<u64>(), 13);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[3], 2, "3 and 4 share a bucket");
        assert_eq!(h.buckets()[7], 2, "33+ is the overflow bucket");
    }

    #[test]
    fn registry_counts_and_renders() {
        let mut r = Registry::new(Level::Full);
        r.count("b", 2);
        r.count("a", 1);
        let t = r.service_enter(ServiceKind::Search, 5);
        r.span_exit_at(t.depth, Some(ServiceKind::Search), 9);
        let text = r.render_report();
        assert!(text.contains("search"));
        assert!(text.contains("calls=1"));
        let json = r.render_json();
        let parsed = hive_json::Json::parse(&json).expect("valid json");
        assert!(matches!(parsed, Json::Obj(_)));
        // Off-level registries refuse counts.
        let mut off = Registry::new(Level::Off);
        off.count("a", 1);
        assert!(off.is_empty());
    }

    #[test]
    fn gauges_keep_the_maximum() {
        let mut r = Registry::new(Level::Counts);
        r.gauge_max("lag", 3);
        r.gauge_max("lag", 1);
        r.gauge_max("lag", 7);
        assert_eq!(r.gauge("lag"), 7);
        assert_eq!(r.gauge("absent"), 0);
        assert!(r.render_report().contains("gauges:"));
        let drained = r.drain_gauges();
        assert_eq!(drained, vec![("lag".to_string(), 7)]);
        assert_eq!(r.gauge("lag"), 0);
        // Off-level registries refuse gauges too.
        let mut off = Registry::new(Level::Off);
        off.gauge_max("lag", 9);
        assert!(off.is_empty());
    }

    #[test]
    fn clear_keeps_level() {
        let mut r = Registry::new(Level::Counts);
        r.count("a", 1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.level(), Level::Counts);
    }
}
