//! Log frames and their checksummed wire form.
//!
//! A frame is one slot of the replication log: either a batch of typed
//! operations spanning leader generations `start_gen..end_gen`
//! (together with the classified delta stream the leader journaled for
//! them — the follower's cross-check oracle), or a full-snapshot
//! checkpoint for bootstrap and gap/truncation recovery.
//!
//! The wire form wraps the frame JSON in an envelope with an FNV-1a
//! checksum, so transport damage (the fault injector truncates and
//! mangles frames on purpose) surfaces as a typed
//! [`ReplicaError::Corrupt`] — never as a half-applied frame.

use crate::ops::ReplOp;
use crate::ReplicaError;
use hive_core::db::DbDelta;
use hive_core::persist::ReplicaCheckpoint;
use hive_json::Json;

/// Current frame format version; a mismatch refuses the frame.
pub const FRAME_VERSION: u32 = 1;

/// A batch of replicated operations plus the classified delta stream
/// the leader journaled while applying them (one delta per generation
/// bump, `start_gen` exclusive through `end_gen` inclusive). After
/// replay, a follower's own journal suffix must equal this stream
/// bit-for-bit.
#[derive(Clone, Debug)]
pub struct OpsBatch {
    /// The operations, in application order.
    pub ops: Vec<ReplOp>,
    /// The leader's classified delta stream for these operations.
    pub deltas: Vec<DbDelta>,
}

hive_json::impl_json_struct!(OpsBatch { ops, deltas });

/// What a frame carries.
#[derive(Clone, Debug)]
pub enum FramePayload {
    /// A sealed batch of operations.
    Ops(OpsBatch),
    /// A full-snapshot checkpoint (bootstrap / re-sync point).
    Checkpoint(ReplicaCheckpoint),
}

hive_json::impl_json_enum_payload!(FramePayload { Ops, Checkpoint });

/// One slot of the replication log.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Frame format version.
    pub version: u32,
    /// Monotone log sequence number (contiguous, starting at 0).
    pub seq: u64,
    /// Leader generation before this frame's effects.
    pub start_gen: u64,
    /// Leader generation after this frame's effects. For checkpoint
    /// frames `start_gen == end_gen == ` the captured generation.
    pub end_gen: u64,
    /// The ops batch or checkpoint.
    pub payload: FramePayload,
}

hive_json::impl_json_struct!(Frame { version, seq, start_gen, end_gen, payload });

impl Frame {
    /// True for checkpoint frames.
    pub fn is_checkpoint(&self) -> bool {
        matches!(self.payload, FramePayload::Checkpoint(_))
    }
}

/// 64-bit FNV-1a over the frame body bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes a frame into its checksummed wire envelope:
/// `{"crc":"<16 hex digits>","body":"<frame JSON>"}`.
pub fn encode(frame: &Frame) -> String {
    let body = hive_json::to_string(frame);
    let crc = format!("{:016x}", fnv1a(body.as_bytes()));
    Json::Obj(vec![
        ("crc".to_string(), Json::Str(crc)),
        ("body".to_string(), Json::Str(body)),
    ])
    .render()
}

/// Parses and validates a wire envelope back into a frame. Any damage
/// — unparseable envelope, checksum mismatch, unparseable body, or a
/// version this build does not speak — is a typed
/// [`ReplicaError::Corrupt`].
pub fn decode(wire: &str) -> crate::Result<Frame> {
    let envelope =
        Json::parse(wire).map_err(|e| ReplicaError::Corrupt(format!("envelope: {}", e.0)))?;
    let Json::Obj(pairs) = &envelope else {
        return Err(ReplicaError::Corrupt("envelope is not an object".to_string()));
    };
    let field = |name: &str| {
        pairs
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v))
            .ok_or_else(|| ReplicaError::Corrupt(format!("envelope missing `{name}`")))
    };
    let crc = field("crc")?
        .as_str()
        .map_err(|e| ReplicaError::Corrupt(format!("crc: {}", e.0)))?;
    let body = field("body")?
        .as_str()
        .map_err(|e| ReplicaError::Corrupt(format!("body: {}", e.0)))?;
    let want = format!("{:016x}", fnv1a(body.as_bytes()));
    if crc != want {
        return Err(ReplicaError::Corrupt(format!("checksum mismatch: {crc} != {want}")));
    }
    let frame: Frame =
        hive_json::from_str(body).map_err(|e| ReplicaError::Corrupt(format!("frame: {}", e.0)))?;
    if frame.version != FRAME_VERSION {
        return Err(ReplicaError::Corrupt(format!(
            "frame version {} (this build speaks {FRAME_VERSION})",
            frame.version
        )));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::FollowOp;
    use hive_core::ids::UserId;

    fn ops_frame() -> Frame {
        Frame {
            version: FRAME_VERSION,
            seq: 7,
            start_gen: 40,
            end_gen: 42,
            payload: FramePayload::Ops(OpsBatch {
                ops: vec![
                    ReplOp::AdvanceClock(3),
                    ReplOp::Follow(FollowOp { follower: UserId(1), followee: UserId(4) }),
                ],
                deltas: vec![
                    DbDelta::Neutral,
                    DbDelta::Follow { follower: UserId(1), followee: UserId(4) },
                ],
            }),
        }
    }

    #[test]
    fn roundtrip_preserves_frame() {
        let frame = ops_frame();
        let wire = encode(&frame);
        let back = decode(&wire).expect("clean wire decodes");
        assert_eq!(back.seq, frame.seq);
        assert_eq!(back.start_gen, frame.start_gen);
        assert_eq!(back.end_gen, frame.end_gen);
        let FramePayload::Ops(batch) = &back.payload else {
            panic!("payload kind changed in flight");
        };
        assert_eq!(batch.ops.len(), 2);
        assert_eq!(
            batch.deltas,
            vec![DbDelta::Neutral, DbDelta::Follow { follower: UserId(1), followee: UserId(4) }]
        );
    }

    #[test]
    fn truncation_and_damage_surface_as_corrupt() {
        let wire = encode(&ops_frame());
        for cut in [0, 1, wire.len() / 2, wire.len() - 1] {
            let truncated = &wire[..cut];
            assert!(
                matches!(decode(truncated), Err(ReplicaError::Corrupt(_))),
                "cut at {cut} must be corrupt"
            );
        }
        // Interior damage that keeps the envelope parseable still trips
        // the checksum.
        let damaged = wire.replace("\\\"seq\\\":7", "\\\"seq\\\":8");
        assert_ne!(damaged, wire, "replacement must hit");
        assert!(matches!(decode(&damaged), Err(ReplicaError::Corrupt(_))));
    }

    #[test]
    fn version_skew_is_refused() {
        let mut frame = ops_frame();
        frame.version = FRAME_VERSION + 1;
        let wire = encode(&frame);
        assert!(matches!(decode(&wire), Err(ReplicaError::Corrupt(_))));
    }
}
