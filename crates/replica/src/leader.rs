//! The replication leader: the single writer, the log sequencer, and
//! the checkpoint source.

use crate::frame::{Frame, FramePayload, OpsBatch, FRAME_VERSION};
use crate::ops::{self, ReplOp};
use crate::{ReplicaError, Result};
use hive_core::serve::{HiveServer, ReadHandle};
use hive_core::{Hive, HiveDb};

/// Wraps a [`HiveServer`] and turns its accepted mutations into a
/// monotonically numbered frame log.
///
/// Operations accumulate via [`Leader::apply`] and are sealed into one
/// ops frame per [`Leader::seal_frames`] call, spanning the
/// generations the leader's journal recorded for them. Every
/// `checkpoint_every` ops frames (and whenever a caller forces it, e.g.
/// to serve a follower re-sync) the leader also emits a full-snapshot
/// checkpoint frame. Sealing publishes an epoch, so the leader's own
/// readers advance exactly at frame boundaries — the unit the
/// fingerprint oracle compares leaders and followers at.
pub struct Leader {
    server: HiveServer,
    next_seq: u64,
    last_shipped_gen: u64,
    pending: Vec<ReplOp>,
    checkpoint_every: u64,
    frames_since_checkpoint: u64,
}

impl Leader {
    /// A fresh leader over `db`, checkpointing every
    /// `checkpoint_every` ops frames (min 1).
    pub fn new(db: HiveDb, checkpoint_every: u64) -> Leader {
        let server = HiveServer::new(db);
        let last_shipped_gen = server.generation();
        Leader {
            server,
            next_seq: 0,
            last_shipped_gen,
            pending: Vec::new(),
            checkpoint_every: checkpoint_every.max(1),
            frames_since_checkpoint: 0,
        }
    }

    /// Continues an existing log from a promoted follower's server:
    /// the new leader's first frame takes sequence `next_seq`, and its
    /// checkpoint cadence resumes at `frames_since_checkpoint` (the
    /// follower observed that count from the stream itself), so the
    /// continued log is frame-for-frame what a never-failed leader
    /// would have produced.
    pub fn from_server(
        server: HiveServer,
        next_seq: u64,
        checkpoint_every: u64,
        frames_since_checkpoint: u64,
    ) -> Leader {
        let last_shipped_gen = server.generation();
        Leader {
            server,
            next_seq,
            last_shipped_gen,
            pending: Vec::new(),
            checkpoint_every: checkpoint_every.max(1),
            frames_since_checkpoint,
        }
    }

    /// The sequence number the next sealed frame will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The writer's current mutation generation.
    pub fn generation(&self) -> u64 {
        self.server.generation()
    }

    /// Operations applied but not yet sealed into a frame.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Read access to the leader's live facade (for oracles).
    pub fn hive(&self) -> &Hive {
        self.server.hive()
    }

    /// A lock-free read handle over the leader's published epochs.
    pub fn reader(&self) -> ReadHandle {
        self.server.reader()
    }

    /// Applies one operation to the leader's platform. Accepted ops
    /// join the pending batch for the next sealed frame; rejected ops
    /// return [`ReplicaError::Rejected`] and are never shipped, so
    /// followers only ever replay mutations that took effect.
    pub fn apply(&mut self, op: ReplOp) -> Result<()> {
        match ops::apply(&op, self.server.writer()) {
            Ok(()) => {
                hive_obs::count("replica.leader.op", 1);
                self.pending.push(op);
                Ok(())
            }
            Err(e) => Err(ReplicaError::Rejected(e)),
        }
    }

    /// Seals the pending batch into frames and publishes the matching
    /// epoch. Returns zero frames when nothing happened, one ops frame
    /// for a normal batch, plus a checkpoint frame when the cadence
    /// fires or `force_checkpoint` is set (a follower asked to
    /// re-sync). If the delta journal no longer covers the unshipped
    /// window (`DB_DELTA_LOG_CAP` overflow between seals) the batch
    /// cannot be framed as ops and a checkpoint takes its place —
    /// the log never carries an unverifiable batch.
    pub fn seal_frames(&mut self, force_checkpoint: bool) -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut want_checkpoint = force_checkpoint;
        if !self.pending.is_empty() {
            let start_gen = self.last_shipped_gen;
            let end_gen = self.server.generation();
            let ops = std::mem::take(&mut self.pending);
            self.server.publish();
            match self.server.deltas_since(start_gen) {
                Some(deltas) => {
                    frames.push(Frame {
                        version: FRAME_VERSION,
                        seq: self.take_seq(),
                        start_gen,
                        end_gen,
                        payload: FramePayload::Ops(OpsBatch { ops, deltas }),
                    });
                    self.frames_since_checkpoint += 1;
                    hive_obs::count("replica.leader.frame.ops", 1);
                }
                None => {
                    // The ops are already baked into the leader state;
                    // ship that state instead of an unverifiable batch.
                    want_checkpoint = true;
                    hive_obs::count("replica.leader.frame.window_lost", 1);
                }
            }
            self.last_shipped_gen = end_gen;
        }
        if want_checkpoint || self.frames_since_checkpoint >= self.checkpoint_every {
            frames.push(self.checkpoint_frame());
            self.frames_since_checkpoint = 0;
        }
        frames
    }

    /// Builds a checkpoint frame of the current state. Pending
    /// (unsealed) ops are deliberately *not* captured — call
    /// [`Leader::seal_frames`] instead, which orders the ops frame
    /// before the checkpoint so every follower sees the same history.
    fn checkpoint_frame(&mut self) -> Frame {
        let cp = self.server.checkpoint();
        let gen = cp.generation;
        hive_obs::count("replica.leader.frame.checkpoint", 1);
        Frame {
            version: FRAME_VERSION,
            seq: self.take_seq(),
            start_gen: gen,
            end_gen: gen,
            payload: FramePayload::Checkpoint(cp),
        }
    }

    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}
