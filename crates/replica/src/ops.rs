//! The replicated operation set: a typed mirror of the Hive facade's
//! mutator surface.
//!
//! The classified [`hive_core::DbDelta`] journal alone cannot rebuild a
//! follower (`Structural` carries no entity payload), so the log ships
//! full typed operations and lets each follower's own deterministic
//! state machine re-derive the identical journal. [`apply`] maps every
//! op back onto the facade method it mirrors; result values (fresh ids,
//! timestamps) are deterministic on both sides and therefore discarded.

use hive_core::clock::Timestamp;
use hive_core::ids::{
    CollectionId, ConferenceId, PaperId, PresentationId, QuestionId, SessionId, UserId, WorkpadId,
};
use hive_core::model::{Paper, Presentation, QaTarget, User, WorkpadItem};
use hive_core::Hive;

/// One entry of the replication log: a mutation the leader accepted,
/// replayable verbatim on any follower. Every variant wraps exactly one
/// JSON-serializable payload (the wire form is the externally-tagged
/// single-key object of `impl_json_enum_payload!`).
#[derive(Clone, Debug)]
pub enum ReplOp {
    /// Advance the logical clock by a tick delta.
    AdvanceClock(u64),
    /// Register a researcher profile.
    AddUser(User),
    /// Upload a paper.
    AddPaper(Paper),
    /// Upload a presentation.
    AddPresentation(Presentation),
    /// Revise the slides of an existing presentation.
    ReviseSlides(ReviseSlidesOp),
    /// Follow a researcher.
    Follow(FollowOp),
    /// Restrict which activity categories reach a follower.
    SetFollowFilter(SetFollowFilterOp),
    /// Originate a connection request.
    RequestConnection(RequestConnectionOp),
    /// Accept or decline a pending connection request.
    RespondConnection(RespondConnectionOp),
    /// Check into a session.
    CheckIn(CheckInOp),
    /// Register conference attendance.
    Attend(AttendOp),
    /// Ask a question on a presentation or session.
    AskQuestion(AskQuestionOp),
    /// Answer a question.
    AnswerQuestion(AnswerQuestionOp),
    /// Comment on a paper, presentation, session, or question.
    Comment(CommentOp),
    /// Post a tweet into a session stream.
    PostTweet(PostTweetOp),
    /// Record a paper view.
    ViewPaper(ViewPaperOp),
    /// Create a workpad.
    CreateWorkpad(CreateWorkpadOp),
    /// Drop an item onto a workpad.
    WorkpadAdd(WorkpadAddOp),
    /// Attach a free-text note to a workpad.
    WorkpadNote(WorkpadNoteOp),
    /// Remove an item from a workpad.
    WorkpadRemove(WorkpadRemoveOp),
    /// Switch a user's active workpad.
    ActivateWorkpad(ActivateWorkpadOp),
    /// Export a workpad as a shared collection.
    ExportWorkpad(ExportWorkpadOp),
    /// Import a shared collection as a new workpad.
    ImportCollection(ImportCollectionOp),
}

/// Payload of [`ReplOp::ReviseSlides`].
#[derive(Clone, Debug)]
pub struct ReviseSlidesOp {
    /// The revising author.
    pub user: UserId,
    /// The presentation being revised.
    pub pres: PresentationId,
    /// The new slides text.
    pub text: String,
}

/// Payload of [`ReplOp::Follow`].
#[derive(Clone, Debug)]
pub struct FollowOp {
    /// The user who follows.
    pub follower: UserId,
    /// The user being followed.
    pub followee: UserId,
}

/// Payload of [`ReplOp::SetFollowFilter`].
#[derive(Clone, Debug)]
pub struct SetFollowFilterOp {
    /// The filtering follower.
    pub follower: UserId,
    /// The followee whose stream is filtered.
    pub followee: UserId,
    /// The allowed activity categories.
    pub categories: Vec<String>,
}

/// Payload of [`ReplOp::RequestConnection`].
#[derive(Clone, Debug)]
pub struct RequestConnectionOp {
    /// The requesting user.
    pub from: UserId,
    /// The requested user.
    pub to: UserId,
}

/// Payload of [`ReplOp::RespondConnection`].
#[derive(Clone, Debug)]
pub struct RespondConnectionOp {
    /// The responding user (the original request's target).
    pub to: UserId,
    /// The original requester.
    pub from: UserId,
    /// Accept (`true`) or decline.
    pub accept: bool,
}

/// Payload of [`ReplOp::CheckIn`].
#[derive(Clone, Debug)]
pub struct CheckInOp {
    /// The user checking in.
    pub user: UserId,
    /// The session.
    pub session: SessionId,
}

/// Payload of [`ReplOp::Attend`].
#[derive(Clone, Debug)]
pub struct AttendOp {
    /// The attendee.
    pub user: UserId,
    /// The conference edition.
    pub conf: ConferenceId,
}

/// Payload of [`ReplOp::AskQuestion`].
#[derive(Clone, Debug)]
pub struct AskQuestionOp {
    /// The question author.
    pub author: UserId,
    /// The presentation or session asked about.
    pub target: QaTarget,
    /// The question text.
    pub text: String,
    /// Whether the question is also broadcast to the session stream.
    pub broadcast: bool,
}

/// Payload of [`ReplOp::AnswerQuestion`].
#[derive(Clone, Debug)]
pub struct AnswerQuestionOp {
    /// The answering author.
    pub author: UserId,
    /// The question being answered.
    pub question: QuestionId,
    /// The answer text.
    pub text: String,
}

/// Payload of [`ReplOp::Comment`].
#[derive(Clone, Debug)]
pub struct CommentOp {
    /// The comment author.
    pub author: UserId,
    /// The commented presentation or session.
    pub target: QaTarget,
    /// The comment text.
    pub text: String,
}

/// Payload of [`ReplOp::PostTweet`].
#[derive(Clone, Debug)]
pub struct PostTweetOp {
    /// The platform user behind the tweet, when known.
    pub author: Option<UserId>,
    /// The tweet handle.
    pub handle: String,
    /// The tweet text.
    pub text: String,
    /// The session stream the tweet lands in.
    pub session: SessionId,
}

/// Payload of [`ReplOp::ViewPaper`].
#[derive(Clone, Debug)]
pub struct ViewPaperOp {
    /// The viewer.
    pub user: UserId,
    /// The viewed paper.
    pub paper: PaperId,
}

/// Payload of [`ReplOp::CreateWorkpad`].
#[derive(Clone, Debug)]
pub struct CreateWorkpadOp {
    /// The workpad owner.
    pub owner: UserId,
    /// The workpad name.
    pub name: String,
}

/// Payload of [`ReplOp::WorkpadAdd`].
#[derive(Clone, Debug)]
pub struct WorkpadAddOp {
    /// The acting user.
    pub user: UserId,
    /// The target workpad.
    pub pad: WorkpadId,
    /// The item dropped onto it.
    pub item: WorkpadItem,
}

/// Payload of [`ReplOp::WorkpadNote`].
#[derive(Clone, Debug)]
pub struct WorkpadNoteOp {
    /// The acting user.
    pub user: UserId,
    /// The target workpad.
    pub pad: WorkpadId,
    /// The note text.
    pub text: String,
}

/// Payload of [`ReplOp::WorkpadRemove`].
#[derive(Clone, Debug)]
pub struct WorkpadRemoveOp {
    /// The acting user.
    pub user: UserId,
    /// The target workpad.
    pub pad: WorkpadId,
    /// The item removed.
    pub item: WorkpadItem,
}

/// Payload of [`ReplOp::ActivateWorkpad`].
#[derive(Clone, Debug)]
pub struct ActivateWorkpadOp {
    /// The acting user.
    pub user: UserId,
    /// The workpad made active.
    pub pad: WorkpadId,
}

/// Payload of [`ReplOp::ExportWorkpad`].
#[derive(Clone, Debug)]
pub struct ExportWorkpadOp {
    /// The exporting user.
    pub user: UserId,
    /// The exported workpad.
    pub pad: WorkpadId,
}

/// Payload of [`ReplOp::ImportCollection`].
#[derive(Clone, Debug)]
pub struct ImportCollectionOp {
    /// The importing user.
    pub user: UserId,
    /// The imported collection.
    pub collection: CollectionId,
}

hive_json::impl_json_struct!(ReviseSlidesOp { user, pres, text });
hive_json::impl_json_struct!(FollowOp { follower, followee });
hive_json::impl_json_struct!(SetFollowFilterOp { follower, followee, categories });
hive_json::impl_json_struct!(RequestConnectionOp { from, to });
hive_json::impl_json_struct!(RespondConnectionOp { to, from, accept });
hive_json::impl_json_struct!(CheckInOp { user, session });
hive_json::impl_json_struct!(AttendOp { user, conf });
hive_json::impl_json_struct!(AskQuestionOp { author, target, text, broadcast });
hive_json::impl_json_struct!(AnswerQuestionOp { author, question, text });
hive_json::impl_json_struct!(CommentOp { author, target, text });
hive_json::impl_json_struct!(PostTweetOp { author, handle, text, session });
hive_json::impl_json_struct!(ViewPaperOp { user, paper });
hive_json::impl_json_struct!(CreateWorkpadOp { owner, name });
hive_json::impl_json_struct!(WorkpadAddOp { user, pad, item });
hive_json::impl_json_struct!(WorkpadNoteOp { user, pad, text });
hive_json::impl_json_struct!(WorkpadRemoveOp { user, pad, item });
hive_json::impl_json_struct!(ActivateWorkpadOp { user, pad });
hive_json::impl_json_struct!(ExportWorkpadOp { user, pad });
hive_json::impl_json_struct!(ImportCollectionOp { user, collection });

hive_json::impl_json_enum_payload!(ReplOp {
    AdvanceClock,
    AddUser,
    AddPaper,
    AddPresentation,
    ReviseSlides,
    Follow,
    SetFollowFilter,
    RequestConnection,
    RespondConnection,
    CheckIn,
    Attend,
    AskQuestion,
    AnswerQuestion,
    Comment,
    PostTweet,
    ViewPaper,
    CreateWorkpad,
    WorkpadAdd,
    WorkpadNote,
    WorkpadRemove,
    ActivateWorkpad,
    ExportWorkpad,
    ImportCollection,
});

impl ReplOp {
    /// Stable kebab-case label for diagnostics and counters.
    pub fn label(&self) -> &'static str {
        match self {
            ReplOp::AdvanceClock(_) => "advance-clock",
            ReplOp::AddUser(_) => "add-user",
            ReplOp::AddPaper(_) => "add-paper",
            ReplOp::AddPresentation(_) => "add-presentation",
            ReplOp::ReviseSlides(_) => "revise-slides",
            ReplOp::Follow(_) => "follow",
            ReplOp::SetFollowFilter(_) => "set-follow-filter",
            ReplOp::RequestConnection(_) => "request-connection",
            ReplOp::RespondConnection(_) => "respond-connection",
            ReplOp::CheckIn(_) => "check-in",
            ReplOp::Attend(_) => "attend",
            ReplOp::AskQuestion(_) => "ask-question",
            ReplOp::AnswerQuestion(_) => "answer-question",
            ReplOp::Comment(_) => "comment",
            ReplOp::PostTweet(_) => "post-tweet",
            ReplOp::ViewPaper(_) => "view-paper",
            ReplOp::CreateWorkpad(_) => "create-workpad",
            ReplOp::WorkpadAdd(_) => "workpad-add",
            ReplOp::WorkpadNote(_) => "workpad-note",
            ReplOp::WorkpadRemove(_) => "workpad-remove",
            ReplOp::ActivateWorkpad(_) => "activate-workpad",
            ReplOp::ExportWorkpad(_) => "export-workpad",
            ReplOp::ImportCollection(_) => "import-collection",
        }
    }
}

/// Replays one operation through the facade method it mirrors.
///
/// Returned ids and timestamps are functions of the replica's
/// deterministic state, identical on leader and follower, so they are
/// deliberately dropped here. An `Err` on a follower for an op the
/// leader accepted is a divergence signal, not a tolerable rejection.
pub fn apply(op: &ReplOp, hive: &mut Hive) -> hive_core::error::Result<()> {
    match op {
        ReplOp::AdvanceClock(dt) => {
            let _: Timestamp = hive.advance_clock(*dt);
            Ok(())
        }
        ReplOp::AddUser(user) => {
            hive.add_user(user.clone());
            Ok(())
        }
        ReplOp::AddPaper(paper) => hive.add_paper(paper.clone()).map(drop),
        ReplOp::AddPresentation(pres) => hive.add_presentation(pres.clone()).map(drop),
        ReplOp::ReviseSlides(o) => hive.revise_slides(o.user, o.pres, o.text.as_str()),
        ReplOp::Follow(o) => hive.follow(o.follower, o.followee),
        ReplOp::SetFollowFilter(o) => {
            hive.set_follow_filter(o.follower, o.followee, o.categories.clone())
        }
        ReplOp::RequestConnection(o) => hive.request_connection(o.from, o.to),
        ReplOp::RespondConnection(o) => hive.respond_connection(o.to, o.from, o.accept),
        ReplOp::CheckIn(o) => hive.check_in(o.user, o.session),
        ReplOp::Attend(o) => hive.attend(o.user, o.conf),
        ReplOp::AskQuestion(o) => {
            hive.ask_question(o.author, o.target, &o.text, o.broadcast).map(drop)
        }
        ReplOp::AnswerQuestion(o) => hive.answer_question(o.author, o.question, &o.text).map(drop),
        ReplOp::Comment(o) => hive.comment(o.author, o.target, o.text.as_str()).map(drop),
        ReplOp::PostTweet(o) => {
            hive.post_tweet(o.author, o.handle.as_str(), o.text.as_str(), o.session).map(drop)
        }
        ReplOp::ViewPaper(o) => hive.view_paper(o.user, o.paper),
        ReplOp::CreateWorkpad(o) => hive.create_workpad(o.owner, &o.name).map(drop),
        ReplOp::WorkpadAdd(o) => hive.workpad_add(o.user, o.pad, o.item.clone()),
        ReplOp::WorkpadNote(o) => hive.workpad_note(o.user, o.pad, o.text.as_str()).map(drop),
        ReplOp::WorkpadRemove(o) => hive.workpad_remove(o.user, o.pad, &o.item),
        ReplOp::ActivateWorkpad(o) => hive.activate_workpad(o.user, o.pad),
        ReplOp::ExportWorkpad(o) => hive.export_workpad(o.user, o.pad).map(drop),
        ReplOp::ImportCollection(o) => hive.import_collection(o.user, o.collection).map(drop),
    }
}
