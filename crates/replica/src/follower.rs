//! The replication follower: replays the frame log through its own
//! deterministic state machine and serves epochs that are bit-identical
//! to the leader's at the same sequence number.

use crate::frame::{self, Frame, FramePayload, OpsBatch};
use crate::ops;
use crate::{ReplicaError, Result};
use hive_core::persist::ReplicaCheckpoint;
use hive_core::serve::{HiveServer, ReadHandle};
use hive_core::Hive;

/// Where a follower is in the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum FollowerState {
    /// Caught up with the contiguous prefix it has seen; applying ops
    /// frames as they arrive.
    Streaming,
    /// Waiting for a checkpoint frame: fresh boot, a detected gap, or
    /// a corrupt frame. Ops frames are dropped (not errors) until the
    /// checkpoint lands.
    NeedsResync {
        /// Why the follower fell out of the stream.
        reason: String,
    },
    /// Replay disagreed with what a frame claimed: the follower
    /// refuses everything from here on and keeps serving its last
    /// consistent epoch. Divergence is never served.
    Broken {
        /// What disagreed.
        reason: String,
    },
}

/// What one ingested wire frame did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ingest {
    /// An ops frame applied cleanly; the follower published an epoch.
    Applied {
        /// Operations replayed from the frame.
        ops: usize,
    },
    /// A checkpoint frame was installed (re-sync) or verified (in
    /// stream).
    Checkpoint,
    /// A frame below the follower's next sequence arrived again;
    /// ignored.
    Duplicate,
    /// An ops frame arrived while waiting for re-sync; dropped.
    AwaitingResync,
}

/// A log-shipped replica. Reads go through [`Follower::reader`]; the
/// handle keeps serving the last published (always consistent) epoch
/// no matter what the transport does to later frames.
pub struct Follower {
    id: usize,
    server: Option<HiveServer>,
    next_seq: u64,
    state: FollowerState,
    frames_since_checkpoint: u64,
}

impl Follower {
    /// A blank follower that has never seen a checkpoint (fresh boot
    /// or post-crash restart). It waits for a checkpoint frame.
    pub fn blank(id: usize) -> Follower {
        Follower {
            id,
            server: None,
            next_seq: 0,
            state: FollowerState::NeedsResync { reason: "bootstrap".to_string() },
            frames_since_checkpoint: 0,
        }
    }

    /// Ops frames observed since the last checkpoint frame. Mirrors
    /// the leader's checkpoint-cadence counter (both reset at every
    /// checkpoint), so a promoted follower continues the exact frame
    /// schedule a never-failed leader would have produced.
    pub fn frames_since_checkpoint(&self) -> u64 {
        self.frames_since_checkpoint
    }

    /// This follower's index (label in counters and reports).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Protocol state.
    pub fn state(&self) -> &FollowerState {
        &self.state
    }

    /// True while caught up and applying.
    pub fn is_streaming(&self) -> bool {
        self.state == FollowerState::Streaming
    }

    /// True while waiting for a checkpoint.
    pub fn needs_resync(&self) -> bool {
        matches!(self.state, FollowerState::NeedsResync { .. })
    }

    /// True once divergence was detected.
    pub fn is_broken(&self) -> bool {
        matches!(self.state, FollowerState::Broken { .. })
    }

    /// The sequence number the follower can apply next.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The replica's current mutation generation (0 before bootstrap).
    pub fn generation(&self) -> u64 {
        self.server.as_ref().map_or(0, HiveServer::generation)
    }

    /// How many frames behind a leader whose next sequence is
    /// `leader_next_seq` this follower is.
    pub fn lag(&self, leader_next_seq: u64) -> u64 {
        leader_next_seq.saturating_sub(self.next_seq)
    }

    /// A lock-free read handle over the replica's published epochs
    /// (`None` before the bootstrap checkpoint).
    pub fn reader(&self) -> Option<ReadHandle> {
        self.server.as_ref().map(HiveServer::reader)
    }

    /// Read access to the replica's facade, for oracles (`None` before
    /// the bootstrap checkpoint).
    pub fn hive(&self) -> Option<&Hive> {
        self.server.as_ref().map(HiveServer::hive)
    }

    /// Surrenders the inner server for promotion.
    pub(crate) fn into_server(self) -> Option<HiveServer> {
        self.server
    }

    /// Ingests one wire frame. Damage and gaps flip the follower into
    /// re-sync and surface as typed errors; divergence marks it broken.
    /// Either way the replica's published epochs stay consistent — a
    /// failed ingest publishes nothing.
    pub fn ingest(&mut self, wire: &str) -> Result<Ingest> {
        if let FollowerState::Broken { reason } = &self.state {
            return Err(ReplicaError::Broken(reason.clone()));
        }
        let frame = match frame::decode(wire) {
            Ok(f) => f,
            Err(e) => {
                hive_obs::count("replica.follower.corrupt", 1);
                self.state = FollowerState::NeedsResync { reason: format!("corrupt frame: {e}") };
                return Err(e);
            }
        };
        match &frame.payload {
            FramePayload::Checkpoint(cp) => {
                let cp = cp.clone();
                self.ingest_checkpoint(&frame, &cp)
            }
            FramePayload::Ops(batch) => {
                let batch = batch.clone();
                self.ingest_ops(&frame, &batch)
            }
        }
    }

    fn ingest_checkpoint(&mut self, frame: &Frame, cp: &ReplicaCheckpoint) -> Result<Ingest> {
        if frame.seq < self.next_seq {
            hive_obs::count("replica.follower.dup", 1);
            return Ok(Ingest::Duplicate);
        }
        match &self.state {
            FollowerState::NeedsResync { .. } => self.install_checkpoint(frame, cp),
            FollowerState::Streaming => {
                if frame.seq > self.next_seq {
                    return self.flag_gap(frame.seq);
                }
                // In-stream checkpoint: the replica must already *be*
                // this state — a generation mismatch is divergence.
                if self.generation() != frame.end_gen {
                    return self.flag_divergence(
                        frame.seq,
                        format!(
                            "checkpoint generation {} but replica is at {}",
                            frame.end_gen,
                            self.generation()
                        ),
                    );
                }
                self.next_seq = frame.seq + 1;
                self.frames_since_checkpoint = 0;
                hive_obs::count("replica.follower.checkpoint.verified", 1);
                Ok(Ingest::Checkpoint)
            }
            FollowerState::Broken { reason } => Err(ReplicaError::Broken(reason.clone())),
        }
    }

    fn install_checkpoint(&mut self, frame: &Frame, cp: &ReplicaCheckpoint) -> Result<Ingest> {
        if cp.generation != frame.end_gen {
            return self.flag_divergence(
                frame.seq,
                format!(
                    "checkpoint frame claims generation {} but carries {}",
                    frame.end_gen, cp.generation
                ),
            );
        }
        match HiveServer::from_checkpoint(cp) {
            Ok(server) => {
                self.server = Some(server);
                self.next_seq = frame.seq + 1;
                self.frames_since_checkpoint = 0;
                self.state = FollowerState::Streaming;
                hive_obs::count("replica.follower.resync.install", 1);
                Ok(Ingest::Checkpoint)
            }
            Err(e) => {
                // Stay in re-sync: the next checkpoint gets another try.
                hive_obs::count("replica.follower.resync.failed", 1);
                Err(ReplicaError::Checkpoint(e))
            }
        }
    }

    fn ingest_ops(&mut self, frame: &Frame, batch: &OpsBatch) -> Result<Ingest> {
        if frame.seq < self.next_seq {
            hive_obs::count("replica.follower.dup", 1);
            return Ok(Ingest::Duplicate);
        }
        if self.needs_resync() {
            return Ok(Ingest::AwaitingResync);
        }
        if frame.seq > self.next_seq {
            return self.flag_gap(frame.seq);
        }
        // The replay runs against a scoped borrow of the server; any
        // disagreement falls through to `flag_divergence` afterwards
        // (which needs `&mut self` again).
        let replayed: std::result::Result<usize, String> = match self.server.as_mut() {
            // Streaming without a server cannot happen by construction;
            // refuse in a typed way rather than panic (lint R2).
            None => Err("streaming with no installed state".to_string()),
            Some(server) => (|| {
                if server.generation() != frame.start_gen {
                    return Err(format!(
                        "frame starts at generation {} but replica is at {}",
                        frame.start_gen,
                        server.generation()
                    ));
                }
                for (i, op) in batch.ops.iter().enumerate() {
                    if let Err(e) = ops::apply(op, server.writer()) {
                        // The leader accepted this op; a rejection here
                        // means the state machines disagree.
                        let label = op.label();
                        return Err(format!(
                            "op {i} ({label}) accepted by leader but refused here: {e}"
                        ));
                    }
                }
                if server.generation() != frame.end_gen {
                    return Err(format!(
                        "frame ends at generation {} but replay reached {}",
                        frame.end_gen,
                        server.generation()
                    ));
                }
                // The classified delta stream is the cross-check: the
                // replica's own journal for this window must match the
                // leader's bit-for-bit.
                if let Some(mine) = server.deltas_since(frame.start_gen) {
                    if mine != batch.deltas {
                        return Err(format!(
                            "journaled delta stream diverges ({} local vs {} shipped)",
                            mine.len(),
                            batch.deltas.len()
                        ));
                    }
                }
                server.publish();
                Ok(batch.ops.len())
            })(),
        };
        match replayed {
            Ok(n) => {
                self.next_seq = frame.seq + 1;
                self.frames_since_checkpoint += 1;
                hive_obs::count("replica.follower.apply.frames", 1);
                hive_obs::count("replica.follower.apply.ops", n as u64);
                Ok(Ingest::Applied { ops: n })
            }
            Err(detail) => self.flag_divergence(frame.seq, detail),
        }
    }

    fn flag_gap(&mut self, got: u64) -> Result<Ingest> {
        let expected = self.next_seq;
        hive_obs::count("replica.follower.gap", 1);
        self.state = FollowerState::NeedsResync {
            reason: format!("gap: expected seq {expected}, got {got}"),
        };
        Err(ReplicaError::Gap { expected, got })
    }

    fn flag_divergence(&mut self, seq: u64, detail: String) -> Result<Ingest> {
        hive_obs::count("replica.follower.diverged", 1);
        self.state = FollowerState::Broken { reason: detail.clone() };
        Err(ReplicaError::Diverged { seq, detail })
    }
}
