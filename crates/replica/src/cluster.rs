//! Cluster orchestration: one leader, N follower slots, one faulty
//! channel per slot, plus crash/restart and leader handoff.

use crate::follower::{Follower, Ingest};
use crate::frame;
use crate::leader::Leader;
use crate::ops::ReplOp;
use crate::transport::{FaultPlan, Transport, TransportStats};
use crate::{ReplicaError, Result};
use hive_core::serve::ReadHandle;
use hive_core::{Hive, HiveDb};
use hive_rng::Rng;

/// Cluster-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Seed for the per-follower transport fault streams.
    pub seed: u64,
    /// Emit a checkpoint frame every this many ops frames.
    pub checkpoint_every: u64,
    /// Fault probabilities applied to every follower's channel.
    pub faults: FaultPlan,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { seed: 42, checkpoint_every: 8, faults: FaultPlan::none() }
    }
}

/// Cumulative protocol counters across all followers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Ops frames applied cleanly by followers.
    pub frames_applied: u64,
    /// Checkpoint installs (bootstrap + re-sync).
    pub checkpoints_installed: u64,
    /// Duplicated frames ignored.
    pub duplicates_ignored: u64,
    /// Ops frames dropped while a follower awaited re-sync.
    pub frames_awaiting_resync: u64,
    /// Typed refusals: gaps detected.
    pub gaps: u64,
    /// Typed refusals: corrupt frames.
    pub corrupt_frames: u64,
    /// Typed refusals: anything else (divergence, broken, install).
    pub other_refusals: u64,
    /// Re-sync checkpoints the leader emitted on demand.
    pub resync_checkpoints: u64,
    /// Leader handoffs performed.
    pub promotions: u64,
}

struct FollowerSlot {
    follower: Follower,
    transport: Transport,
    down: bool,
}

/// One leader plus N followers over fault-injected channels.
///
/// The driving loop is: [`Cluster::apply`] ops, then [`Cluster::commit`]
/// to seal them into frames, ship through every channel, and let each
/// follower drain + ingest. Followers that detect gaps or corruption
/// flip to re-sync; the next commit broadcasts an on-demand checkpoint
/// frame (through the same faulty channels — a lost checkpoint just
/// means another round). [`Cluster::heal`] runs bounded extra commit
/// rounds until every live follower streams again.
pub struct Cluster {
    leader: Leader,
    slots: Vec<FollowerSlot>,
    cfg: ClusterConfig,
    stats: ClusterStats,
}

impl Cluster {
    /// Boots a leader over `db` and `followers` blank replicas, then
    /// broadcasts the bootstrap checkpoint over clean channels (a boot
    /// handshake; faults start with the first real commit).
    pub fn new(db: HiveDb, followers: usize, cfg: ClusterConfig) -> Cluster {
        let mut leader = Leader::new(db, cfg.checkpoint_every);
        let mut seed_rng = Rng::seed_from_u64(cfg.seed);
        let mut slots: Vec<FollowerSlot> = (0..followers)
            .map(|id| FollowerSlot {
                follower: Follower::blank(id),
                transport: Transport::new(seed_rng.next_u64(), cfg.faults),
                down: false,
            })
            .collect();
        let mut stats = ClusterStats::default();
        let boot = leader.seal_frames(true);
        for frame in &boot {
            let wire = frame::encode(frame);
            for slot in &mut slots {
                // Bootstrap bypasses the fault plan: a deployment that
                // cannot even hand its first checkpoint over is not a
                // replication scenario.
                tally(&mut stats, slot.follower.ingest(&wire));
            }
        }
        Cluster { leader, slots, cfg, stats }
    }

    /// Applies one operation on the leader.
    pub fn apply(&mut self, op: ReplOp) -> Result<()> {
        self.leader.apply(op)
    }

    /// Seals pending ops, ships the resulting frames through every
    /// live channel, and lets every live follower ingest what arrived.
    /// When any live follower needs re-sync, the sealed batch also
    /// carries an on-demand checkpoint frame.
    pub fn commit(&mut self) {
        // A follower wants a checkpoint when it said so (gap/corrupt)
        // — or when it is streaming but behind the sealed log. The
        // leader retains no old frames, so a frame lost in the tail
        // (nothing after it to expose the gap) can only be healed by
        // a state transfer.
        let leader_seq = self.leader.next_seq();
        let resync_wanted = self.slots.iter().any(|s| {
            !s.down
                && (s.follower.needs_resync()
                    || (s.follower.is_streaming() && s.follower.next_seq() < leader_seq))
        });
        if resync_wanted {
            self.stats.resync_checkpoints += 1;
            hive_obs::count("replica.cluster.resync_checkpoint", 1);
        }
        let frames = self.leader.seal_frames(resync_wanted);
        let wires: Vec<String> = frames.iter().map(frame::encode).collect();
        for slot in &mut self.slots {
            if slot.down {
                // Frames shipped at a crashed follower are simply lost;
                // the restart path re-syncs from a checkpoint anyway.
                continue;
            }
            for wire in &wires {
                slot.transport.send(wire);
            }
            for arrived in slot.transport.drain() {
                tally(&mut self.stats, slot.follower.ingest(&arrived));
            }
            hive_obs::gauge_set(
                "replica.lag",
                slot.follower.lag(self.leader.next_seq()),
            );
            hive_obs::gauge_max(
                "replica.lag.max",
                slot.follower.lag(self.leader.next_seq()),
            );
        }
    }

    /// Runs up to `max_rounds` empty commits (each forcing a re-sync
    /// checkpoint when needed) until every live follower streams and
    /// is caught up. Returns whether that state was reached — under
    /// fault injection a checkpoint can be lost repeatedly, so the
    /// bound keeps the loop finite and the caller decides what a
    /// `false` means.
    pub fn heal(&mut self, max_rounds: usize) -> bool {
        for _ in 0..max_rounds {
            if self.all_caught_up() {
                return true;
            }
            self.commit();
        }
        self.all_caught_up()
    }

    /// True when the leader has nothing pending and every live
    /// follower is streaming at its next sequence number. Pending
    /// (unsealed) leader ops count as lag: they are state the
    /// followers cannot have seen yet.
    pub fn all_caught_up(&self) -> bool {
        self.leader.pending_ops() == 0
            && self.slots.iter().filter(|s| !s.down).all(|s| {
                s.follower.is_streaming() && s.follower.next_seq() == self.leader.next_seq()
            })
    }

    /// Simulates a follower crash: all replica state and in-flight
    /// frames vanish. The slot stays down (frames shipped meanwhile
    /// are lost) until [`Cluster::restart_follower`].
    pub fn crash_follower(&mut self, idx: usize) -> Result<()> {
        let slot = self.slots.get_mut(idx).ok_or(ReplicaError::NoSuchFollower(idx))?;
        slot.follower = Follower::blank(idx);
        slot.transport.clear();
        slot.down = true;
        hive_obs::count("replica.cluster.crash", 1);
        Ok(())
    }

    /// Brings a crashed follower back as a blank replica; the next
    /// commit's re-sync checkpoint re-bootstraps it.
    pub fn restart_follower(&mut self, idx: usize) -> Result<()> {
        let slot = self.slots.get_mut(idx).ok_or(ReplicaError::NoSuchFollower(idx))?;
        slot.down = false;
        hive_obs::count("replica.cluster.restart", 1);
        Ok(())
    }

    /// Leader handoff: the caught-up follower `idx` takes over the log
    /// (its next frame continues the sequence numbers) and the old
    /// leader vanishes, as in a leader crash followed by failover. The
    /// promoted instance's [`ReadHandle`]s remain valid across the
    /// transition. Refuses with [`ReplicaError::NotCaughtUp`] unless
    /// the follower is streaming at exactly the leader's next sequence.
    pub fn promote(&mut self, idx: usize) -> Result<()> {
        if idx >= self.slots.len() {
            return Err(ReplicaError::NoSuchFollower(idx));
        }
        let leader_seq = self.leader.next_seq();
        let f = &self.slots[idx].follower;
        if self.slots[idx].down || !f.is_streaming() || f.next_seq() != leader_seq {
            return Err(ReplicaError::NotCaughtUp {
                leader: leader_seq,
                follower: f.next_seq(),
            });
        }
        let slot = self.slots.remove(idx);
        let cadence = slot.follower.frames_since_checkpoint();
        let Some(server) = slot.follower.into_server() else {
            // Streaming implies an installed server; refuse typed-ly
            // if the invariant ever breaks rather than panic.
            return Err(ReplicaError::NotCaughtUp { leader: leader_seq, follower: 0 });
        };
        self.leader =
            Leader::from_server(server, leader_seq, self.cfg.checkpoint_every, cadence);
        self.stats.promotions += 1;
        hive_obs::count("replica.cluster.promote", 1);
        Ok(())
    }

    /// The current leader.
    pub fn leader(&self) -> &Leader {
        &self.leader
    }

    /// Read access to the leader's facade (for oracles).
    pub fn leader_hive(&self) -> &Hive {
        self.leader.hive()
    }

    /// Live follower count (crashed slots included — they still exist).
    pub fn follower_count(&self) -> usize {
        self.slots.len()
    }

    /// The follower in slot `idx`.
    pub fn follower(&self, idx: usize) -> Option<&Follower> {
        self.slots.get(idx).map(|s| &s.follower)
    }

    /// A read handle over follower `idx`'s published epochs.
    pub fn follower_reader(&self, idx: usize) -> Option<ReadHandle> {
        self.slots.get(idx).and_then(|s| s.follower.reader())
    }

    /// Channel statistics for follower `idx`.
    pub fn transport_stats(&self, idx: usize) -> Option<TransportStats> {
        self.slots.get(idx).map(|s| s.transport.stats())
    }

    /// Cumulative protocol counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }
}

fn tally(stats: &mut ClusterStats, outcome: Result<Ingest>) {
    match outcome {
        Ok(Ingest::Applied { .. }) => stats.frames_applied += 1,
        Ok(Ingest::Checkpoint) => stats.checkpoints_installed += 1,
        Ok(Ingest::Duplicate) => stats.duplicates_ignored += 1,
        Ok(Ingest::AwaitingResync) => stats.frames_awaiting_resync += 1,
        Err(ReplicaError::Gap { .. }) => stats.gaps += 1,
        Err(ReplicaError::Corrupt(_)) => stats.corrupt_frames += 1,
        Err(_) => stats.other_refusals += 1,
    }
}
