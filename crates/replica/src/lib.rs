//! # hive-replica — deterministic log-shipped replication
//!
//! Multi-instance deployment for the Hive platform without a consensus
//! dependency: the platform is already a **deterministic state
//! machine** (every mutation flows through the typed [`hive_core::Hive`]
//! facade, journals a classified [`hive_core::DbDelta`], and bumps one
//! generation counter), so replication is log shipping.
//!
//! * A [`Leader`] wraps a [`hive_core::serve::HiveServer`], applies
//!   typed operations ([`ReplOp`]), and seals them into [`Frame`]s with
//!   monotone log sequence numbers. Each ops frame carries the ops
//!   *and* the classified delta stream the leader journaled for them
//!   (`start_gen..end_gen`), plus periodic full-snapshot checkpoint
//!   frames for bootstrap and truncation recovery.
//! * [`Follower`]s replay the ops through their own facade — the same
//!   deterministic mutators journal the identical delta stream, which
//!   the follower cross-checks against the frame — then publish an
//!   epoch, so reads served from a follower's
//!   [`hive_core::serve::ReadHandle`] are bit-identical to the leader
//!   at the same sequence number *by construction*.
//! * The in-process [`Transport`] is the fault-injection point: it
//!   drops, duplicates, reorders, and truncates frames deterministically
//!   from a seed. Followers detect gaps and corruption, refuse with
//!   typed errors, and re-sync from the next checkpoint frame; they
//!   never publish (and therefore never serve) a divergent epoch.
//! * [`Cluster`] orchestrates one leader plus N follower slots:
//!   commit/ship/heal rounds, follower crash + restart, and leader
//!   handoff (a caught-up follower promotes and continues the log).
//!
//! Everything is deterministic: same seed, same fault schedule, same
//! frames, same refusals. The differential and fault-injection suites
//! in `tests/replica_failover.rs` and `tests/replica_faults.rs` are the
//! point of this crate; the happy path is the easy part.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod frame;
pub mod leader;
pub mod ops;
pub mod synth;
pub mod transport;

mod follower;

pub use cluster::{Cluster, ClusterConfig, ClusterStats};
pub use follower::{Follower, FollowerState, Ingest};
pub use frame::{Frame, FramePayload, OpsBatch, FRAME_VERSION};
pub use leader::Leader;
pub use ops::ReplOp;
pub use transport::{FaultPlan, Transport, TransportStats};

use hive_core::HiveError;
use std::fmt;

/// Typed replication failures. Every refusal a follower or leader can
/// produce is one of these — no panics in library code (lint R2), and
/// a follower that returns one keeps serving its last *consistent*
/// epoch rather than anything divergent.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplicaError {
    /// The leader's platform rejected the operation with a typed
    /// error; nothing was journaled or shipped.
    Rejected(HiveError),
    /// A wire frame failed checksum, parse, or version validation —
    /// truncation or bit damage in transit. The follower flips to
    /// resync: the damaged slot's contents are unknowable.
    Corrupt(String),
    /// The follower expected sequence `expected` but received `got`:
    /// at least one frame is missing. The follower flips to resync.
    Gap {
        /// The next sequence number the follower could have applied.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// The follower's replayed state disagrees with what the frame
    /// claims (generation or delta-stream mismatch, or an op the
    /// leader accepted failed here). The follower marks itself broken
    /// and refuses all further frames: divergence is never served.
    Diverged {
        /// The frame sequence at which divergence was detected.
        seq: u64,
        /// What disagreed.
        detail: String,
    },
    /// A frame arrived at a follower already marked broken.
    Broken(String),
    /// A checkpoint frame could not be installed (version mismatch or
    /// snapshot restore failure); the follower stays in resync.
    Checkpoint(HiveError),
    /// Promotion refused: the follower is not caught up with the
    /// leader's log (or is not streaming at all).
    NotCaughtUp {
        /// The leader's next sequence number.
        leader: u64,
        /// The follower's next sequence number.
        follower: u64,
    },
    /// The named follower index does not exist in the cluster.
    NoSuchFollower(usize),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Rejected(e) => write!(f, "leader rejected op: {e}"),
            ReplicaError::Corrupt(d) => write!(f, "corrupt frame: {d}"),
            ReplicaError::Gap { expected, got } => {
                write!(f, "log gap: expected seq {expected}, got {got}")
            }
            ReplicaError::Diverged { seq, detail } => {
                write!(f, "diverged at seq {seq}: {detail}")
            }
            ReplicaError::Broken(d) => write!(f, "follower broken: {d}"),
            ReplicaError::Checkpoint(e) => write!(f, "checkpoint install failed: {e}"),
            ReplicaError::NotCaughtUp { leader, follower } => {
                write!(f, "not caught up: leader next seq {leader}, follower {follower}")
            }
            ReplicaError::NoSuchFollower(i) => write!(f, "no follower {i}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ReplicaError>;
