//! Seed-driven generator of replicable operations.
//!
//! Mirrors the sim-harness workload distribution, but *reified*: each
//! step yields [`ReplOp`] values the leader can journal and ship,
//! instead of mutating a facade in place. The generator is a pure
//! function of `(platform state, rng)`, so two bit-identical replicas
//! driven by forked rng streams produce the exact same op sequence —
//! which is what lets a promoted follower's log be compared against a
//! never-failed leader's.

use crate::ops::{
    AnswerQuestionOp, AskQuestionOp, AttendOp, CheckInOp, CommentOp, CreateWorkpadOp, FollowOp,
    PostTweetOp, ReplOp, RequestConnectionOp, RespondConnectionOp, SetFollowFilterOp, ViewPaperOp,
    WorkpadAddOp, WorkpadNoteOp,
};
use hive_core::ids::UserId;
use hive_core::model::{Paper, QaTarget, User, WorkpadItem};
use hive_core::sim::{topic_abstract, topic_phrase, topic_question, topic_title};
use hive_core::Hive;
use hive_rng::{Rng, SliceRandom};

fn pick_user(hive: &Hive, rng: &mut Rng) -> Option<UserId> {
    hive.db().user_ids().choose(rng).copied()
}

fn pick_pair(hive: &Hive, rng: &mut Rng) -> Option<(UserId, UserId)> {
    let users = hive.db().user_ids();
    if users.len() < 2 {
        return None;
    }
    let a = rng.gen_range(0..users.len());
    let mut b = rng.gen_range(0..users.len() - 1);
    if b >= a {
        b += 1;
    }
    Some((users[a], users[b]))
}

fn topic(rng: &mut Rng) -> usize {
    rng.gen_range(0..4)
}

/// Generates the ops for one workload step: a clock advance followed
/// by one mutation drawn from a fixed distribution over the platform
/// API. Ops reference only entities that exist in `hive` right now, so
/// most are accepted; the rest exercise the leader's typed-rejection
/// path (a rejected op is never shipped).
pub fn step_ops(hive: &Hive, step_no: usize, rng: &mut Rng) -> Vec<ReplOp> {
    let mut out = vec![ReplOp::AdvanceClock(rng.gen_range(1..4u64))];
    let roll = rng.gen_range(0..100u32);
    match roll {
        0..=4 => {
            let t = topic(rng);
            let user = User::new(format!("Replicated Researcher {step_no}"), "Simulated Institute")
                .with_interests(vec![topic_phrase(t, rng)]);
            out.push(ReplOp::AddUser(user));
        }
        5..=17 => {
            if let Some((follower, followee)) = pick_pair(hive, rng) {
                out.push(ReplOp::Follow(FollowOp { follower, followee }));
            }
        }
        18..=27 => {
            if let Some((a, b)) = pick_pair(hive, rng) {
                let pending = hive.db().pending_requests_for(a);
                match pending.choose(rng).copied() {
                    Some(from) if rng.gen_bool(0.5) => {
                        out.push(ReplOp::RespondConnection(RespondConnectionOp {
                            to: a,
                            from,
                            accept: rng.gen_bool(0.8),
                        }));
                    }
                    _ => out
                        .push(ReplOp::RequestConnection(RequestConnectionOp { from: a, to: b })),
                }
            }
        }
        28..=39 => {
            let sessions = hive.db().session_ids();
            if let (Some(user), Some(&session)) = (pick_user(hive, rng), sessions.choose(rng)) {
                out.push(ReplOp::CheckIn(CheckInOp { user, session }));
            }
        }
        40..=44 => {
            let users = hive.db().user_ids();
            let n_authors = rng.gen_range(1..=3usize).min(users.len());
            let authors: Vec<UserId> =
                users.choose_multiple(rng, n_authors).into_iter().copied().collect();
            if !authors.is_empty() {
                let t = topic(rng);
                let n_cites = rng.gen_range(0..3usize);
                let cites: Vec<_> = hive
                    .db()
                    .paper_ids()
                    .choose_multiple(rng, n_cites)
                    .into_iter()
                    .copied()
                    .collect();
                let venue = hive.db().conference_ids().choose(rng).copied();
                let mut paper = Paper::new(topic_title(t, rng), authors)
                    .with_abstract(topic_abstract(t, rng))
                    .citing(cites);
                if let Some(v) = venue {
                    paper = paper.at_venue(v);
                }
                out.push(ReplOp::AddPaper(paper));
            }
        }
        45..=54 => {
            let target = if rng.gen_bool(0.5) {
                hive.db().presentation_ids().choose(rng).map(|&p| QaTarget::Presentation(p))
            } else {
                hive.db().session_ids().choose(rng).map(|&s| QaTarget::Session(s))
            };
            if let (Some(author), Some(target)) = (pick_user(hive, rng), target) {
                out.push(ReplOp::AskQuestion(AskQuestionOp {
                    author,
                    target,
                    text: topic_question(topic(rng), rng),
                    broadcast: rng.gen_bool(0.3),
                }));
            }
        }
        55..=62 => {
            let question = hive.db().question_ids().choose(rng).copied();
            if let (Some(author), Some(question)) = (pick_user(hive, rng), question) {
                out.push(ReplOp::AnswerQuestion(AnswerQuestionOp {
                    author,
                    question,
                    text: topic_phrase(topic(rng), rng),
                }));
            }
        }
        63..=72 => {
            if let Some(user) = pick_user(hive, rng) {
                match hive.db().active_workpad_of(user) {
                    Some(pad) if rng.gen_bool(0.7) => {
                        let item = if rng.gen_bool(0.5) {
                            hive.db().paper_ids().choose(rng).map(|&p| WorkpadItem::Paper(p))
                        } else {
                            hive.db().session_ids().choose(rng).map(|&s| WorkpadItem::Session(s))
                        };
                        if let Some(item) = item {
                            out.push(ReplOp::WorkpadAdd(WorkpadAddOp { user, pad, item }));
                        }
                    }
                    Some(pad) => {
                        out.push(ReplOp::WorkpadNote(WorkpadNoteOp {
                            user,
                            pad,
                            text: topic_phrase(topic(rng), rng),
                        }));
                    }
                    None => {
                        out.push(ReplOp::CreateWorkpad(CreateWorkpadOp {
                            owner: user,
                            name: format!("pad {step_no}"),
                        }));
                    }
                }
            }
        }
        73..=79 => match rng.gen_range(0..3u32) {
            0 => {
                let target = hive.db().session_ids().choose(rng).map(|&s| QaTarget::Session(s));
                if let (Some(author), Some(target)) = (pick_user(hive, rng), target) {
                    out.push(ReplOp::Comment(CommentOp {
                        author,
                        target,
                        text: topic_phrase(topic(rng), rng),
                    }));
                }
            }
            1 => {
                let session = hive.db().session_ids().choose(rng).copied();
                if let (Some(u), Some(session)) = (pick_user(hive, rng), session) {
                    out.push(ReplOp::PostTweet(PostTweetOp {
                        author: Some(u),
                        handle: "@replica".to_string(),
                        text: topic_phrase(topic(rng), rng),
                        session,
                    }));
                }
            }
            _ => {
                let paper = hive.db().paper_ids().choose(rng).copied();
                if let (Some(user), Some(paper)) = (pick_user(hive, rng), paper) {
                    out.push(ReplOp::ViewPaper(ViewPaperOp { user, paper }));
                }
            }
        },
        80..=85 => {
            let conf = hive.db().conference_ids().choose(rng).copied();
            if let (Some(user), Some(conf)) = (pick_user(hive, rng), conf) {
                out.push(ReplOp::Attend(AttendOp { user, conf }));
            }
        }
        86..=89 => {
            if let Some((follower, followee)) = pick_pair(hive, rng) {
                out.push(ReplOp::SetFollowFilter(SetFollowFilterOp {
                    follower,
                    followee,
                    categories: vec!["discuss".to_string(), "check-in".to_string()],
                }));
            }
        }
        _ => {
            // Engagement-heavy tail: views dominate real traffic.
            let paper = hive.db().paper_ids().choose(rng).copied();
            if let (Some(user), Some(paper)) = (pick_user(hive, rng), paper) {
                out.push(ReplOp::ViewPaper(ViewPaperOp { user, paper }));
            }
        }
    }
    out
}
