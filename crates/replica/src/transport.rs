//! In-process deterministic transport with seeded fault injection.
//!
//! One transport models the channel from the leader to a single
//! follower: frames go in as wire strings, and a drain hands out what
//! "arrived". Faults — drop, duplicate, reorder, truncate — fire from a
//! forked [`hive_rng::Rng`], so a seed reproduces the exact same fault
//! schedule every run; there is no wall-clock or scheduler anywhere in
//! the path (lint R3/R6 hold trivially).
//!
//! Fault decisions draw from the rng in a fixed order per send
//! (drop, truncate, duplicate, reorder) regardless of probabilities, so
//! changing one probability never shifts the schedule of the others.

use std::collections::VecDeque;

use hive_rng::Rng;

/// Per-send fault probabilities. All zero means a perfect channel.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Probability the frame is silently lost.
    pub drop_p: f64,
    /// Probability the frame arrives twice.
    pub dup_p: f64,
    /// Probability the frame is swapped with the previously queued one.
    pub reorder_p: f64,
    /// Probability the frame loses its tail bytes.
    pub truncate_p: f64,
}

impl FaultPlan {
    /// A perfect channel.
    pub fn none() -> FaultPlan {
        FaultPlan { drop_p: 0.0, dup_p: 0.0, reorder_p: 0.0, truncate_p: 0.0 }
    }

    /// Every fault armed at probability `p`.
    pub fn all(p: f64) -> FaultPlan {
        FaultPlan { drop_p: p, dup_p: p, reorder_p: p, truncate_p: p }
    }

    /// Only frame drops, at probability `p`.
    pub fn drops(p: f64) -> FaultPlan {
        FaultPlan { drop_p: p, ..FaultPlan::none() }
    }

    /// Only duplicated frames, at probability `p`.
    pub fn dups(p: f64) -> FaultPlan {
        FaultPlan { dup_p: p, ..FaultPlan::none() }
    }

    /// Only adjacent reorders, at probability `p`.
    pub fn reorders(p: f64) -> FaultPlan {
        FaultPlan { reorder_p: p, ..FaultPlan::none() }
    }

    /// Only truncated frames, at probability `p`.
    pub fn truncates(p: f64) -> FaultPlan {
        FaultPlan { truncate_p: p, ..FaultPlan::none() }
    }

    /// True when no fault can ever fire.
    pub fn is_clean(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.reorder_p <= 0.0 && self.truncate_p <= 0.0
    }
}

/// What the channel did, cumulatively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames offered by the sender.
    pub sent: u64,
    /// Frames handed to the receiver (incl. duplicates and damage).
    pub delivered: u64,
    /// Frames silently lost.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Adjacent swaps performed.
    pub reordered: u64,
    /// Frames that lost their tail.
    pub truncated: u64,
}

/// The leader→follower channel for one follower.
#[derive(Debug)]
pub struct Transport {
    rng: Rng,
    plan: FaultPlan,
    queue: VecDeque<String>,
    stats: TransportStats,
}

impl Transport {
    /// A channel with its own fault stream seeded from `seed`.
    pub fn new(seed: u64, plan: FaultPlan) -> Transport {
        Transport {
            rng: Rng::seed_from_u64(seed),
            plan,
            queue: VecDeque::new(),
            stats: TransportStats::default(),
        }
    }

    /// Cumulative channel statistics.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Drops everything currently in flight (a crashed receiver loses
    /// whatever had not been drained).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Offers one wire frame to the channel, applying the fault plan.
    pub fn send(&mut self, wire: &str) {
        self.stats.sent += 1;
        // Fixed draw order: drop, truncate, duplicate, reorder.
        let drop = self.rng.gen_bool(self.plan.drop_p);
        let truncate = self.rng.gen_bool(self.plan.truncate_p);
        let dup = self.rng.gen_bool(self.plan.dup_p);
        let reorder = self.rng.gen_bool(self.plan.reorder_p);
        if drop {
            self.stats.dropped += 1;
            hive_obs::count("replica.transport.drop", 1);
            return;
        }
        let mut delivered = wire.to_string();
        if truncate && !delivered.is_empty() {
            let mut cut = self.rng.gen_range(0..delivered.len());
            while !delivered.is_char_boundary(cut) {
                cut -= 1;
            }
            delivered.truncate(cut);
            self.stats.truncated += 1;
            hive_obs::count("replica.transport.truncate", 1);
        }
        self.queue.push_back(delivered.clone());
        if dup {
            self.queue.push_back(delivered);
            self.stats.duplicated += 1;
            hive_obs::count("replica.transport.dup", 1);
        }
        if reorder && self.queue.len() >= 2 {
            let last = self.queue.len() - 1;
            self.queue.swap(last, last - 1);
            self.stats.reordered += 1;
            hive_obs::count("replica.transport.reorder", 1);
        }
    }

    /// Takes everything that has arrived, in delivery order.
    pub fn drain(&mut self) -> Vec<String> {
        let out: Vec<String> = self.queue.drain(..).collect();
        self.stats.delivered += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("frame-{i}")).collect()
    }

    #[test]
    fn clean_channel_is_fifo_and_lossless() {
        let mut t = Transport::new(1, FaultPlan::none());
        for f in frames(5) {
            t.send(&f);
        }
        assert_eq!(t.drain(), frames(5));
        assert_eq!(t.stats().dropped + t.stats().duplicated + t.stats().truncated, 0);
    }

    #[test]
    fn fault_schedule_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let mut t = Transport::new(seed, FaultPlan::all(0.3));
            for f in frames(40) {
                t.send(&f);
            }
            (t.drain(), t.stats())
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7).0, run(8).0, "different seed, different schedule");
    }

    #[test]
    fn each_fault_kind_fires_alone() {
        let cases: [(FaultPlan, fn(&TransportStats) -> u64); 4] = [
            (FaultPlan::drops(0.5), |s| s.dropped),
            (FaultPlan::dups(0.5), |s| s.duplicated),
            (FaultPlan::reorders(0.5), |s| s.reordered),
            (FaultPlan::truncates(0.5), |s| s.truncated),
        ];
        for (plan, pick) in cases {
            let mut t = Transport::new(11, plan);
            for f in frames(60) {
                t.send(&f);
            }
            let stats = t.stats();
            assert!(pick(&stats) > 0, "{plan:?} never fired");
            let others = stats.dropped + stats.duplicated + stats.reordered + stats.truncated;
            assert_eq!(others, pick(&stats), "{plan:?} fired a different fault");
        }
    }

    #[test]
    fn crash_clears_in_flight_frames() {
        let mut t = Transport::new(3, FaultPlan::none());
        t.send("a");
        t.send("b");
        assert_eq!(t.in_flight(), 2);
        t.clear();
        assert!(t.drain().is_empty());
    }
}
