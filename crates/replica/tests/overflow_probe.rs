use hive_core::sim::{SimConfig, WorldBuilder};
use hive_replica::{Cluster, ClusterConfig, FaultPlan, ReplOp};

#[test]
fn overflow_checkpoint_keeps_followers_alive() {
    let db = WorldBuilder::new(SimConfig::small()).build().db;
    let mut cluster = Cluster::new(
        db,
        1,
        ClusterConfig { seed: 1, checkpoint_every: 8, faults: FaultPlan::none() },
    );
    // Exceed DB_DELTA_LOG_CAP (4096) generations between seals so the
    // leader's deltas_since window is lost and the ops frame is
    // replaced by a checkpoint.
    for _ in 0..5000 {
        cluster.apply(ReplOp::AdvanceClock(1)).expect("clock always advances");
    }
    cluster.commit();
    let f = cluster.follower(0).expect("slot 0 exists");
    assert!(
        !f.is_broken(),
        "streaming follower went terminally Broken on overflow checkpoint: {:?}",
        f.state()
    );
    assert!(cluster.heal(8), "follower should converge after overflow");
}
