//! A tiny seeded property-test runner.
//!
//! Replaces the retired `proptest` dependency for the workspace's
//! randomized suites (`tests/prop_*.rs`). Properties are closures from a
//! seeded [`hive_rng::Rng`] to `Result<(), String>`; the runner derives
//! one deterministic seed per case from the property *name*, so a failure
//! message pins the exact case and any failure can be replayed with
//! [`check_seed`] as a named regression test. No shrinking — generators
//! here draw from small universes, so failing cases are already small.

use hive_rng::{splitmix64, Rng};

/// Default number of randomized cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Stable FNV-1a hash of a property name; the per-name seed stream root.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `cases` randomized cases of property `f`. Panics (failing the
/// enclosing `#[test]`) with the property name, case index, and case
/// seed on the first counterexample.
pub fn check(name: &str, cases: usize, mut f: impl FnMut(&mut Rng) -> Result<(), String>) {
    let mut state = name_seed(name);
    for case in 0..cases {
        let seed = splitmix64(&mut state);
        let mut rng = Rng::seed_from_u64(seed);
        if let Err(msg) = f(&mut rng) {
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with check_seed(.., {seed:#x}, ..)): {msg}"
            );
        }
    }
}

/// Replays a single pinned seed of property `f` — the runner's analogue
/// of a `proptest-regressions` entry, but committed as a named test.
pub fn check_seed(name: &str, seed: u64, mut f: impl FnMut(&mut Rng) -> Result<(), String>) {
    let mut rng = Rng::seed_from_u64(seed);
    if let Err(msg) = f(&mut rng) {
        panic!("property '{name}' failed for pinned seed {seed:#x}: {msg}");
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless `a == b`, printing both sides.
#[macro_export]
macro_rules! prop_ensure_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "{}: {:?} vs {:?}",
                format!($($fmt)+),
                lhs,
                rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0;
        check("prop::always_true", 10, |rng| {
            ran += 1;
            let v = rng.gen_range(0..100usize);
            prop_ensure!(v < 100, "out of range: {v}");
            Ok(())
        });
        assert_eq!(ran, 10);
    }

    #[test]
    #[should_panic(expected = "property 'prop::always_false' failed at case 0")]
    fn failing_property_panics_with_context() {
        check("prop::always_false", 5, |_| Err("nope".into()));
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        let mut a = Vec::new();
        check("prop::stream", 3, |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        check("prop::stream", 3, |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
        let mut c = Vec::new();
        check("prop::other_stream", 3, |rng| {
            c.push(rng.next_u64());
            Ok(())
        });
        assert_ne!(a, c);
    }

    #[test]
    fn check_seed_replays_exactly() {
        let mut seen = Vec::new();
        check_seed("prop::pinned", 0xdead_beef, |rng| {
            seen.push(rng.next_u64());
            Ok(())
        });
        let mut expected = hive_rng::Rng::seed_from_u64(0xdead_beef);
        assert_eq!(seen, vec![expected.next_u64()]);
    }
}
