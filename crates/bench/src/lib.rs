//! # hive-bench — experiment and figure/table regeneration harness
//!
//! One binary per paper artifact (see DESIGN.md §4):
//!
//! * `table1_services` — Table 1: one demonstrated invocation + latency
//!   row per Hive service,
//! * `fig1_platform` — Figure 1: the platform state behind the screenshot,
//! * `fig2_relationships` — Figure 2: relationship evidence + ranked paths,
//! * `fig3_layers` — Figure 3: layer inventory + alignment matrix,
//! * `fig4_workpads` — Figure 4: context divergence across workpads,
//! * `exp_scent`, `exp_ini`, `exp_alphasum`, `exp_peer_rec`,
//!   `exp_communities` — the shape-level experiments for the cited
//!   component claims.
//!
//! This library holds the shared measurement/reporting utilities.
//! [`prop`] is the in-tree property-test runner used by `tests/prop_*`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prop;

use std::sync::Mutex;
use std::time::Instant; // lint:allow(deterministic-time) -- wall-clock is the measurement

/// True when `HIVE_BENCH_SMOKE` is set: benches shrink their iteration
/// counts so `tools/bench.sh` can sweep every binary in seconds while
/// still exercising the real code paths.
pub fn smoke() -> bool {
    std::env::var_os("HIVE_BENCH_SMOKE").is_some()
}

/// Picks an iteration count: `full` normally, `quick` in smoke mode.
pub fn iters(full: usize, quick: usize) -> usize {
    if smoke() {
        quick.min(full)
    } else {
        full
    }
}

/// (metric name, value) pairs accumulated by [`report`] and [`metric`],
/// flushed by [`write_json_fragment`]. The section prefix comes from the
/// most recent [`header`] call.
static RECORDS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());
static SECTION: Mutex<String> = Mutex::new(String::new());

fn push_record(name: String, value: f64) {
    if let Ok(mut recs) = RECORDS.lock() {
        recs.push((name, value));
    }
}

/// Records a scalar metric (e.g. a speedup ratio) under the current
/// section for the JSON fragment, and prints it.
pub fn metric(name: &str, value: f64) {
    let section = SECTION.lock().map(|s| s.clone()).unwrap_or_default();
    println!("{section}/{name} = {value:.3}");
    push_record(format!("{section}/{name}"), value);
}

/// Writes every metric recorded so far to
/// `$HIVE_BENCH_JSON_DIR/<bench>.json` as a flat object of
/// `"section/case_ns_per_op"` (or scalar metric) entries. No-op when the
/// env var is unset, so plain `cargo bench` runs stay file-free.
pub fn write_json_fragment(bench: &str) {
    let Some(dir) = std::env::var_os("HIVE_BENCH_JSON_DIR") else {
        return;
    };
    let records = RECORDS.lock().map(|r| r.clone()).unwrap_or_default();
    let pairs: Vec<(String, hive_json::Json)> = records
        .into_iter()
        .map(|(k, v)| (k, hive_json::Json::Float(v)))
        .collect();
    let doc = hive_json::Json::Obj(vec![
        ("bench".to_string(), hive_json::Json::Str(bench.to_string())),
        ("metrics".to_string(), hive_json::Json::Obj(pairs)),
    ]);
    let dir = std::path::PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&dir);
    if let Err(e) = std::fs::write(dir.join(format!("{bench}.json")), doc.render()) {
        eprintln!("bench: failed to write json fragment: {e}");
    }
}

/// Runs `f` once and returns (result, elapsed microseconds).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now(); // lint:allow(deterministic-time)
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Runs `f` `n` times and returns the per-run latencies in microseconds.
pub fn time_n(n: usize, mut f: impl FnMut()) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now(); // lint:allow(deterministic-time)
        f();
        out.push(start.elapsed().as_secs_f64() * 1e6);
    }
    out
}

/// Percentile (0..=100) of a latency sample; returns 0 on empty input.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Mean of a sample (0 on empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Prints a section header and makes `title` the current section prefix
/// for metrics recorded by [`report`] and [`metric`].
pub fn header(title: &str) {
    println!("\n=== {title} ===");
    if let Ok(mut s) = SECTION.lock() {
        *s = title.to_string();
    }
}

/// Prints an aligned row of cells.
pub fn row(cells: &[String]) {
    let widths = [36, 14, 14, 14, 14, 14];
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:<w$} "));
    }
    println!("{}", line.trim_end());
}

/// Prints the column header used by [`report`].
pub fn report_header() {
    row(&[
        "case".into(),
        "mean".into(),
        "p50".into(),
        "p95".into(),
        "n".into(),
    ]);
}

/// Prints one `case  mean  p50  p95  n` row for a latency sample and
/// records the mean as `section/name_ns_per_op` for the JSON fragment.
pub fn report(name: &str, samples: &[f64]) {
    row(&[
        name.to_string(),
        fmt_us(mean(samples)),
        fmt_us(percentile(samples, 50.0)),
        fmt_us(percentile(samples, 95.0)),
        samples.len().to_string(),
    ]);
    let section = SECTION.lock().map(|s| s.clone()).unwrap_or_default();
    push_record(format!("{section}/{name}_ns_per_op"), mean(samples) * 1e3);
}

/// Formats microseconds human-readably.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.1}us")
    }
}

/// Fraction of items shared by two top-k rankings, in `[0, 1]`.
pub fn overlap_fraction<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let shared = a.iter().filter(|x| b.contains(x)).count();
    shared as f64 / a.len().max(b.len()) as f64
}

/// Kendall tau rank correlation between two rankings given as ordered
/// item lists (items not shared by both are ignored — pair with
/// [`overlap_fraction`] to see divergence in membership). Returns a value
/// in `[-1, 1]`; 1 = identical order (degenerate when < 2 shared items).
pub fn kendall_tau<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let shared: Vec<(usize, usize)> = a
        .iter()
        .enumerate()
        .filter_map(|(ia, x)| b.iter().position(|y| y == x).map(|ib| (ia, ib)))
        .collect();
    let n = shared.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = shared[i].0 as i64 - shared[j].0 as i64;
            let db = shared[i].1 as i64 - shared[j].1 as i64;
            if da * db > 0 {
                concordant += 1;
            } else if da * db < 0 {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_bounds() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn overlap_fraction_bounds() {
        assert_eq!(overlap_fraction(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(overlap_fraction(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(overlap_fraction::<i32>(&[], &[]), 1.0);
        assert!((overlap_fraction(&[1, 2, 3, 4], &[3, 4, 5, 6]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = vec![1, 2, 3, 4];
        let rev: Vec<i32> = a.iter().rev().copied().collect();
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        assert_eq!(kendall_tau(&a, &[9, 10]), 1.0);
    }

    #[test]
    fn timing_is_positive() {
        let (v, us) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
        let samples = time_n(3, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn formatting() {
        assert!(fmt_us(500.0).ends_with("us"));
        assert!(fmt_us(5_000.0).ends_with("ms"));
        assert!(fmt_us(5_000_000.0).ends_with('s'));
    }
}
