//! # hive-bench — experiment and figure/table regeneration harness
//!
//! One binary per paper artifact (see DESIGN.md §4):
//!
//! * `table1_services` — Table 1: one demonstrated invocation + latency
//!   row per Hive service,
//! * `fig1_platform` — Figure 1: the platform state behind the screenshot,
//! * `fig2_relationships` — Figure 2: relationship evidence + ranked paths,
//! * `fig3_layers` — Figure 3: layer inventory + alignment matrix,
//! * `fig4_workpads` — Figure 4: context divergence across workpads,
//! * `exp_scent`, `exp_ini`, `exp_alphasum`, `exp_peer_rec`,
//!   `exp_communities` — the shape-level experiments for the cited
//!   component claims.
//!
//! This library holds the shared measurement/reporting utilities.
//! [`prop`] is the in-tree property-test runner used by `tests/prop_*`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prop;

use std::time::Instant; // lint:allow(deterministic-time) -- wall-clock is the measurement

/// Runs `f` once and returns (result, elapsed microseconds).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now(); // lint:allow(deterministic-time)
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Runs `f` `n` times and returns the per-run latencies in microseconds.
pub fn time_n(n: usize, mut f: impl FnMut()) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now(); // lint:allow(deterministic-time)
        f();
        out.push(start.elapsed().as_secs_f64() * 1e6);
    }
    out
}

/// Percentile (0..=100) of a latency sample; returns 0 on empty input.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Mean of a sample (0 on empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned row of cells.
pub fn row(cells: &[String]) {
    let widths = [36, 14, 14, 14, 14, 14];
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:<w$} "));
    }
    println!("{}", line.trim_end());
}

/// Prints the column header used by [`report`].
pub fn report_header() {
    row(&[
        "case".into(),
        "mean".into(),
        "p50".into(),
        "p95".into(),
        "n".into(),
    ]);
}

/// Prints one `case  mean  p50  p95  n` row for a latency sample.
pub fn report(name: &str, samples: &[f64]) {
    row(&[
        name.to_string(),
        fmt_us(mean(samples)),
        fmt_us(percentile(samples, 50.0)),
        fmt_us(percentile(samples, 95.0)),
        samples.len().to_string(),
    ]);
}

/// Formats microseconds human-readably.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.1}us")
    }
}

/// Fraction of items shared by two top-k rankings, in `[0, 1]`.
pub fn overlap_fraction<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let shared = a.iter().filter(|x| b.contains(x)).count();
    shared as f64 / a.len().max(b.len()) as f64
}

/// Kendall tau rank correlation between two rankings given as ordered
/// item lists (items not shared by both are ignored — pair with
/// [`overlap_fraction`] to see divergence in membership). Returns a value
/// in `[-1, 1]`; 1 = identical order (degenerate when < 2 shared items).
pub fn kendall_tau<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let shared: Vec<(usize, usize)> = a
        .iter()
        .enumerate()
        .filter_map(|(ia, x)| b.iter().position(|y| y == x).map(|ib| (ia, ib)))
        .collect();
    let n = shared.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = shared[i].0 as i64 - shared[j].0 as i64;
            let db = shared[i].1 as i64 - shared[j].1 as i64;
            if da * db > 0 {
                concordant += 1;
            } else if da * db < 0 {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_bounds() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn overlap_fraction_bounds() {
        assert_eq!(overlap_fraction(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(overlap_fraction(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(overlap_fraction::<i32>(&[], &[]), 1.0);
        assert!((overlap_fraction(&[1, 2, 3, 4], &[3, 4, 5, 6]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = vec![1, 2, 3, 4];
        let rev: Vec<i32> = a.iter().rev().copied().collect();
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        assert_eq!(kendall_tau(&a, &[9, 10]), 1.0);
    }

    #[test]
    fn timing_is_positive() {
        let (v, us) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
        let samples = time_n(3, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn formatting() {
        assert!(fmt_us(500.0).ends_with("us"));
        assert!(fmt_us(5_000.0).ends_with("ms"));
        assert!(fmt_us(5_000_000.0).ends_with('s'));
    }
}
