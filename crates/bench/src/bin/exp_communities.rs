//! Experiment E5 — community discovery and tracking (Table 1).
//!
//! Discovery: NMI of discovered communities against the simulator's
//! planted topic communities, for Louvain and label propagation, across
//! world sizes. Tracking: a stream of epoch interaction graphs with a
//! planted community *merge*; we check that the SCENT change detector
//! flags the merge epoch and that community matching exposes the event.
//!
//! Run: `cargo run -p hive-bench --release --bin exp_communities`

use hive_bench::{fmt_us, header, row, time_once};
use hive_core::communities::{discover, CommunityTracker, Method};
use hive_core::knowledge::KnowledgeNetwork;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_graph::{nmi_of_partitions, Graph};
use hive_scent::{DetectorBackend, SketchConfig};

fn main() {
    println!("E5 — community discovery and tracking");

    header("Discovery NMI vs planted topics");
    row(&[
        "world".into(),
        "method".into(),
        "communities".into(),
        "nmi".into(),
        "time".into(),
    ]);
    for (label, cfg) in [
        ("small (30u/4t)", SimConfig::small()),
        ("medium (150u/8t)", SimConfig::medium()),
    ] {
        let world = WorldBuilder::new(cfg).build();
        let kn = KnowledgeNetwork::build(&world.db);
        for method in [Method::Louvain, Method::LabelPropagation(7)] {
            let (comms, us) = time_once(|| discover(&kn, method));
            let score = nmi_of_partitions(
                &comms
                    .members
                    .iter()
                    .map(|m| m.iter().map(|u| u.index()).collect())
                    .collect::<Vec<Vec<usize>>>(),
                &world
                    .planted_communities
                    .iter()
                    .map(|m| m.iter().map(|u| u.index()).collect())
                    .collect::<Vec<Vec<usize>>>(),
                cfg.users,
            );
            row(&[
                label.to_string(),
                format!("{method:?}"),
                comms.count().to_string(),
                format!("{score:.3}"),
                fmt_us(us),
            ]);
        }
    }

    header("Tracking: planted merge across epochs (SCENT-flagged)");
    // Synthetic epoch stream: two topic cliques, merging at epoch 8.
    let n_users = 20;
    let clique = |merged: bool| -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..n_users)
            .map(|i| g.add_node(format!("user:{i}")))
            .collect();
        let half = n_users / 2;
        for group in [&ids[..half], &ids[half..]] {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    g.add_undirected_edge(group[i], group[j], 1.0);
                }
            }
        }
        if merged {
            for i in 0..half {
                for j in half..n_users {
                    g.add_undirected_edge(ids[i], ids[j], 1.0);
                }
            }
        }
        g
    };
    let mut tracker = CommunityTracker::new(
        n_users,
        Method::Louvain,
        DetectorBackend::Sketch(SketchConfig { measurements: 512, seed: 3 }),
    );
    let merge_epoch = 8;
    for e in 0..12 {
        tracker.observe(&clique(e >= merge_epoch));
    }
    let changes = tracker.change_epochs(4.0, 4);
    println!("epochs: 12, planted merge at epoch {merge_epoch}");
    println!("SCENT-flagged epochs: {changes:?}");
    row(&["epoch".into(), "communities".into()]);
    for e in 0..tracker.epoch_count() {
        row(&[e.to_string(), tracker.communities_at(e).count().to_string()]);
    }
    let matches = tracker.match_communities(merge_epoch - 1, merge_epoch);
    println!("\ncommunity matching across the merge boundary:");
    for (i, target, jac) in matches {
        println!("  community {i} -> {target:?} (jaccard {jac:.2})");
    }
    println!(
        "\nExpected shape: NMI well above chance on planted topics; the merge\n\
         epoch is flagged and both old communities map onto the merged one."
    );
}
