//! Experiment E2 — the INI claim (paper ref \[6\]): an impact-neighborhood
//! index answers diffusion impact queries faster than recomputation, with
//! graceful degradation as updates interleave with queries.
//!
//! Sweeps graph size, query/update mix, and the truncation threshold ε.
//!
//! Expected shape: the index wins by a wide margin on query-heavy mixes
//! (cache hits), converges to recompute cost as the update fraction
//! grows (every update invalidates neighborhoods), and smaller ε makes
//! both engines slower but the index relatively better.
//!
//! Run: `cargo run -p hive-bench --release --bin exp_ini`

use hive_bench::{fmt_us, header, row, time_once};
use hive_graph::{DiffusionParams, Graph, ImpactIndex, ImpactQueryEngine, NodeId, RecomputeEngine};
use hive_rng::Rng;

/// Scale-free-ish random graph (preferential attachment flavor).
fn random_graph(n: usize, avg_deg: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 1..n {
        let m = avg_deg.min(i);
        for _ in 0..m {
            // Bias toward low indexes (older nodes): rough pref. attachment.
            let j = (rng.gen_range(0..i) * rng.gen_range(0..i.max(1))) / i.max(1);
            if j != i {
                g.add_edge(ids[i], ids[j], rng.gen_range(0.1..1.0));
                g.add_edge(ids[j], ids[i], rng.gen_range(0.1..1.0));
            }
        }
    }
    g
}

/// Runs a mixed workload: `ops` operations, a fraction `update_frac` of
/// which are edge insertions, the rest impact queries on random sources.
fn run_workload(
    engine: &mut dyn ImpactQueryEngine,
    nodes: usize,
    ops: usize,
    update_frac: f64,
    seed: u64,
) -> f64 {
    let mut rng = Rng::seed_from_u64(seed);
    let (_, us) = time_once(|| {
        for _ in 0..ops {
            if rng.gen_bool(update_frac) {
                let u = NodeId(rng.gen_range(0..nodes as u32));
                let v = NodeId(rng.gen_range(0..nodes as u32));
                if u != v {
                    engine.add_edge(u, v, rng.gen_range(0.1..1.0));
                }
            } else {
                let src = NodeId(rng.gen_range(0..nodes as u32));
                std::hint::black_box(engine.impact(src));
            }
        }
    });
    us
}

fn main() {
    println!("E2 — INI impact-neighborhood index vs full recompute");
    let params = DiffusionParams { alpha: 0.5, epsilon: 1e-3 };
    let ops = 400;

    header("Workload time vs graph size (10% updates, epsilon 1e-3)");
    row(&["engine".into(), "nodes".into(), "total".into(), "per-op".into()]);
    for n in [200usize, 500, 1000, 2000] {
        let g = random_graph(n, 4, 1);
        let mut base = RecomputeEngine::new(g.clone(), params);
        let mut idx = ImpactIndex::new(g, params);
        idx.build_full();
        for (name, engine) in [
            ("recompute", &mut base as &mut dyn ImpactQueryEngine),
            ("ini-index", &mut idx as &mut dyn ImpactQueryEngine),
        ] {
            let us = run_workload(engine, n, ops, 0.1, 42);
            row(&[
                name.to_string(),
                n.to_string(),
                fmt_us(us),
                fmt_us(us / ops as f64),
            ]);
        }
    }

    header("Workload time vs update fraction (1000 nodes)");
    println!("(bounded neighborhoods, eps 1e-2, are INI's design point; eps 1e-4");
    println!(" makes neighborhoods graph-sized so every update shreds the cache)");
    row(&[
        "update % / epsilon".into(),
        "recompute".into(),
        "ini-index".into(),
        "index speedup".into(),
        "hit rate".into(),
    ]);
    for eps in [1e-2f64, 1e-4] {
        let p = DiffusionParams { alpha: 0.5, epsilon: eps };
        for update_frac in [0.0f64, 0.05, 0.2, 0.5, 0.9] {
            let g = random_graph(1000, 4, 2);
            let mut base = RecomputeEngine::new(g.clone(), p);
            let mut idx = ImpactIndex::new(g, p);
            idx.build_full();
            let t_base = run_workload(&mut base, 1000, ops, update_frac, 7);
            let t_idx = run_workload(&mut idx, 1000, ops, update_frac, 7);
            let (hits, misses) = idx.stats();
            let hit_rate = if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            };
            row(&[
                format!("{:.0}% / {eps:.0e}", update_frac * 100.0),
                fmt_us(t_base),
                fmt_us(t_idx),
                format!("{:.1}x", t_base / t_idx.max(1.0)),
                format!("{hit_rate:.2}"),
            ]);
        }
    }

    header("Ablation: truncation threshold epsilon (1000 nodes, 10% updates)");
    row(&[
        "epsilon".into(),
        "recompute".into(),
        "ini-index".into(),
        "mean nbhd size".into(),
    ]);
    for eps in [1e-2f64, 1e-3, 1e-4, 1e-5] {
        let p = DiffusionParams { alpha: 0.5, epsilon: eps };
        let g = random_graph(1000, 4, 3);
        let mut base = RecomputeEngine::new(g.clone(), p);
        let mut idx = ImpactIndex::new(g, p);
        // Mean neighborhood size from a sample.
        let mut total = 0usize;
        for s in 0..50u32 {
            total += base.impact(NodeId(s)).len();
        }
        let t_base = run_workload(&mut base, 1000, ops, 0.1, 9);
        let t_idx = run_workload(&mut idx, 1000, ops, 0.1, 9);
        row(&[
            format!("{eps:.0e}"),
            fmt_us(t_base),
            fmt_us(t_idx),
            format!("{:.1}", total as f64 / 50.0),
        ]);
    }
    println!(
        "\nExpected shape: with bounded neighborhoods (eps 1e-2) the index wins\n\
         across realistic update mixes; with graph-sized neighborhoods (eps 1e-4)\n\
         invalidation destroys the cache and the index converges to recompute."
    );
}
