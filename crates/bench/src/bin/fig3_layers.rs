//! Figure 3 regeneration: the multi-layer dynamic knowledge network —
//! per-layer inventory (nodes/edges), the concept-layer alignment
//! quality matrix (§2.2's imprecise alignment), the integrated-network
//! statistics, and the lexical-vs-structural alignment ablation.
//!
//! Run: `cargo run -p hive-bench --release --bin fig3_layers`

use hive_bench::{header, row};
use hive_concept::{bootstrap_concept_map, diff_maps, AlignConfig, BootstrapConfig};
use hive_core::knowledge::KnowledgeNetwork;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_store::StoreStats;

fn main() {
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let kn = KnowledgeNetwork::build(&world.db);
    println!("Figure 3 — layers of the dynamic Hive knowledge network");

    header("Graph layers");
    row(&["layer".into(), "nodes".into(), "edges".into()]);
    for (name, g) in [
        ("social (connections+follows)", &kn.social),
        ("co-authorship", &kn.coauthor),
        ("citation", &kn.citation),
        ("unified (all layers fused)", &kn.unified),
    ] {
        row(&[
            name.to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
        ]);
    }

    header("Concept-map layers (bootstrapped from content)");
    row(&["layer".into(), "concepts".into(), "relations".into(), "weight".into()]);
    for (name, c, r, w) in kn.concepts.inventory() {
        row(&[name, c.to_string(), r.to_string(), format!("{w:.1}")]);
    }

    header("Alignment quality matrix (mean link score)");
    let m = kn.concepts.alignment_matrix();
    let names: Vec<String> = kn
        .concepts
        .inventory()
        .into_iter()
        .map(|(n, ..)| n)
        .collect();
    let mut head = vec![String::new()];
    head.extend(names.iter().cloned());
    row(&head);
    for (i, name) in names.iter().enumerate() {
        let mut cells = vec![name.clone()];
        cells.extend(m[i].iter().map(|v| format!("{v:.3}")));
        row(&cells);
    }

    header("Ablation: lexical-only vs lexical+structural alignment");
    row(&["variant".into(), "links".into(), "mean score".into()]);
    let layers: Vec<_> = kn.concepts.layers().map(|(_, l)| l.map.clone()).collect();
    if layers.len() >= 2 {
        for (label, cfg) in [
            ("lexical only", AlignConfig { use_structure: false, ..Default::default() }),
            ("lexical + structural", AlignConfig::default()),
        ] {
            let al = hive_concept::align_maps(&layers[0], &layers[1], cfg);
            row(&[
                label.to_string(),
                al.links.len().to_string(),
                format!("{:.3}", al.mean_score()),
            ]);
        }
    }

    header("Dynamic evolution: papers layer before/after the next edition lands");
    // Bootstrap the papers concept layer from edition 0 only, then from
    // editions 0+1, and diff — the "dynamically evolving knowledge
    // structures" of the paper's core claim.
    let texts_of = |confs: &[hive_core::ids::ConferenceId]| -> Vec<String> {
        confs
            .iter()
            .flat_map(|&c| world.db.papers_at(c).to_vec())
            .map(|p| world.db.get_paper(p).expect("exists").text())
            .collect()
    };
    let before_texts = texts_of(&world.conferences[..1]);
    let after_texts = texts_of(&world.conferences[..2]);
    let before_refs: Vec<&str> = before_texts.iter().map(String::as_str).collect();
    let after_refs: Vec<&str> = after_texts.iter().map(String::as_str).collect();
    let before = bootstrap_concept_map("papers", &before_refs, BootstrapConfig::default());
    let after = bootstrap_concept_map("papers", &after_refs, BootstrapConfig::default());
    let delta = diff_maps(&before, &after, 0.05);
    row(&["metric".into(), "value".into()]);
    row(&["concepts before".into(), before.concept_count().to_string()]);
    row(&["concepts after".into(), after.concept_count().to_string()]);
    row(&["concepts added".into(), delta.added_concepts.len().to_string()]);
    row(&["concepts removed".into(), delta.removed_concepts.len().to_string()]);
    row(&["relations added".into(), delta.added_relations.len().to_string()]);
    row(&["change magnitude".into(), format!("{:.1}", delta.magnitude())]);

    header("Integrated network as weighted RDF (R2DB export)");
    let store = kn.concepts.export_store().expect("valid export");
    let n = store.len();
    let relationship_store = kn.to_store(&world.db);
    println!("concept-network triples exported: {n}");
    let stats = StoreStats::compute(&relationship_store);
    println!(
        "relationship store: {} triples, {} subjects, {} predicates, mean weight {:.2}",
        stats.triples,
        stats.subjects,
        stats.per_predicate.len(),
        stats.mean_weight
    );
    row(&["predicate".into(), "triples".into()]);
    for (pred, count) in stats.predicate_table(&relationship_store).into_iter().take(12) {
        row(&[pred, count.to_string()]);
    }
}
