//! Figure 2 regeneration: relationship discovery and explanation between
//! two researchers — the ranked evidence list plus the strongest
//! knowledge-network paths, as the screenshot's right-hand column shows
//! for "K. Selcuk Candan" and "Carsten Griwodz". Also reports ranked-path
//! query latency vs store size (the R2DB primitive behind the feature).
//!
//! Run: `cargo run -p hive-bench --release --bin fig2_relationships`

use hive_bench::{fmt_us, header, percentile, row, time_n};
use hive_core::evidence::combined_score;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_store::{PathQuery, Term};

fn main() {
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let db = hive.db();

    // Pick an interesting pair: co-authors of some multi-author paper.
    let pair = db
        .paper_ids()
        .into_iter()
        .map(|p| db.get_paper(p).expect("exists").clone())
        .find(|p| p.authors.len() >= 2)
        .map(|p| (p.authors[0], p.authors[1]))
        .expect("the simulator produces multi-author papers");
    let (a, b) = pair;
    let name = |u| db.get_user(u).map(|x| x.name.clone()).unwrap_or_default();
    println!(
        "Figure 2 — relationships between \"{}\" and \"{}\"",
        name(a),
        name(b)
    );

    let exp = hive.explain_relationship(a, b);
    header("Rendered Figure 2 panel");
    print!("{}", exp.render(db));
    header("Evidence (ranked)");
    row(&["evidence".into(), "score".into()]);
    for item in &exp.items {
        row(&[item.kind.label().to_string(), format!("{:.3}", item.score)]);
        println!("    {}", item.explanation);
    }
    println!("\ncombined (noisy-or) relationship strength: {:.3}", exp.combined);

    header("Strongest knowledge-network paths");
    for (i, p) in exp.paths.iter().enumerate() {
        println!("  {}. {}", i + 1, p);
    }

    // A weak pair for contrast (different planted topics).
    let weak = world
        .planted_communities
        .iter()
        .skip(1)
        .flatten()
        .copied()
        .find(|&u| u != a && u != b)
        .expect("more than one community");
    let kn = hive.knowledge();
    let weak_items = hive_core::evidence::relationship_evidence(db, &kn, a, weak);
    println!(
        "\ncontrast pair (\"{}\", \"{}\", different topics): combined {:.3} with {} items",
        name(a),
        name(weak),
        combined_score(&weak_items),
        weak_items.len()
    );

    // Ranked path query latency on the exported store.
    header("Ranked path query latency (R2DB primitive)");
    let store = kn.to_store(db);
    println!("store: {} triples over {} terms", store.len(), store.dict().len());
    for k in [1usize, 3, 5] {
        let samples = time_n(10, || {
            let _ = PathQuery::new(Term::iri(a.iri()), Term::iri(b.iri()))
                .top_k(k)
                .max_hops(4)
                .run(&store);
        });
        row(&[
            format!("top-{k} paths, <=4 hops"),
            fmt_us(percentile(&samples, 50.0)),
            fmt_us(percentile(&samples, 95.0)),
        ]);
    }
}
