//! Bench regression gate: fails when any `*_speedup` metric in the
//! merged `BENCH_hive.json` fell below 1.0 — a cache, an index, or a
//! parallel path that now costs more than the baseline it claims to
//! beat.
//!
//! Run: `bench_gate <BENCH_hive.json> [allowlist-file]` (normally
//! invoked by `tools/bench.sh` right after `bench_merge`).
//!
//! Two escape hatches keep the gate honest instead of noisy:
//!
//! * the allowlist file names metrics (one `section/name` — or bare
//!   `name` — per line, `#` comments) that are *expected* to sit below
//!   1.0, e.g. known-serial configurations kept for comparison;
//!   a line of the form `name >= threshold` goes the other way and
//!   *raises* the enforcement floor — the metric fails below the
//!   stated threshold instead of below 1.0 (an index claimed to beat a
//!   scan by 5x must keep beating it by 5x, not merely break even);
//! * `*_t4_vs_t1_*` metrics are auto-exempt when the recorded
//!   `host_threads` is below 4 — on a small host the pool clamps to the
//!   hardware and a "4-thread" run measures the same serial execution
//!   plus noise, so the ratio carries no signal;
//! * multi-reader serving ratios (`*_vs_r1_*`, `*concurrent_read*`)
//!   and multi-follower replication apply ratios (`*_vs_f1_*`) are
//!   auto-exempt when `host_threads` is below 2 — forced workers on a
//!   single core time-slice one CPU, so "concurrent" reads or parallel
//!   follower replays can only tie or lose to the serial baseline.

#![forbid(unsafe_code)]

use hive_json::Json;
use std::process::ExitCode;

/// A speedup metric flattened out of the merged document.
struct SpeedupMetric {
    bench: String,
    name: String, // "section/metric"
    value: f64,
}

/// One allowlist line: a metric expected below 1.0 (`floor: None`) or
/// a raised enforcement floor from a `name >= threshold` line.
struct AllowEntry {
    name: String,
    floor: Option<f64>,
}

fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let entry = match line.split_once(">=") {
            Some((name, floor)) => {
                let floor: f64 = floor.trim().parse().map_err(|_| {
                    format!("allowlist line {}: bad threshold in `{line}`", lineno + 1)
                })?;
                if floor <= 1.0 {
                    return Err(format!(
                        "allowlist line {}: `{line}` does not raise the 1.0 floor",
                        lineno + 1
                    ));
                }
                AllowEntry { name: name.trim().to_string(), floor: Some(floor) }
            }
            None => AllowEntry { name: line.to_string(), floor: None },
        };
        entries.push(entry);
    }
    Ok(entries)
}

fn load_allowlist(path: &str) -> Result<Vec<AllowEntry>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read allowlist {path}: {e}"))?;
    parse_allowlist(&text)
}

/// Resolves a metric against the allowlist: whether a plain entry
/// expects it below 1.0, and the enforcement floor (1.0 unless raised;
/// the highest matching floor wins).
fn disposition(metric: &SpeedupMetric, allowlist: &[AllowEntry]) -> (bool, f64) {
    let bare = metric.name.rsplit('/').next().unwrap_or(&metric.name);
    let mut below = false;
    let mut floor = 1.0f64;
    for e in allowlist.iter().filter(|e| e.name == metric.name || e.name == bare) {
        match e.floor {
            Some(f) => floor = floor.max(f),
            None => below = true,
        }
    }
    (below, floor)
}

/// The gate's decision for one speedup metric.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    /// At or above 1.0.
    Pass,
    /// Below 1.0 but allowlisted as expected.
    Allowed,
    /// Below 1.0 but the host lacks the thread floor the metric needs
    /// to carry signal (the floor is attached).
    Exempt(u32),
    /// A genuine speedup regression.
    Fail,
}

/// Pure disposition logic, separated from IO so the exemption rules
/// are unit-testable: `*_t4_vs_t1_*` needs 4 host threads, the
/// concurrency ratios (`*_vs_r1_*` readers, `*_vs_f1_*` follower
/// replays, `*concurrent_read*`) need 2. `floor` is the enforcement
/// threshold — 1.0 normally, higher for `name >= threshold` entries.
fn judge(name: &str, value: f64, allowlisted: bool, host_threads: f64, floor: f64) -> Verdict {
    if value >= floor {
        return Verdict::Pass;
    }
    if allowlisted {
        return Verdict::Allowed;
    }
    if name.contains("_t4_vs_t1_") && host_threads < 4.0 {
        return Verdict::Exempt(4);
    }
    let needs_two = name.contains("_vs_r1_")
        || name.contains("_vs_f1_")
        || name.contains("concurrent_read");
    if needs_two && host_threads < 2.0 {
        return Verdict::Exempt(2);
    }
    Verdict::Fail
}

/// Collects every `*_speedup` metric and the largest recorded
/// `host_threads` out of the merged document.
fn collect(doc: &Json) -> (Vec<SpeedupMetric>, f64) {
    let mut speedups = Vec::new();
    let mut host_threads: f64 = 0.0;
    let Json::Obj(top) = doc else {
        return (speedups, host_threads);
    };
    let benches = top.iter().find_map(|(k, v)| (k == "benches").then_some(v));
    let Some(Json::Obj(benches)) = benches else {
        return (speedups, host_threads);
    };
    for (bench, metrics) in benches {
        let Json::Obj(metrics) = metrics else { continue };
        for (name, value) in metrics {
            let value = match value {
                Json::Float(f) => *f,
                Json::Int(i) => *i as f64,
                _ => continue,
            };
            if name.ends_with("/host_threads") || name == "host_threads" {
                host_threads = host_threads.max(value);
            }
            if name.contains("_speedup") {
                speedups.push(SpeedupMetric {
                    bench: bench.clone(),
                    name: name.clone(),
                    value,
                });
            }
        }
    }
    (speedups, host_threads)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(bench_json) = args.next() else {
        eprintln!("usage: bench_gate <BENCH_hive.json> [allowlist-file]");
        return ExitCode::FAILURE;
    };
    let allowlist = match args.next().map(|p| load_allowlist(&p)) {
        Some(Ok(a)) => a,
        Some(Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
        None => Vec::new(),
    };
    let text = match std::fs::read_to_string(&bench_json) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {bench_json}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: {bench_json} is not valid JSON: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let (speedups, host_threads) = collect(&doc);
    if speedups.is_empty() {
        eprintln!("bench_gate: no *_speedup metrics found in {bench_json}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for m in &speedups {
        let label = format!("{}:{}", m.bench, m.name);
        let (below, floor) = disposition(m, &allowlist);
        match judge(&m.name, m.value, below, host_threads, floor) {
            Verdict::Pass => println!("bench_gate: ok      {label} = {:.3}", m.value),
            Verdict::Allowed => {
                println!("bench_gate: allowed {label} = {:.3} (allowlist)", m.value);
            }
            Verdict::Exempt(need) => println!(
                "bench_gate: exempt  {label} = {:.3} (host_threads = {host_threads}, needs >= {need})",
                m.value
            ),
            Verdict::Fail => {
                println!("bench_gate: FAIL    {label} = {:.3} < {floor}", m.value);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("bench_gate: {failures} speedup regression(s)");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all {} speedup metrics pass", speedups.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{disposition, judge, parse_allowlist, SpeedupMetric, Verdict};

    fn metric(name: &str, value: f64) -> SpeedupMetric {
        SpeedupMetric { bench: "b".into(), name: name.into(), value }
    }

    #[test]
    fn at_or_above_one_always_passes() {
        assert_eq!(judge("apply_par_f2_vs_f1_speedup", 1.0, false, 1.0, 1.0), Verdict::Pass);
        assert_eq!(judge("anything_speedup", 3.7, false, 16.0, 1.0), Verdict::Pass);
    }

    #[test]
    fn allowlist_beats_every_exemption() {
        assert_eq!(judge("known_serial_speedup", 0.4, true, 16.0, 1.0), Verdict::Allowed);
        // Even a metric that would also qualify for a thread exemption
        // reports as allowlisted — the explicit escape hatch wins.
        assert_eq!(judge("reads_r2_vs_r1_speedup", 0.4, true, 1.0, 1.0), Verdict::Allowed);
    }

    #[test]
    fn t4_ratio_exempt_only_below_four_threads() {
        assert_eq!(judge("build_t4_vs_t1_speedup", 0.9, false, 2.0, 1.0), Verdict::Exempt(4));
        assert_eq!(judge("build_t4_vs_t1_speedup", 0.9, false, 4.0, 1.0), Verdict::Fail);
    }

    #[test]
    fn concurrency_ratios_exempt_only_below_two_threads() {
        for name in
            ["reads_r2_vs_r1_speedup", "apply_par_f2_vs_f1_speedup", "concurrent_read_speedup"]
        {
            assert_eq!(judge(name, 0.8, false, 1.0, 1.0), Verdict::Exempt(2), "{name} on 1 thread");
            assert_eq!(judge(name, 0.8, false, 2.0, 1.0), Verdict::Fail, "{name} on 2 threads");
        }
    }

    #[test]
    fn plain_regressions_fail_regardless_of_threads() {
        assert_eq!(judge("cache_vs_fresh_speedup", 0.99, false, 1.0, 1.0), Verdict::Fail);
        assert_eq!(judge("cache_vs_fresh_speedup", 0.99, false, 64.0, 1.0), Verdict::Fail);
    }

    #[test]
    fn raised_floor_fails_a_metric_that_merely_breaks_even() {
        assert_eq!(judge("idx_vs_scan_speedup", 4.2, false, 1.0, 5.0), Verdict::Fail);
        assert_eq!(judge("idx_vs_scan_speedup", 5.0, false, 1.0, 5.0), Verdict::Pass);
        assert_eq!(judge("idx_vs_scan_speedup", 17.3, false, 1.0, 5.0), Verdict::Pass);
    }

    #[test]
    fn allowlist_parses_plain_floor_and_comment_lines() {
        let entries = parse_allowlist(
            "# comment\nlint/ast_vs_token_speedup\nidx_vs_scan_speedup >= 5.0 # floor\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "lint/ast_vs_token_speedup");
        assert_eq!(entries[0].floor, None);
        assert_eq!(entries[1].name, "idx_vs_scan_speedup");
        assert_eq!(entries[1].floor, Some(5.0));
        assert!(parse_allowlist("x >= not_a_number").is_err());
        assert!(parse_allowlist("x >= 0.5").is_err(), "a floor below 1.0 is a below-entry in disguise");
    }

    #[test]
    fn disposition_matches_full_and_bare_names_and_keeps_highest_floor() {
        let entries = parse_allowlist(
            "serial_speedup\nidx_vs_scan_speedup >= 5.0\nindex/idx_vs_scan_speedup >= 7.0\n",
        )
        .unwrap();
        assert_eq!(disposition(&metric("bench/serial_speedup", 0.4), &entries), (true, 1.0));
        assert_eq!(disposition(&metric("index/idx_vs_scan_speedup", 9.0), &entries), (false, 7.0));
        assert_eq!(disposition(&metric("other/plain_speedup", 0.4), &entries), (false, 1.0));
    }
}
