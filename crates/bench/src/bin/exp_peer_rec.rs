//! Experiment E4 — peer recommendation quality: "Hive proposes five other
//! researchers that Zach may want to connect during the event".
//!
//! The simulator withholds a set of same-topic connection pairs
//! (`held_out_connections`) that never enter the database. A good
//! recommender should surface those future peers. We measure
//! hit-rate@k and MRR for the full blend, each ablated strategy, and two
//! baselines (profile-similarity-only, random).
//!
//! Expected shape: blend >= ppr-only, evidence-only > similarity-only >>
//! random; hit-rate grows with k.
//!
//! Run: `cargo run -p hive-bench --release --bin exp_peer_rec`

use hive_bench::{header, row};
use hive_core::ids::UserId;
use hive_core::peers::{PeerRecConfig, PeerStrategy};
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_rng::{Rng, SliceRandom};
use std::collections::{HashMap, HashSet};

fn main() {
    println!("E4 — peer recommendation vs planted future connections");
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db.clone());
    // Ground truth per user.
    let mut truth: HashMap<UserId, HashSet<UserId>> = HashMap::new();
    for &(a, b) in &world.held_out_connections {
        truth.entry(a).or_default().insert(b);
        truth.entry(b).or_default().insert(a);
    }
    let eval_users: Vec<UserId> = truth.keys().copied().collect();
    println!(
        "{} held-out pairs over {} users with >= 1 positive",
        world.held_out_connections.len(),
        eval_users.len()
    );
    let k = 5;

    // Ranked candidate list per strategy, per user.
    type Ranker<'a> = Box<dyn Fn(UserId) -> Vec<UserId> + 'a>;
    let strategies: Vec<(&str, Ranker)> = vec![
        (
            "blend (ppr + evidence)",
            Box::new(|u| {
                hive.recommend_peers(
                    u,
                    PeerRecConfig::defaults().with_top_k(k).with_strategy(PeerStrategy::Blend),
                )
                .into_iter()
                .map(|r| r.user)
                .collect()
            }),
        ),
        (
            "ppr only",
            Box::new(|u| {
                hive.recommend_peers(
                    u,
                    PeerRecConfig::defaults().with_top_k(k).with_strategy(PeerStrategy::PprOnly),
                )
                .into_iter()
                .map(|r| r.user)
                .collect()
            }),
        ),
        (
            "evidence only",
            Box::new(|u| {
                hive.recommend_peers(
                    u,
                    PeerRecConfig::defaults()
                        .with_top_k(k)
                        .with_strategy(PeerStrategy::EvidenceOnly),
                )
                .into_iter()
                .map(|r| r.user)
                .collect()
            }),
        ),
        (
            "content similarity only",
            Box::new(|u| hive.similar_peers(u, k).into_iter().map(|(v, _)| v).collect()),
        ),
        (
            "random",
            Box::new(|u| {
                let mut rng = Rng::seed_from_u64(u.0 as u64);
                let mut all: Vec<UserId> = hive
                    .db()
                    .user_ids()
                    .into_iter()
                    .filter(|&v| v != u && !hive.db().are_connected(u, v))
                    .collect();
                all.shuffle(&mut rng);
                all.truncate(k);
                all
            }),
        ),
    ];

    header(&format!("Hit-rate@{k} and MRR against held-out connections"));
    row(&[
        "strategy".into(),
        format!("hit-rate@{k}"),
        "mrr".into(),
        "users hit".into(),
    ]);
    for (name, rank) in &strategies {
        let mut hits = 0usize;
        let mut rr_sum = 0.0;
        for &u in &eval_users {
            let recs = rank(u);
            let positives = &truth[&u];
            if let Some(pos) = recs.iter().position(|v| positives.contains(v)) {
                hits += 1;
                rr_sum += 1.0 / (pos + 1) as f64;
            }
        }
        let n = eval_users.len().max(1);
        row(&[
            name.to_string(),
            format!("{:.3}", hits as f64 / n as f64),
            format!("{:.3}", rr_sum / n as f64),
            format!("{hits}/{n}"),
        ]);
    }

    header("Hit-rate vs k (blend strategy)");
    row(&["k".into(), "hit-rate".into()]);
    for kk in [1usize, 3, 5, 10] {
        let mut hits = 0usize;
        for &u in &eval_users {
            let recs: Vec<UserId> = hive
                .recommend_peers(
                    u,
                    PeerRecConfig::defaults().with_top_k(kk).with_strategy(PeerStrategy::Blend),
                )
                .into_iter()
                .map(|r| r.user)
                .collect();
            if recs.iter().any(|v| truth[&u].contains(v)) {
                hits += 1;
            }
        }
        row(&[
            kk.to_string(),
            format!("{:.3}", hits as f64 / eval_users.len().max(1) as f64),
        ]);
    }
    println!(
        "\nExpected shape: the knowledge-backed strategies dominate the\n\
         similarity-only and random baselines; hit-rate grows with k."
    );
}
