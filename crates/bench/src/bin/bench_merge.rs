//! Merges the per-bench JSON fragments produced under
//! `HIVE_BENCH_JSON_DIR` into one `BENCH_hive.json` document.
//!
//! Run: `bench_merge <fragment-dir> <output-file>` (normally invoked by
//! `tools/bench.sh`, not by hand).

#![forbid(unsafe_code)]

use hive_json::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(dir), Some(out)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_merge <fragment-dir> <output-file>");
        return ExitCode::FAILURE;
    };
    let mut fragments: Vec<(String, Json)> = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_merge: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().map_or(true, |e| e != "json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(doc) = Json::parse(&text) else {
            eprintln!("bench_merge: skipping unparseable {path:?}");
            continue;
        };
        let Json::Obj(fields) = doc else { continue };
        let mut bench = None;
        let mut metrics = None;
        for (k, v) in fields {
            match (k.as_str(), v) {
                ("bench", Json::Str(s)) => bench = Some(s),
                ("metrics", m @ Json::Obj(_)) => metrics = Some(m),
                _ => {}
            }
        }
        if let (Some(b), Some(m)) = (bench, metrics) {
            fragments.push((b, m));
        }
    }
    // Stable output regardless of directory iteration order.
    fragments.sort_by(|a, b| a.0.cmp(&b.0));
    let doc = Json::Obj(vec![
        ("unit".to_string(), Json::Str("ns_per_op (metrics ending _ns_per_op); plain ratios otherwise".to_string())),
        ("benches".to_string(), Json::Obj(fragments)),
    ]);
    if let Err(e) = std::fs::write(&out, doc.render() + "\n") {
        eprintln!("bench_merge: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_merge: wrote {out}");
    ExitCode::SUCCESS
}
