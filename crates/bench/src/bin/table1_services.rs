//! Table 1 regeneration: one demonstrated invocation and a latency row
//! per Hive service, grouped exactly as the paper's table groups them.
//!
//! Run: `cargo run -p hive-bench --release --bin table1_services`

use hive_bench::{fmt_us, header, mean, percentile, row, time_n};
use hive_core::clock::Timestamp;
use hive_core::discover::DiscoverConfig;
use hive_core::history::HistoryQuery;
use hive_core::peers::PeerRecConfig;
use hive_core::reports::ReportScope;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn main() {
    let cfg = SimConfig::medium();
    println!(
        "Table 1 — Hive service inventory (synthetic world: {} users, {} conferences, seed {})",
        cfg.users, cfg.conferences, cfg.seed
    );
    let world = WorldBuilder::new(cfg).build();
    let hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let zach = users[0];
    // Warm the knowledge network once so rows measure service time, not
    // the one-off derivation.
    let _ = hive.knowledge();

    let reps = 20;
    let mut results: Vec<(String, String, Vec<f64>, String)> = Vec::new();
    let mut bench = |group: &str, service: &str, result: String, samples: Vec<f64>| {
        results.push((group.to_string(), service.to_string(), samples, result));
    };

    // --- Concept map and personalization services -------------------------
    let docs: Vec<String> = hive
        .db()
        .paper_ids()
        .iter()
        .take(10)
        .map(|&p| hive.db().get_paper(p).unwrap().text())
        .collect();
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let map = hive.bootstrap_concepts("uploads", &doc_refs);
    bench(
        "concept-map",
        "bootstrap concept map from documents",
        format!("{} concepts, {} relations", map.concept_count(), map.relation_count()),
        time_n(reps, || {
            std::hint::black_box(hive.bootstrap_concepts("uploads", &doc_refs));
        }),
    );
    let ctx = hive.activity_context(zach);
    bench(
        "concept-map",
        "personal activity context",
        format!("{} seeds, {} terms", ctx.seeds.len(), ctx.terms.len()),
        time_n(reps, || {
            std::hint::black_box(hive.activity_context(zach));
        }),
    );

    // --- Peer network services ---------------------------------------------
    let recs = hive.recommend_peers(zach, PeerRecConfig::default());
    bench(
        "peer-network",
        "recommend peers (top-5 + sessions)",
        format!(
            "top: {:?} (score {:.3})",
            recs.first().map(|r| r.user),
            recs.first().map(|r| r.score).unwrap_or(0.0)
        ),
        time_n(reps, || {
            std::hint::black_box(hive.recommend_peers(zach, PeerRecConfig::default()));
        }),
    );
    let sims = hive.similar_peers(zach, 5);
    bench(
        "peer-network",
        "locate similar peers",
        format!("{} similar peers", sims.len()),
        time_n(reps, || {
            std::hint::black_box(hive.similar_peers(zach, 5));
        }),
    );
    let preds = hive.predict_sessions(users[1], 3);
    bench(
        "peer-network",
        "predict peer's likely sessions",
        format!("{} sessions predicted", preds.len()),
        time_n(reps, || {
            std::hint::black_box(hive.predict_sessions(users[1], 3));
        }),
    );

    // --- Discovery / recommendation / preview -------------------------------
    let hits = hive.search(zach, "tensor stream sketch", DiscoverConfig::default());
    bench(
        "discovery",
        "context-aware search + previews",
        format!("{} hits, top: {}", hits.len(), hits.first().map(|h| h.title.as_str()).unwrap_or("-")),
        time_n(reps, || {
            std::hint::black_box(hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
        }),
    );
    let rec_res = hive.recommend_resources(zach, DiscoverConfig::default());
    bench(
        "discovery",
        "contextual resource recommendation",
        format!("{} resources", rec_res.len()),
        time_n(reps, || {
            std::hint::black_box(hive.recommend_resources(zach, DiscoverConfig::default()));
        }),
    );
    let cf = hive.collaborative_recommendations(zach, 5);
    bench(
        "discovery",
        "collaborative filtering",
        format!("{} CF recommendations", cf.len()),
        time_n(reps, || {
            std::hint::black_box(hive.collaborative_recommendations(zach, 5));
        }),
    );
    let exp = hive.explain_relationship(users[0], users[1]);
    bench(
        "discovery",
        "relationship discovery + explanation",
        format!("{} evidence items, {} paths", exp.items.len(), exp.paths.len()),
        time_n(5, || {
            std::hint::black_box(hive.explain_relationship(users[0], users[1]));
        }),
    );
    let comms = hive.discover_communities();
    bench(
        "discovery",
        "community discovery",
        format!("{} communities (Q={:.2})", comms.count(), comms.modularity),
        time_n(reps, || {
            std::hint::black_box(hive.discover_communities());
        }),
    );
    let report = hive.update_report(&ReportScope::Platform, Timestamp(0), Timestamp(u64::MAX), 8);
    bench(
        "discovery",
        "summarized update report (AlphaSum)",
        format!(
            "{} events -> {} rows ({:.0}% info)",
            report.total_events,
            report.summary.rows.len(),
            report.summary.retained * 100.0
        ),
        time_n(5, || {
            std::hint::black_box(hive.update_report(
                &ReportScope::Platform,
                Timestamp(0),
                Timestamp(u64::MAX),
                8,
            ));
        }),
    );

    let first_paper = hive.db().paper_ids()[0];
    let summary = hive
        .summarize_resource(zach, hive_core::discover::Resource::Paper(first_paper), 2)
        .expect("paper text");
    bench(
        "discovery",
        "contextual document summarization",
        format!("{} summary sentences", summary.sentences.len()),
        time_n(reps, || {
            std::hint::black_box(hive.summarize_resource(
                zach,
                hive_core::discover::Resource::Paper(first_paper),
                2,
            ));
        }),
    );

    let since = Timestamp(0);
    let hl = hive.highlights(zach, since, 5);
    bench(
        "discovery",
        "context-ranked update highlights",
        format!("{} highlights", hl.len()),
        time_n(reps, || {
            std::hint::black_box(hive.highlights(zach, since, 5));
        }),
    );

    // --- Personal activity history ------------------------------------------
    let q = HistoryQuery::new().with_actors(vec![zach]).limit(20);
    let hist = hive.search_history(&q, Some(zach));
    bench(
        "history",
        "context-ranked history search",
        format!("{} hits", hist.len()),
        time_n(reps, || {
            std::hint::black_box(hive.search_history(&q, Some(zach)));
        }),
    );
    let tl = hive.timeline(&[], 100);
    bench(
        "history",
        "activity timeline buckets",
        format!("{} buckets", tl.len()),
        time_n(reps, || {
            std::hint::black_box(hive.timeline(&[], 100));
        }),
    );

    // --- Print ---------------------------------------------------------------
    header("Table 1: services, demonstrated results, and latencies");
    row(&[
        "service".into(),
        "group".into(),
        "p50".into(),
        "p95".into(),
        "mean".into(),
    ]);
    for (group, service, samples, result) in &results {
        row(&[
            service.clone(),
            group.clone(),
            fmt_us(percentile(samples, 50.0)),
            fmt_us(percentile(samples, 95.0)),
            fmt_us(mean(samples)),
        ]);
        println!("    -> {result}");
    }
    println!("\n{} services demonstrated across the 4 Table 1 groups.", results.len());
}
