//! Experiment E3 — the AlphaSum claim (paper ref \[13\]): size-constrained
//! table summarization "preserves maximal information while minimizing
//! the footprint".
//!
//! Measures information retained vs summary budget k for greedy,
//! exact-DP (on small inputs), and random-merge baselines, plus greedy
//! runtime scaling with table size.
//!
//! Expected shape: exact >= greedy >> random at every k; retained
//! information rises monotonically with k; greedy stays near exact.
//!
//! Run: `cargo run -p hive-bench --release --bin exp_alphasum`

use hive_bench::{fmt_us, header, row, time_once};
use hive_core::clock::Timestamp;
use hive_core::reports::{activity_table, ReportScope};
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::DbIndexes;
use hive_rng::Rng;
use hive_text::summarize::{summarize_table, Strategy, SummaryConfig, Table};

/// Subsamples a table's rows to at most `n` (keeps lattices).
fn sample_rows(table: &Table, n: usize, seed: u64) -> Table {
    let mut t = Table::new(table.columns.clone(), table.lattices.clone());
    let mut rng = Rng::seed_from_u64(seed);
    let mut rows = table.rows.clone();
    while rows.len() > n {
        let i = rng.gen_range(0..rows.len());
        rows.swap_remove(i);
    }
    for r in rows {
        t.push_row(r);
    }
    t
}

fn main() {
    println!("E3 — AlphaSum: information retained vs summary size");
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let idx = DbIndexes::build(&world.db);
    let full = activity_table(
        &world.db,
        &idx,
        &ReportScope::Platform,
        Timestamp(0),
        Timestamp(u64::MAX),
    );
    println!("source: platform activity table with {} rows", full.rows.len());

    header("Retained information vs budget k (greedy vs random; 60-row sample)");
    let table = sample_rows(&full, 60, 1);
    row(&[
        "k".into(),
        "greedy retained".into(),
        "random retained".into(),
        "greedy loss".into(),
        "random loss".into(),
    ]);
    for k in [1usize, 2, 4, 8, 16, 32] {
        let greedy =
            summarize_table(&table, SummaryConfig { max_rows: k, strategy: Strategy::Greedy });
        // Average random over seeds.
        let mut r_loss = 0.0;
        let mut r_ret = 0.0;
        let seeds = 5;
        for s in 0..seeds {
            let r = summarize_table(
                &table,
                SummaryConfig { max_rows: k, strategy: Strategy::RandomMerge(s) },
            );
            r_loss += r.loss;
            r_ret += r.retained;
        }
        row(&[
            k.to_string(),
            format!("{:.1}%", greedy.retained * 100.0),
            format!("{:.1}%", r_ret / seeds as f64 * 100.0),
            format!("{:.2}", greedy.loss),
            format!("{:.2}", r_loss / seeds as f64),
        ]);
    }

    header("Greedy vs exact-DP on a tiny table (exact is exponential)");
    let tiny = sample_rows(&full, 8, 2);
    row(&["k".into(), "exact loss".into(), "greedy loss".into(), "gap".into()]);
    for k in [1usize, 2, 3, 4] {
        let exact = summarize_table(&tiny, SummaryConfig { max_rows: k, strategy: Strategy::Exact });
        let greedy =
            summarize_table(&tiny, SummaryConfig { max_rows: k, strategy: Strategy::Greedy });
        row(&[
            k.to_string(),
            format!("{:.3}", exact.loss),
            format!("{:.3}", greedy.loss),
            format!("{:+.3}", greedy.loss - exact.loss),
        ]);
    }

    header("Greedy runtime vs table size (k = 8)");
    row(&["rows".into(), "time".into()]);
    for n in [50usize, 100, 200, 400] {
        let t = sample_rows(&full, n, 3);
        let (_, us) = time_once(|| {
            summarize_table(&t, SummaryConfig { max_rows: 8, strategy: Strategy::Greedy })
        });
        row(&[t.rows.len().to_string(), fmt_us(us)]);
    }
    println!(
        "\nExpected shape: retained information grows with k; greedy tracks the\n\
         exact optimum closely and beats random merging at every budget."
    );
}
