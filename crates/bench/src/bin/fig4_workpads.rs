//! Figure 4 regeneration: workpads as switchable contexts — the same
//! query issued under two different active workpads produces divergent
//! rankings, and the divergence (Kendall tau) shrinks as the pads'
//! content overlap grows.
//!
//! Run: `cargo run -p hive-bench --release --bin fig4_workpads`

use hive_bench::{header, kendall_tau, overlap_fraction, row};
use hive_core::discover::DiscoverConfig;
use hive_core::model::WorkpadItem;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn main() {
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let mut hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let zach = users[0];
    println!("Figure 4 — workpads as context for search and recommendation");

    // Build two topically opposed workpads from planted topics 0 and 1.
    let topic_a_sessions: Vec<_> = world
        .session_topics
        .iter()
        .filter(|(_, t)| *t == 0)
        .map(|(s, _)| *s)
        .take(2)
        .collect();
    let topic_b_sessions: Vec<_> = world
        .session_topics
        .iter()
        .filter(|(_, t)| *t == 1)
        .map(|(s, _)| *s)
        .take(2)
        .collect();
    let pad_a = hive.create_workpad(zach, "tensors pad").expect("valid");
    for &s in &topic_a_sessions {
        hive.workpad_add(zach, pad_a, WorkpadItem::Session(s)).expect("valid");
    }
    let pad_b = hive.create_workpad(zach, "graphs pad").expect("valid");
    for &s in &topic_b_sessions {
        hive.workpad_add(zach, pad_b, WorkpadItem::Session(s)).expect("valid");
    }

    let query = "scalable processing";
    let run = |hive: &Hive| -> Vec<String> {
        hive.search(zach, query, DiscoverConfig::defaults().with_include_users(false).with_top_k(15))
            .into_iter()
            .map(|h| h.resource.iri())
            .collect()
    };
    hive.activate_workpad(zach, pad_a).expect("valid");
    let rank_a = run(&hive);
    let peers_a: Vec<_> = hive
        .recommend_peers(zach, PeerRecConfig::default())
        .into_iter()
        .map(|r| r.user)
        .collect();
    hive.activate_workpad(zach, pad_b).expect("valid");
    let rank_b = run(&hive);
    let peers_b: Vec<_> = hive
        .recommend_peers(zach, PeerRecConfig::default())
        .into_iter()
        .map(|r| r.user)
        .collect();

    header(&format!("Same query (\"{query}\"), two active workpads"));
    row(&["rank".into(), "pad A (topic 0)".into(), "pad B (topic 1)".into()]);
    for i in 0..rank_a.len().min(rank_b.len()).min(8) {
        row(&[
            (i + 1).to_string(),
            rank_a[i].clone(),
            rank_b[i].clone(),
        ]);
    }
    println!(
        "\nresource-ranking overlap between contexts: {:.3}; tau on shared items: {:.3}",
        overlap_fraction(&rank_a, &rank_b),
        kendall_tau(&rank_a, &rank_b)
    );
    println!(
        "peer-recommendation overlap: {} of {}",
        peers_a.iter().filter(|p| peers_b.contains(p)).count(),
        peers_a.len().max(peers_b.len())
    );

    // Divergence vs pad overlap: morph pad B toward pad A item by item.
    header("Rank correlation vs workpad overlap (pad B morphs into pad A)");
    row(&["shared items".into(), "ranking overlap".into(), "kendall tau".into()]);
    let mut shared = 0usize;
    loop {
        hive.activate_workpad(zach, pad_b).expect("valid");
        let r = run(&hive);
        row(&[
            shared.to_string(),
            format!("{:.3}", overlap_fraction(&rank_a, &r)),
            format!("{:.3}", kendall_tau(&rank_a, &r)),
        ]);
        if shared >= topic_a_sessions.len() {
            break;
        }
        // Swap one topic-B item for a topic-A item.
        if let Some(&out) = topic_b_sessions.get(shared) {
            let _ = hive
                .workpad_remove(zach, pad_b, &WorkpadItem::Session(out));
        }
        hive.workpad_add(zach, pad_b, WorkpadItem::Session(topic_a_sessions[shared]))
            .expect("valid");
        shared += 1;
    }
    println!("\nExpected shape: overlap (and tau on the growing shared set) rises as the pads converge.");
}
