//! Experiment E1 — the SCENT claim (paper ref \[15\]): "Through the use of
//! randomized tensor ensembles, SCENT is able to encode the observed
//! tensor streams in the form of compact descriptors and detect
//! significant changes in the underlying structure faster and more
//! accurately than the other methods."
//!
//! The cost model is the *streaming monitoring* regime: each epoch
//! arrives as a sparse set of cell deltas. SCENT keeps one `r`-float
//! descriptor per epoch, updated incrementally in `O(|delta| * r)` and
//! compared in `O(r)`; the full-diff baseline must materialize whole
//! epochs (`O(nnz)` memory each) and compare in `O(nnz)`; the CP-ALS
//! baseline re-decomposes every epoch.
//!
//! Expected shape: SCENT's per-epoch monitoring cost and memory are far
//! below CP-ALS and below full-diff once deltas are sparse relative to
//! the tensor; detection F1 is comparable for visible changes and
//! degrades first for the sketch as magnitude shrinks.
//!
//! Run: `cargo run -p hive-bench --release --bin exp_scent`

use hive_bench::{fmt_us, header, row, time_once};
use hive_rng::Rng;
use hive_scent::{
    cp_als, detect_changes, f1_score, EpochScore, SketchConfig, SparseTensor, TensorSketch,
};

/// A stream represented as (initial tensor, per-epoch delta lists).
struct DeltaStream {
    shape: Vec<usize>,
    epochs: Vec<SparseTensor>,
    deltas: Vec<Vec<(Vec<usize>, f64)>>,
}

/// Builds `epochs` snapshots over a `dim x dim x 3` tensor: a static
/// background, a small per-epoch jitter touching `jitter_frac` of cells,
/// and a dense block of `magnitude` planted at `change_at` epochs.
fn planted_stream(
    dim: usize,
    epochs: usize,
    change_at: &[usize],
    magnitude: f64,
    jitter_frac: f64,
    seed: u64,
) -> DeltaStream {
    let shape = vec![dim, dim, 3];
    let mut rng = Rng::seed_from_u64(seed);
    let nnz = dim * dim / 2;
    let mut current = SparseTensor::new(shape.clone());
    for _ in 0..nnz {
        let idx = vec![rng.gen_range(0..dim), rng.gen_range(0..dim), rng.gen_range(0..3)];
        current.set(&idx, rng.gen_range(0.2..1.0));
    }
    let block = (dim / 4).max(2);
    let mut snapshots = Vec::with_capacity(epochs);
    let mut deltas: Vec<Vec<(Vec<usize>, f64)>> = Vec::with_capacity(epochs);
    snapshots.push(current.clone());
    deltas.push(Vec::new());
    for e in 1..epochs {
        let mut delta: Vec<(Vec<usize>, f64)> = Vec::new();
        // Sparse jitter.
        let jitters = ((nnz as f64) * jitter_frac) as usize;
        for _ in 0..jitters {
            let idx = vec![rng.gen_range(0..dim), rng.gen_range(0..dim), rng.gen_range(0..3)];
            delta.push((idx, rng.gen_range(-0.05..0.05)));
        }
        // Planted structural shift: block appears this epoch, vanishes next.
        if change_at.contains(&e) {
            for i in 0..block {
                for j in 0..block {
                    delta.push((vec![i, j, 0], magnitude));
                }
            }
        }
        if change_at.contains(&(e - 1)) {
            for i in 0..block {
                for j in 0..block {
                    delta.push((vec![i, j, 0], -magnitude));
                }
            }
        }
        for (idx, dv) in &delta {
            current.add(idx, *dv);
        }
        snapshots.push(current.clone());
        deltas.push(delta);
    }
    DeltaStream { shape, epochs: snapshots, deltas }
}

/// Per-backend monitoring run: returns (scores, total time us, resident
/// floats held for monitoring state).
fn run_sketch(stream: &DeltaStream, r: usize, seed: u64) -> (Vec<EpochScore>, f64, usize) {
    let cfg = SketchConfig { measurements: r, seed };
    let (scores, us) = time_once(|| {
        let mut scores = Vec::new();
        let mut prev = TensorSketch::compute(&stream.epochs[0], cfg);
        for (e, delta) in stream.deltas.iter().enumerate().skip(1) {
            let mut cur = prev.clone();
            for (idx, dv) in delta {
                cur.apply_delta(idx, *dv);
            }
            scores.push(EpochScore { epoch: e, score: prev.estimate_distance(&cur) });
            prev = cur;
        }
        scores
    });
    // State: two descriptors of r floats.
    (scores, us, 2 * r)
}

fn run_full_diff(stream: &DeltaStream) -> (Vec<EpochScore>, f64, usize) {
    let (scores, us) = time_once(|| {
        stream
            .epochs
            .windows(2)
            .enumerate()
            .map(|(i, w)| EpochScore { epoch: i + 1, score: w[0].frobenius_distance(&w[1]) })
            .collect::<Vec<_>>()
    });
    // State: two full epochs (value + 3 coords per nnz).
    let nnz = stream.epochs[0].nnz();
    (scores, us, 2 * nnz * 4)
}

fn run_cp(stream: &DeltaStream, rank: usize) -> (Vec<EpochScore>, f64, usize) {
    let (scores, us) = time_once(|| {
        let models: Vec<_> = stream.epochs.iter().map(|t| cp_als(t, rank, 6, 3)).collect();
        stream
            .epochs
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let mut coords: Vec<[usize; 3]> = w[0]
                    .iter()
                    .chain(w[1].iter())
                    .map(|(idx, _)| [idx[0], idx[1], idx[2]])
                    .collect();
                coords.sort_unstable();
                coords.dedup();
                EpochScore {
                    epoch: i + 1,
                    score: models[i].reconstruction_distance(&models[i + 1], &coords),
                }
            })
            .collect::<Vec<_>>()
    });
    let dims: usize = stream.shape.iter().sum();
    (scores, us, 2 * dims * rank)
}

fn main() {
    println!("E1 — SCENT vs baselines: streaming change detection on tensor streams");
    let epochs = 24;
    let change_at = vec![12, 18];
    let truth: Vec<usize> = change_at.iter().flat_map(|&c| [c, c + 1]).collect();
    let threshold = 5.0;
    let warmup = 5;

    header("Per-stream monitoring cost, state size, and F1 vs tensor size");
    println!("(magnitude 2.0, 5% jitter, r = 256, 24 epochs)");
    row(&[
        "backend".into(),
        "dim".into(),
        "monitor time".into(),
        "state (floats)".into(),
        "f1".into(),
    ]);
    type RunResult = (Vec<EpochScore>, f64, usize);
    for dim in [20usize, 40, 80, 160] {
        let stream = planted_stream(dim, epochs, &change_at, 2.0, 0.05, 7);
        let runs: Vec<(&str, RunResult)> = vec![
            ("scent-sketch", run_sketch(&stream, 256, 3)),
            ("cp-als", run_cp(&stream, 3)),
            ("full-diff", run_full_diff(&stream)),
        ];
        for (name, (scores, us, state)) in runs {
            let hits = detect_changes(&scores, threshold, warmup);
            let (_, _, f1) = f1_score(&hits, &truth, 1);
            row(&[
                name.to_string(),
                dim.to_string(),
                fmt_us(us),
                state.to_string(),
                format!("{f1:.2}"),
            ]);
        }
    }

    header("Ablation: ensemble size r (dim 80)");
    row(&["r".into(), "monitor time".into(), "state (floats)".into(), "f1".into()]);
    let stream = planted_stream(80, epochs, &change_at, 2.0, 0.05, 11);
    for r in [8usize, 32, 128, 512, 2048] {
        let (scores, us, state) = run_sketch(&stream, r, 5);
        let hits = detect_changes(&scores, threshold, warmup);
        let (_, _, f1) = f1_score(&hits, &truth, 1);
        row(&[r.to_string(), fmt_us(us), state.to_string(), format!("{f1:.2}")]);
    }

    header("Sensitivity: change magnitude (dim 60, r = 256, averaged over 3 seeds)");
    row(&["magnitude".into(), "sketch f1".into(), "full-diff f1".into()]);
    for magnitude in [0.002f64, 0.005, 0.01, 0.05, 0.2] {
        let mut f_sketch = 0.0;
        let mut f_full = 0.0;
        let seeds = 3;
        for s in 0..seeds {
            let stream = planted_stream(60, epochs, &change_at, magnitude, 0.05, 13 + s);
            let (scores, _, _) = run_sketch(&stream, 256, 9 + s);
            let hits = detect_changes(&scores, threshold, warmup);
            f_sketch += f1_score(&hits, &truth, 1).2;
            let (scores, _, _) = run_full_diff(&stream);
            let hits = detect_changes(&scores, threshold, warmup);
            f_full += f1_score(&hits, &truth, 1).2;
        }
        row(&[
            format!("{magnitude:.3}"),
            format!("{:.2}", f_sketch / seeds as f64),
            format!("{:.2}", f_full / seeds as f64),
        ]);
    }
    println!(
        "\nExpected shape: SCENT monitors with a constant-size descriptor and\n\
         delta-proportional updates — far below CP-ALS cost and below full-diff\n\
         state; F1 matches the exact baseline for visible changes and degrades\n\
         first as the magnitude approaches the jitter floor."
    );
}
