//! Figure 1 regeneration: the platform state behind the screenshot —
//! for one simulated conference edition, the session list with check-in
//! counts, uploaded presentations, Q&A traffic, the hashtag bridge, and
//! active-user statistics (what the MM'11 screen rendered).
//!
//! Run: `cargo run -p hive-bench --release --bin fig1_platform`

use hive_bench::{header, row};
use hive_core::clock::Timestamp;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn main() {
    let cfg = SimConfig::medium();
    let world = WorldBuilder::new(cfg).build();
    let hive = Hive::new(world.db);
    let db = hive.db();
    let conf = world.conferences[0];
    let edition = db.get_conference(conf).expect("exists");
    println!(
        "Figure 1 — Hive platform view for {} ({} registered users)",
        edition.display_name(),
        db.user_ids().len()
    );

    header("Sessions (with check-ins, talks, and discussion traffic)");
    row(&[
        "session".into(),
        "track".into(),
        "check-ins".into(),
        "talks".into(),
        "questions".into(),
        "tweets".into(),
    ]);
    let mut total_checkins = 0;
    let mut total_questions = 0;
    for &s in db.sessions_of(conf) {
        let sess = db.get_session(s).expect("exists");
        let checkins = db.checkins_in(s).len();
        let talks = db.presentations_in(s).len();
        let questions: usize = db
            .presentations_in(s)
            .iter()
            .map(|&p| db.questions_on(hive_core::model::QaTarget::Presentation(p)).len())
            .sum::<usize>()
            + db.questions_on(hive_core::model::QaTarget::Session(s)).len();
        let tweets = db.tweets_in(s).len();
        total_checkins += checkins;
        total_questions += questions;
        row(&[
            sess.title.chars().take(34).collect(),
            sess.track.clone(),
            checkins.to_string(),
            talks.to_string(),
            questions.to_string(),
            tweets.to_string(),
        ]);
    }

    header("Attendance and activity");
    let attendees = db.attendees(conf);
    println!("attendees: {}", attendees.len());
    println!("total check-ins: {total_checkins}");
    println!("total questions: {total_questions}");
    println!("activity log records: {}", db.activity_log().len());

    header("Most active researchers (by logged events)");
    let mut activity: Vec<(String, usize)> = db
        .user_ids()
        .into_iter()
        .map(|u| {
            (
                db.get_user(u).expect("exists").name.clone(),
                db.activities_of(u).len(),
            )
        })
        .collect();
    activity.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    row(&["researcher".into(), "events".into()]);
    for (name, n) in activity.into_iter().take(8) {
        row(&[name, n.to_string()]);
    }

    header("Trending sessions (weighted live activity)");
    row(&["session".into(), "heat".into()]);
    for (s, heat) in hive.trending_sessions(Timestamp(0), Timestamp(u64::MAX), 5) {
        row(&[
            db.get_session(s).expect("exists").title.chars().take(34).collect(),
            format!("{heat:.1}"),
        ]);
    }

    header("Live session ticker sample (first session with traffic)");
    for &s in db.sessions_of(conf) {
        let ticker = hive.session_ticker(s, Timestamp(0));
        if !ticker.is_empty() {
            for line in ticker.into_iter().take(6) {
                println!("  {line}");
            }
            break;
        }
    }
}
