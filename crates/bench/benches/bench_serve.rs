//! Epoch-snapshot serving benchmarks: reads/sec with 1/2/4 concurrent
//! reader tasks sharing one `ReadHandle`, and the writer's
//! epoch-publish latency for activity-only (delta-patch) and
//! graph-touching publishes.
//!
//! Run: `cargo bench -p hive-bench --bench bench_serve`
//!
//! The reader fan-out uses `hive_par::force_workers` so the pool spawns
//! exactly N workers even on a small host; on a single-core machine the
//! multi-reader ratios measure scheduling overhead, not parallelism, so
//! `bench_gate` exempts them when the recorded `host_threads` is < 2.

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_once, write_json_fragment,
};
use hive_core::discover::DiscoverConfig;
use hive_core::serve::{Epoch, HiveServer};
use hive_core::sim::{SimConfig, WorldBuilder};

fn server() -> HiveServer {
    HiveServer::new(WorldBuilder::new(SimConfig::medium()).build().db)
}

/// One serving "read": the hottest read service plus a cheap ranking,
/// all answered from the pinned epoch without touching any lock.
fn read_battery(epoch: &Epoch) {
    let users = epoch.db().user_ids();
    let u = users[0];
    std::hint::black_box(epoch.search(u, "tensor stream sketch", DiscoverConfig::default()));
    std::hint::black_box(epoch.similar_peers(u, 5));
}

/// Reads/sec with N reader tasks hammering one shared `ReadHandle`.
fn bench_reads() {
    header("serve_reads");
    report_header();
    let s = server();
    let handle = s.reader();
    read_battery(&handle.epoch()); // warm the world's caches once
    let per_task = iters(25, 3);
    let trials = iters(3, 1);
    let mut rate_r1 = 0.0;
    for n in [1usize, 2, 4] {
        let roles: Vec<usize> = (0..n).collect();
        let run = || {
            hive_par::force_workers(n, || {
                hive_par::par_tasks(&roles, |_, _| {
                    for _ in 0..per_task {
                        read_battery(&handle.epoch());
                    }
                });
            })
        };
        run(); // unmeasured warmup round at this fan-out
        let mut per_read = Vec::with_capacity(trials);
        for _ in 0..trials {
            let ((), us) = time_once(run);
            per_read.push(us / (n * per_task) as f64);
        }
        report(&format!("readers_{n}"), &per_read);
        let rate = 1e6 / mean(&per_read);
        metric(&format!("reads_per_sec_r{n}"), rate);
        if n == 1 {
            rate_r1 = rate;
        } else {
            metric(&format!("reads_r{n}_vs_r1_speedup"), rate / rate_r1);
        }
        if n == 4 {
            metric("concurrent_read_speedup", rate / rate_r1);
        }
    }
    metric("host_threads", std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64));
}

/// Writer-side publish latency: activity-only mutations patch the
/// knowledge network forward through the delta log, graph-touching
/// mutations additionally refresh the relationship snapshot.
fn bench_publish() {
    header("serve_publish");
    report_header();
    let mut s = server();
    let users = s.hive().db().user_ids();
    let papers = s.hive().db().paper_ids();
    let n = iters(20, 3);
    let mut activity = Vec::with_capacity(n);
    for i in 0..n {
        s.writer().advance_clock(1);
        s.writer().view_paper(users[i % users.len()], papers[i % papers.len()]).ok();
        let ((), us) = time_once(|| {
            std::hint::black_box(s.publish());
        });
        activity.push(us);
    }
    report("publish_activity", &activity);
    let mut graph = Vec::with_capacity(n);
    for i in 0..n {
        s.writer().advance_clock(1);
        s.writer().follow(users[i % users.len()], users[(i + 7) % users.len()]).ok();
        let ((), us) = time_once(|| {
            std::hint::black_box(s.publish());
        });
        graph.push(us);
    }
    report("publish_graph_touch", &graph);
}

fn main() {
    println!("bench_serve — epoch-snapshot serving: concurrent reads and publish latency");
    bench_reads();
    bench_publish();
    write_json_fragment("bench_serve");
}
