//! E2 microbenchmarks: truncated diffusion, indexed vs recomputed impact
//! queries, and invalidation cost under updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hive_graph::{
    diffuse, DiffusionParams, Graph, ImpactIndex, ImpactQueryEngine, NodeId, RecomputeEngine,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 1..n {
        for _ in 0..4.min(i) {
            let j = rng.gen_range(0..i);
            g.add_edge(ids[i], ids[j], rng.gen_range(0.1..1.0));
            g.add_edge(ids[j], ids[i], rng.gen_range(0.1..1.0));
        }
    }
    g
}

fn bench_diffusion(c: &mut Criterion) {
    let g = random_graph(2_000, 1);
    let mut group = c.benchmark_group("ini_diffusion");
    for eps in [1e-2f64, 1e-4] {
        let params = DiffusionParams { alpha: 0.5, epsilon: eps };
        group.bench_with_input(BenchmarkId::from_parameter(format!("{eps:.0e}")), &eps, |b, _| {
            b.iter(|| diffuse(&g, NodeId(3), params));
        });
    }
    group.finish();
}

fn bench_query_paths(c: &mut Criterion) {
    let g = random_graph(2_000, 2);
    let params = DiffusionParams { alpha: 0.5, epsilon: 1e-3 };
    let mut base = RecomputeEngine::new(g.clone(), params);
    let mut idx = ImpactIndex::new(g, params);
    idx.build_full();
    c.bench_function("ini_query_recompute", |b| {
        b.iter(|| base.impact(NodeId(7)));
    });
    c.bench_function("ini_query_indexed_hit", |b| {
        b.iter(|| idx.impact(NodeId(7)));
    });
}

fn bench_update(c: &mut Criterion) {
    let g = random_graph(2_000, 3);
    let params = DiffusionParams { alpha: 0.5, epsilon: 1e-3 };
    c.bench_function("ini_update_with_invalidation", |b| {
        b.iter_batched(
            || {
                let mut idx = ImpactIndex::new(g.clone(), params);
                // Warm a slice of the cache.
                for s in 0..50u32 {
                    idx.impact(NodeId(s));
                }
                idx
            },
            |mut idx| {
                idx.add_edge(NodeId(1), NodeId(2), 0.5);
                idx
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group!(benches, bench_diffusion, bench_query_paths, bench_update);
criterion_main!(benches);
