//! E2 microbenchmarks: truncated diffusion, indexed vs recomputed impact
//! queries, and invalidation cost under updates.
//!
//! Run: `cargo bench -p hive-bench --bench bench_ini`

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_n, time_once, write_json_fragment,
};
use hive_graph::{
    diffuse, personalized_pagerank_csr, CsrView, DiffusionParams, DynPprConfig, DynamicPpr, Graph,
    ImpactIndex, ImpactQueryEngine, NodeId, PprConfig, RecomputeEngine,
};
use hive_rng::Rng;
use std::collections::HashMap;

fn random_graph(n: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 1..n {
        for _ in 0..4.min(i) {
            let j = rng.gen_range(0..i);
            g.add_edge(ids[i], ids[j], rng.gen_range(0.1..1.0));
            g.add_edge(ids[j], ids[i], rng.gen_range(0.1..1.0));
        }
    }
    g
}

fn bench_diffusion() {
    header("ini_diffusion");
    report_header();
    let g = random_graph(2_000, 1);
    for eps in [1e-2f64, 1e-4] {
        let params = DiffusionParams { alpha: 0.5, epsilon: eps };
        let samples = time_n(iters(20, 3), || {
            std::hint::black_box(diffuse(&g, NodeId(3), params));
        });
        report(&format!("eps_{eps:.0e}"), &samples);
    }
}

fn bench_ppr_scaling() {
    header("ini_ppr");
    report_header();
    // Big enough to clear the hive-par edge-count gate (32_768 edges),
    // so the pool really engages: ~160k directed edges.
    let g = random_graph(20_000, 4);
    let csr = CsrView::build(&g);
    let mut seeds = HashMap::new();
    seeds.insert(NodeId(3), 1.0);
    let cfg = PprConfig::default();
    let n = iters(10, 3);
    // Interleave one cold/serial/parallel sample per round (the PR-5
    // bench_store bias fix) so drift in machine state lands evenly on
    // all three variants instead of biasing whichever block ran last.
    let mut cold = Vec::new();
    let mut serial = Vec::new();
    let mut par = Vec::new();
    std::hint::black_box(personalized_pagerank_csr(&csr, &seeds, cfg)); // warmup
    for _ in 0..n {
        let (_, us) = time_once(|| {
            std::hint::black_box(personalized_pagerank_csr(&CsrView::build(&g), &seeds, cfg));
        });
        cold.push(us);
        let (_, us) = time_once(|| {
            hive_par::with_threads(1, || {
                std::hint::black_box(personalized_pagerank_csr(&csr, &seeds, cfg));
            });
        });
        serial.push(us);
        let (_, us) = time_once(|| {
            hive_par::with_threads(4, || {
                std::hint::black_box(personalized_pagerank_csr(&csr, &seeds, cfg));
            });
        });
        par.push(us);
    }
    report("cold_rebuild_csr", &cold);
    report("warm_serial_t1", &serial);
    report("warm_parallel_t4", &par);
    metric("host_threads", std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64));
    metric("ppr_warm_vs_cold_speedup", mean(&cold) / mean(&serial));
    metric("ppr_t4_vs_t1_speedup", mean(&serial) / mean(&par));
}

/// Community-structured topology (ring of dense cliques with sparse
/// bridges) modeling co-authorship/activity graphs: PPR mass
/// concentrates around the seed's community, so a random arrival
/// usually perturbs the maintained state by nearly nothing. A uniform
/// random graph is the adversarial opposite — an expander where every
/// arrival couples to every seed — and is kept in `bench_ppr_scaling`
/// as the full-iteration workload.
fn community_graph(cliques: usize, size: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let n = cliques * size;
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for c in 0..cliques {
        let base = c * size;
        for i in 0..size {
            for _ in 0..3 {
                let j = rng.gen_range(0..size);
                if i != j {
                    g.add_undirected_edge(ids[base + i], ids[base + j], rng.gen_range(0.5..1.0));
                }
            }
        }
        let next = ((c + 1) % cliques) * size;
        for _ in 0..2 {
            let a = rng.gen_range(0..size);
            let b = rng.gen_range(0..size);
            g.add_undirected_edge(ids[base + a], ids[next + b], 0.05);
        }
    }
    g
}

fn bench_ppr_incremental() {
    header("ini_ppr_incr");
    report_header();
    // Warm-update path: a single edge arrival lands between queries.
    // The incremental leg patches residuals and pushes to the certified
    // tolerance; the full leg does what the system otherwise must —
    // reingest the edge, rebuild the CSR, and re-run the power
    // iteration. Same arrivals, same seed, interleaved per round.
    let g = community_graph(200, 100, 5);
    let mut seeds = HashMap::new();
    seeds.insert(NodeId(3), 1.0);
    let cfg = PprConfig::default();
    let mut engine = DynamicPpr::new(g.clone(), cfg, DynPprConfig::default());
    std::hint::black_box(engine.scores_incremental(&seeds)); // prime the seed state
    let mut full_graph = g;
    let mut rng = Rng::seed_from_u64(17);
    let node_count = full_graph.node_count();
    let mut incr = Vec::new();
    let mut full = Vec::new();
    for _ in 0..iters(10, 3) {
        let u = NodeId(rng.gen_range(0..node_count) as u32);
        let v = NodeId(rng.gen_range(0..node_count) as u32);
        let w = rng.gen_range(0.1..1.0);
        let (_, us) = time_once(|| {
            engine.apply_undirected_edge(u, v, w);
            std::hint::black_box(engine.scores_incremental(&seeds));
        });
        incr.push(us);
        let (_, us) = time_once(|| {
            full_graph.add_undirected_edge(u, v, w);
            std::hint::black_box(personalized_pagerank_csr(
                &CsrView::build(&full_graph),
                &seeds,
                cfg,
            ));
        });
        full.push(us);
    }
    report("warm_update_incremental", &incr);
    report("warm_update_full", &full);
    metric("host_threads", std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64));
    metric("ppr_incr_vs_full_speedup", mean(&full) / mean(&incr));
}

fn bench_query_paths() {
    header("ini_query");
    report_header();
    let g = random_graph(2_000, 2);
    let params = DiffusionParams { alpha: 0.5, epsilon: 1e-3 };
    let mut base = RecomputeEngine::new(g.clone(), params);
    let mut idx = ImpactIndex::new(g, params);
    idx.build_full();
    let samples = time_n(iters(20, 3), || {
        std::hint::black_box(base.impact(NodeId(7)));
    });
    report("recompute", &samples);
    let samples = time_n(iters(200, 20), || {
        std::hint::black_box(idx.impact(NodeId(7)));
    });
    report("indexed_hit", &samples);
}

fn bench_update() {
    header("ini_update");
    report_header();
    let g = random_graph(2_000, 3);
    let params = DiffusionParams { alpha: 0.5, epsilon: 1e-3 };
    // Setup (warming a slice of the cache) is excluded from the timing:
    // only the edge insertion with its invalidation work is measured.
    let mut samples = Vec::new();
    for _ in 0..iters(10, 2) {
        let mut idx = ImpactIndex::new(g.clone(), params);
        for s in 0..50u32 {
            idx.impact(NodeId(s));
        }
        let (_, us) = time_once(|| {
            idx.add_edge(NodeId(1), NodeId(2), 0.5);
        });
        samples.push(us);
    }
    report("add_edge_with_invalidation", &samples);
}

fn main() {
    println!("bench_ini — incremental impact-index microbenchmarks");
    bench_diffusion();
    bench_ppr_scaling();
    bench_ppr_incremental();
    bench_query_paths();
    bench_update();
    write_json_fragment("bench_ini");
}
