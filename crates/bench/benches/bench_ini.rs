//! E2 microbenchmarks: truncated diffusion, indexed vs recomputed impact
//! queries, and invalidation cost under updates.
//!
//! Run: `cargo bench -p hive-bench --bench bench_ini`

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_n, time_once, write_json_fragment,
};
use hive_graph::{
    diffuse, personalized_pagerank_csr, CsrView, DiffusionParams, Graph, ImpactIndex,
    ImpactQueryEngine, NodeId, PprConfig, RecomputeEngine,
};
use hive_rng::Rng;
use std::collections::HashMap;

fn random_graph(n: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 1..n {
        for _ in 0..4.min(i) {
            let j = rng.gen_range(0..i);
            g.add_edge(ids[i], ids[j], rng.gen_range(0.1..1.0));
            g.add_edge(ids[j], ids[i], rng.gen_range(0.1..1.0));
        }
    }
    g
}

fn bench_diffusion() {
    header("ini_diffusion");
    report_header();
    let g = random_graph(2_000, 1);
    for eps in [1e-2f64, 1e-4] {
        let params = DiffusionParams { alpha: 0.5, epsilon: eps };
        let samples = time_n(iters(20, 3), || {
            std::hint::black_box(diffuse(&g, NodeId(3), params));
        });
        report(&format!("eps_{eps:.0e}"), &samples);
    }
}

fn bench_ppr_scaling() {
    header("ini_ppr");
    report_header();
    // Big enough to clear the hive-par edge-count gate (32_768 edges),
    // so the pool really engages: ~160k directed edges.
    let g = random_graph(20_000, 4);
    let csr = CsrView::build(&g);
    let mut seeds = HashMap::new();
    seeds.insert(NodeId(3), 1.0);
    let cfg = PprConfig::default();
    let n = iters(10, 3);
    let cold = time_n(n, || {
        std::hint::black_box(personalized_pagerank_csr(
            &CsrView::build(&g),
            &seeds,
            cfg,
        ));
    });
    report("cold_rebuild_csr", &cold);
    let serial = time_n(n, || {
        hive_par::with_threads(1, || {
            std::hint::black_box(personalized_pagerank_csr(&csr, &seeds, cfg));
        });
    });
    report("warm_serial_t1", &serial);
    let par = time_n(n, || {
        hive_par::with_threads(4, || {
            std::hint::black_box(personalized_pagerank_csr(&csr, &seeds, cfg));
        });
    });
    report("warm_parallel_t4", &par);
    metric("host_threads", std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64));
    metric("ppr_warm_vs_cold_speedup", mean(&cold) / mean(&serial));
    metric("ppr_t4_vs_t1_speedup", mean(&serial) / mean(&par));
}

fn bench_query_paths() {
    header("ini_query");
    report_header();
    let g = random_graph(2_000, 2);
    let params = DiffusionParams { alpha: 0.5, epsilon: 1e-3 };
    let mut base = RecomputeEngine::new(g.clone(), params);
    let mut idx = ImpactIndex::new(g, params);
    idx.build_full();
    let samples = time_n(iters(20, 3), || {
        std::hint::black_box(base.impact(NodeId(7)));
    });
    report("recompute", &samples);
    let samples = time_n(iters(200, 20), || {
        std::hint::black_box(idx.impact(NodeId(7)));
    });
    report("indexed_hit", &samples);
}

fn bench_update() {
    header("ini_update");
    report_header();
    let g = random_graph(2_000, 3);
    let params = DiffusionParams { alpha: 0.5, epsilon: 1e-3 };
    // Setup (warming a slice of the cache) is excluded from the timing:
    // only the edge insertion with its invalidation work is measured.
    let mut samples = Vec::new();
    for _ in 0..iters(10, 2) {
        let mut idx = ImpactIndex::new(g.clone(), params);
        for s in 0..50u32 {
            idx.impact(NodeId(s));
        }
        let (_, us) = time_once(|| {
            idx.add_edge(NodeId(1), NodeId(2), 0.5);
        });
        samples.push(us);
    }
    report("add_edge_with_invalidation", &samples);
}

fn main() {
    println!("bench_ini — incremental impact-index microbenchmarks");
    bench_diffusion();
    bench_ppr_scaling();
    bench_query_paths();
    bench_update();
    write_json_fragment("bench_ini");
}
