//! hive-lint benchmarks: full-workspace scan wall-time and throughput,
//! plus the token-engine vs AST-engine cost split.
//!
//! Run: `cargo bench -p hive-bench --bench bench_lint`
//!
//! The `ast_vs_token_speedup` ratio sits *below* 1.0 by design — the
//! AST engine parses, resolves and builds a call graph where the token
//! engine only scans masked lines — and is allowlisted in
//! `tools/bench_allowlist.txt`. It is recorded so the cost of
//! resolution-grade precision stays visible release-to-release.

use std::path::{Path, PathBuf};

use hive_bench::{header, iters, mean, metric, report, report_header, time_n, write_json_fragment};
use hive_lint::config::WorkspaceConfig;
use hive_lint::{check_lib_root, check_source, SourceRules};

fn workspace_root() -> PathBuf {
    hive_lint::find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/bench")
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The v1-style analyzer: token rules only, over every crate source
/// file, with the same per-crate flag derivation the workspace scan
/// uses. Returns the diagnostic count (the token engine keeps its
/// false positives — that gap is what the AST engine buys back).
fn token_pass(root: &Path, cfg: &WorkspaceConfig) -> usize {
    let mut count = 0;
    for (name, dir) in &cfg.crates {
        let mut sources = Vec::new();
        rust_files(&dir.join("src"), &mut sources);
        for path in &sources {
            let Ok(source) = std::fs::read_to_string(path) else { continue };
            let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().into_owned();
            let which = SourceRules {
                no_panic: cfg.panic_free.contains(name),
                deterministic_time: !cfg.clock_files.contains(&rel),
                no_stray_io: !cfg.io_exempt.contains(name),
                no_raw_threads: !cfg.thread_crates.contains(name),
                delta_log: true,
                no_full_scan: false,
            };
            count += check_source(&rel, &source, which).len();
            if path.file_name().is_some_and(|f| f == "lib.rs") {
                count += check_lib_root(&rel, &source).len();
            }
        }
    }
    count
}

fn main() {
    println!("bench_lint — static analyzer wall-time and throughput");
    let root = workspace_root();
    let cfg = hive_lint::config::load(&root).expect("workspace config");
    let n = iters(10, 2);

    header("lint");
    report_header();

    // Full scan: both engines, all twelve rules, exactly what
    // `cargo run -p hive-lint` executes.
    let mut files = 0usize;
    let mut loc = 0usize;
    let full = time_n(n, || {
        let (diags, stats) = hive_lint::scan_workspace_stats(&root).expect("scan");
        assert!(diags.is_empty(), "bench requires a lint-clean workspace: {diags:?}");
        files = stats.files;
        loc = stats.loc;
    });
    report("full_scan", &full);
    metric("files", files as f64);
    metric("loc", loc as f64);
    metric("loc_per_s", loc as f64 / (mean(&full) / 1e6));

    // AST engine alone: lex + parse + resolve + R2/R7-R12.
    let ast = time_n(n, || {
        std::hint::black_box(
            hive_lint::check_ast_workspace(&root, &cfg).expect("ast pass"),
        );
    });
    report("ast_pass", &ast);

    // Token engine alone: the v1 analyzer over the same files.
    let token = time_n(n, || {
        std::hint::black_box(token_pass(&root, &cfg));
    });
    report("token_pass", &token);

    // Below 1.0 by design (see module docs); allowlisted for the gate.
    metric("ast_vs_token_speedup", mean(&token) / mean(&ast));

    write_json_fragment("bench_lint");
}
