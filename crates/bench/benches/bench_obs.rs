//! hive-obs benchmarks: per-service call counters over a fixed service
//! battery, and the wall-clock cost of recording at each level.
//!
//! Run: `cargo bench -p hive-bench --bench bench_obs`

use hive_bench::{header, iters, mean, metric, report, report_header, time_n, write_json_fragment};
use hive_core::discover::DiscoverConfig;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_obs::Level;

/// A fixed slice of the Table-1 service surface, so counter totals are
/// stable run-to-run.
fn battery(hive: &Hive) {
    let users = hive.db().user_ids();
    let zach = users[0];
    std::hint::black_box(hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
    std::hint::black_box(hive.recommend_peers(zach, PeerRecConfig::default()));
    std::hint::black_box(hive.similar_peers(zach, 5));
    std::hint::black_box(hive.explain_relationship(users[0], users[1]));
    std::hint::black_box(hive.activity_context(zach));
}

/// Records the battery at `Full` and exports every per-service call
/// count and raw counter into the JSON fragment.
fn bench_counters() {
    header("obs_counters");
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let _ = hive.knowledge(); // warm
    hive_obs::with_level(Level::Full, || {
        hive_obs::reset();
        battery(&hive);
        let snap = hive_obs::snapshot();
        for (kind, stats) in snap.services() {
            metric(&format!("calls.{}", kind.label()), stats.calls as f64);
            metric(&format!("ticks.{}", kind.label()), stats.ticks as f64);
        }
        for (name, value) in snap.counters() {
            metric(name, value as f64);
        }
    });
}

/// Times the hottest read service at every obs level; the off-vs-full
/// ratio is the recording overhead the facade pays per call.
fn bench_overhead() {
    header("obs_overhead");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let zach = hive.db().user_ids()[0];
    let _ = hive.knowledge(); // warm
    let n = iters(20, 3);
    let run = |level: Level| {
        hive_obs::with_level(level, || {
            hive_obs::reset();
            time_n(n, || {
                std::hint::black_box(hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
            })
        })
    };
    let off = run(Level::Off);
    report("search_obs_off", &off);
    let counts = run(Level::Counts);
    report("search_obs_counts", &counts);
    let full = run(Level::Full);
    report("search_obs_full", &full);
    metric("full_vs_off_overhead", mean(&full) / mean(&off));
}

fn main() {
    println!("bench_obs — observability counters and recording overhead");
    bench_counters();
    bench_overhead();
    write_json_fragment("bench_obs");
}
