//! hive-obs benchmarks: per-service call counters over a fixed service
//! battery, and the wall-clock cost of recording at each level.
//!
//! Run: `cargo bench -p hive-bench --bench bench_obs`

use hive_bench::{header, iters, mean, metric, report, report_header, time_once, write_json_fragment};
use hive_core::discover::DiscoverConfig;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_obs::Level;

/// A fixed slice of the Table-1 service surface, so counter totals are
/// stable run-to-run.
fn battery(hive: &Hive) {
    let users = hive.db().user_ids();
    let zach = users[0];
    std::hint::black_box(hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
    std::hint::black_box(hive.recommend_peers(zach, PeerRecConfig::default()));
    std::hint::black_box(hive.similar_peers(zach, 5));
    std::hint::black_box(hive.explain_relationship(users[0], users[1]));
    std::hint::black_box(hive.activity_context(zach));
}

/// Records the battery at `Full` and exports every per-service call
/// count and raw counter into the JSON fragment.
fn bench_counters() {
    header("obs_counters");
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let _ = hive.knowledge(); // warm
    hive_obs::with_level(Level::Full, || {
        hive_obs::reset();
        battery(&hive);
        let snap = hive_obs::snapshot();
        for (kind, stats) in snap.services() {
            metric(&format!("calls.{}", kind.label()), stats.calls as f64);
            metric(&format!("ticks.{}", kind.label()), stats.ticks as f64);
        }
        for (name, value) in snap.counters() {
            metric(name, value as f64);
        }
    });
}

/// Times the hottest read service at every obs level; the ratios are
/// the recording overhead the facade pays per call at `Counts` and
/// `Full`. Samples are interleaved off/counts/full per iteration
/// (after one unmeasured warmup of each level) — sampling the three
/// levels in sequential blocks let cache state and clock drift land on
/// whichever block ran later, and could report `Counts` as *slower*
/// than `Full`.
fn bench_overhead() {
    header("obs_overhead");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let zach = hive.db().user_ids()[0];
    let _ = hive.knowledge(); // warm
    let n = iters(20, 3);
    let sample = |level: Level| {
        hive_obs::with_level(level, || {
            hive_obs::reset();
            let ((), us) = time_once(|| {
                std::hint::black_box(hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
            });
            us
        })
    };
    for level in [Level::Off, Level::Counts, Level::Full] {
        let _ = sample(level);
    }
    let mut off = Vec::with_capacity(n);
    let mut counts = Vec::with_capacity(n);
    let mut full = Vec::with_capacity(n);
    for _ in 0..n {
        off.push(sample(Level::Off));
        counts.push(sample(Level::Counts));
        full.push(sample(Level::Full));
    }
    report("search_obs_off", &off);
    report("search_obs_counts", &counts);
    report("search_obs_full", &full);
    metric("counts_vs_off_overhead", mean(&counts) / mean(&off));
    metric("full_vs_off_overhead", mean(&full) / mean(&off));
}

fn main() {
    println!("bench_obs — observability counters and recording overhead");
    bench_counters();
    bench_overhead();
    write_json_fragment("bench_obs");
}
