//! E6 — R2DB substrate microbenchmarks: ingest throughput, pattern scan,
//! BGP join, and top-k ranked path latency vs store size.
//!
//! Run: `cargo bench -p hive-bench --bench bench_store`

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_n, time_once, write_json_fragment,
};
use hive_rng::Rng;
use hive_store::{BgpQuery, PathQuery, Pattern, PatternTerm, Term, TripleStore};

fn build_store(n_triples: usize, seed: u64) -> TripleStore {
    let mut st = TripleStore::new();
    let mut rng = Rng::seed_from_u64(seed);
    let n_nodes = (n_triples / 4).max(10);
    let preds = ["rel:coauthor", "rel:cites", "rel:checked_in", "rel:follows"];
    for _ in 0..n_triples {
        let s = rng.gen_range(0..n_nodes);
        let o = rng.gen_range(0..n_nodes);
        let p = preds[rng.gen_range(0..preds.len())];
        st.insert(
            Term::iri(format!("user:{s}")),
            Term::iri(p),
            Term::iri(format!("user:{o}")),
            rng.gen_range(0.1..1.0),
        )
        .expect("valid triple");
    }
    st
}

fn bench_ingest() {
    header("store_ingest");
    report_header();
    for (size, n) in [(1_000usize, 20), (10_000, 5)] {
        let samples = time_n(iters(n, 2), || {
            std::hint::black_box(build_store(size, 1));
        });
        report(&format!("{size}_triples"), &samples);
    }
}

fn bench_scan() {
    header("store_scan");
    report_header();
    let st = build_store(10_000, 2);
    let subject = Term::iri("user:5");
    let pred = Term::iri("rel:cites");
    let samples = time_n(iters(200, 20), || {
        std::hint::black_box(st.triples_matching(Some(&subject), None, None).count());
    });
    report("by_subject", &samples);
    let samples = time_n(iters(50, 10), || {
        std::hint::black_box(st.triples_matching(None, Some(&pred), None).count());
    });
    report("by_predicate", &samples);
}

fn bench_count() {
    header("store_count");
    report_header();
    let st = build_store(10_000, 5);
    let pred = st.dict().get(&Term::iri("rel:cites")).expect("interned predicate");
    let n = iters(200, 20);
    let scan = time_n(n, || {
        std::hint::black_box(st.scan_ids(None, Some(pred), None).len());
    });
    report("scan_then_len", &scan);
    let count = time_n(n, || {
        std::hint::black_box(st.count_ids(None, Some(pred), None));
    });
    report("count_prefix", &count);
    metric("count_prefix_speedup", mean(&scan) / mean(&count));
}

fn bench_bgp() {
    header("store_bgp");
    report_header();
    let st = build_store(10_000, 3);
    // Two-hop join: who co-authors with a citer of user:7?
    let q = BgpQuery::new()
        .pattern(Pattern::new(
            PatternTerm::var("x"),
            PatternTerm::bound(Term::iri("rel:cites")),
            PatternTerm::bound(Term::iri("user:7")),
        ))
        .pattern(Pattern::new(
            PatternTerm::var("x"),
            PatternTerm::bound(Term::iri("rel:coauthor")),
            PatternTerm::var("y"),
        ))
        .limit(50);
    let samples = time_n(iters(50, 5), || {
        std::hint::black_box(q.evaluate(&st).len());
    });
    report("two_hop_join", &samples);
}

fn bench_paths() {
    header("store_ranked_paths");
    report_header();
    for (size, n) in [(2_000usize, 20), (10_000, 5)] {
        let st = build_store(size, 4);
        let q = PathQuery::new(Term::iri("user:1"), Term::iri("user:2"))
            .top_k(3)
            .max_hops(4);
        // The warm case runs the same query against a pre-built
        // GraphView snapshot: what the facade's generation-keyed cache
        // saves on repeated queries. Cold and warm samples are
        // interleaved (after one unmeasured warmup of each) so cache
        // state and clock drift land on both alike — sampling all cold
        // runs first systematically flattered whichever loop ran
        // second and could report warm as slower than cold.
        let view = hive_store::GraphView::build(&st);
        let runs = iters(n, 2);
        let mut cold = Vec::with_capacity(runs);
        let mut warm = Vec::with_capacity(runs);
        std::hint::black_box(q.run(&st).ok());
        std::hint::black_box(q.run_on(&st, &view).ok());
        for _ in 0..runs {
            let ((), c) = time_once(|| {
                std::hint::black_box(q.run(&st).ok());
            });
            cold.push(c);
            let ((), w) = time_once(|| {
                std::hint::black_box(q.run_on(&st, &view).ok());
            });
            warm.push(w);
        }
        report(&format!("{size}_triples"), &cold);
        report(&format!("{size}_triples_warm_view"), &warm);
        metric(&format!("warm_view_speedup_{size}"), mean(&cold) / mean(&warm));
    }
}

fn main() {
    println!("bench_store — R2DB substrate microbenchmarks");
    bench_ingest();
    bench_scan();
    bench_count();
    bench_bgp();
    bench_paths();
    write_json_fragment("bench_store");
}
