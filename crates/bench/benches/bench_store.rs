//! E6 — R2DB substrate microbenchmarks: ingest throughput, pattern scan,
//! BGP join, and top-k ranked path latency vs store size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hive_store::{BgpQuery, PathQuery, Pattern, PatternTerm, Term, TripleStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_store(n_triples: usize, seed: u64) -> TripleStore {
    let mut st = TripleStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nodes = (n_triples / 4).max(10);
    let preds = ["rel:coauthor", "rel:cites", "rel:checked_in", "rel:follows"];
    for _ in 0..n_triples {
        let s = rng.gen_range(0..n_nodes);
        let o = rng.gen_range(0..n_nodes);
        let p = preds[rng.gen_range(0..preds.len())];
        st.insert(
            Term::iri(format!("user:{s}")),
            Term::iri(p),
            Term::iri(format!("user:{o}")),
            rng.gen_range(0.1..1.0),
        )
        .expect("valid triple");
    }
    st
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ingest");
    for size in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &n| {
            b.iter(|| build_store(n, 1));
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let st = build_store(10_000, 2);
    let subject = Term::iri("user:5");
    let pred = Term::iri("rel:cites");
    c.bench_function("store_scan_by_subject", |b| {
        b.iter(|| st.triples_matching(Some(&subject), None, None).count());
    });
    c.bench_function("store_scan_by_predicate", |b| {
        b.iter(|| st.triples_matching(None, Some(&pred), None).count());
    });
}

fn bench_bgp(c: &mut Criterion) {
    let st = build_store(10_000, 3);
    // Two-hop join: who co-authors with a citer of user:7?
    let q = BgpQuery::new()
        .pattern(Pattern::new(
            PatternTerm::var("x"),
            PatternTerm::bound(Term::iri("rel:cites")),
            PatternTerm::bound(Term::iri("user:7")),
        ))
        .pattern(Pattern::new(
            PatternTerm::var("x"),
            PatternTerm::bound(Term::iri("rel:coauthor")),
            PatternTerm::var("y"),
        ))
        .limit(50);
    c.bench_function("store_bgp_two_hop_join", |b| {
        b.iter(|| q.evaluate(&st).len());
    });
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ranked_paths");
    for size in [2_000usize, 10_000] {
        let st = build_store(size, 4);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                PathQuery::new(Term::iri("user:1"), Term::iri("user:2"))
                    .top_k(3)
                    .max_hops(4)
                    .run(&st)
                    .ok()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_scan, bench_bgp, bench_paths);
criterion_main!(benches);
