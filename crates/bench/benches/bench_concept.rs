//! E7 microbenchmarks (concept side): concept-map bootstrapping, layer
//! alignment, integration, and context propagation vs network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hive_concept::{
    align_maps, bootstrap_concept_map, propagate, AlignConfig, BootstrapConfig, ConceptMap,
    ContextNetwork, PropagationConfig,
};
use std::collections::HashMap;

fn corpus(docs: usize) -> Vec<String> {
    (0..docs)
        .map(|i| {
            format!(
                "Tensor streams encode social networks; change detection over tensor \
                 streams with randomized ensembles keeps monitoring cheap (doc {i}). \
                 Community discovery in social networks tracks evolving communities."
            )
        })
        .collect()
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("concept_bootstrap");
    for docs in [5usize, 40] {
        let texts = corpus(docs);
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        group.bench_with_input(BenchmarkId::from_parameter(docs), &docs, |b, _| {
            b.iter(|| bootstrap_concept_map("bench", &refs, BootstrapConfig::default()));
        });
    }
    group.finish();
}

fn synthetic_map(name: &str, concepts: usize) -> ConceptMap {
    let mut m = ConceptMap::new(name);
    let stems = ["tensor", "stream", "graph", "community", "query", "index"];
    for i in 0..concepts {
        let a = stems[i % stems.len()];
        let b = stems[(i / stems.len() + 1) % stems.len()];
        m.add_concept(format!("{a} {b} {i}"), 0.5 + (i % 5) as f64 * 0.1);
    }
    let names: Vec<String> = m.concepts().map(|(c, _)| c.to_string()).collect();
    for w in names.windows(2) {
        m.add_relation(&w[0], &w[1], 0.5);
    }
    m
}

fn bench_align(c: &mut Criterion) {
    let mut group = c.benchmark_group("concept_align");
    for n in [20usize, 80] {
        let a = synthetic_map("a", n);
        let b2 = synthetic_map("b", n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| align_maps(&a, &b2, AlignConfig::default()));
        });
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("concept_propagation");
    for n in [50usize, 200] {
        let mut net = ContextNetwork::new();
        net.add_layer(synthetic_map("papers", n), 1.0);
        net.add_layer(synthetic_map("sessions", n / 2), 0.8);
        net.align_all(AlignConfig::default());
        let g = net.integrated_graph(0.9);
        let seed_key = g.key(hive_graph::NodeId(0)).to_string();
        let mut seeds = HashMap::new();
        seeds.insert(seed_key, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| propagate(&g, &seeds, PropagationConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bootstrap, bench_align, bench_propagation);
criterion_main!(benches);
