//! E7 microbenchmarks (concept side): concept-map bootstrapping, layer
//! alignment, integration, and context propagation vs network size.
//!
//! Run: `cargo bench -p hive-bench --bench bench_concept`

use hive_bench::{header, iters, report, report_header, time_n, write_json_fragment};
use hive_concept::{
    align_maps, bootstrap_concept_map, propagate, AlignConfig, BootstrapConfig, ConceptMap,
    ContextNetwork, PropagationConfig,
};
use std::collections::HashMap;

fn corpus(docs: usize) -> Vec<String> {
    (0..docs)
        .map(|i| {
            format!(
                "Tensor streams encode social networks; change detection over tensor \
                 streams with randomized ensembles keeps monitoring cheap (doc {i}). \
                 Community discovery in social networks tracks evolving communities."
            )
        })
        .collect()
}

fn bench_bootstrap() {
    header("concept_bootstrap");
    report_header();
    for (docs, n) in [(5usize, 50), (40, 10)] {
        let texts = corpus(docs);
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let samples = time_n(iters(n, 3), || {
            std::hint::black_box(bootstrap_concept_map("bench", &refs, BootstrapConfig::default()));
        });
        report(&format!("{docs}_docs"), &samples);
    }
}

fn synthetic_map(name: &str, concepts: usize) -> ConceptMap {
    let mut m = ConceptMap::new(name);
    let stems = ["tensor", "stream", "graph", "community", "query", "index"];
    for i in 0..concepts {
        let a = stems[i % stems.len()];
        let b = stems[(i / stems.len() + 1) % stems.len()];
        m.add_concept(format!("{a} {b} {i}"), 0.5 + (i % 5) as f64 * 0.1);
    }
    let names: Vec<String> = m.concepts().map(|(c, _)| c.to_string()).collect();
    for w in names.windows(2) {
        m.add_relation(&w[0], &w[1], 0.5);
    }
    m
}

fn bench_align() {
    header("concept_align");
    report_header();
    for (n, reps) in [(20usize, 50), (80, 10)] {
        let a = synthetic_map("a", n);
        let b = synthetic_map("b", n);
        let samples = time_n(iters(reps, 3), || {
            std::hint::black_box(align_maps(&a, &b, AlignConfig::default()));
        });
        report(&format!("{n}_concepts"), &samples);
    }
}

fn bench_propagation() {
    header("concept_propagation");
    report_header();
    for (n, reps) in [(50usize, 20), (200, 5)] {
        let mut net = ContextNetwork::new();
        net.add_layer(synthetic_map("papers", n), 1.0);
        net.add_layer(synthetic_map("sessions", n / 2), 0.8);
        net.align_all(AlignConfig::default());
        let g = net.integrated_graph(0.9);
        let seed_key = g.key(hive_graph::NodeId(0)).to_string();
        let mut seeds = HashMap::new();
        seeds.insert(seed_key, 1.0);
        let samples = time_n(iters(reps, 2), || {
            std::hint::black_box(propagate(&g, &seeds, PropagationConfig::default()));
        });
        report(&format!("{n}_concepts"), &samples);
    }
}

fn main() {
    println!("bench_concept — concept-map microbenchmarks");
    bench_bootstrap();
    bench_align();
    bench_propagation();
    write_json_fragment("bench_concept");
}
