//! End-to-end platform benchmarks: world generation, knowledge-network
//! derivation, and the hot service paths on the medium world.
//!
//! Run: `cargo bench -p hive-bench --bench bench_platform`

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_n, write_json_fragment,
};
use hive_core::context::{build_context, ContextConfig};
use hive_core::evidence::explain_relationship;
use hive_core::discover::DiscoverConfig;
use hive_core::knowledge::KnowledgeNetwork;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn bench_world_build() {
    header("platform_world_build");
    report_header();
    let samples = time_n(iters(10, 2), || {
        std::hint::black_box(WorldBuilder::new(SimConfig::small()).build());
    });
    report("small", &samples);
    let samples = time_n(iters(5, 1), || {
        std::hint::black_box(WorldBuilder::new(SimConfig::medium()).build());
    });
    report("medium", &samples);
}

fn bench_knowledge_build() {
    header("platform_knowledge_build");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let samples = time_n(iters(10, 2), || {
        std::hint::black_box(KnowledgeNetwork::build(&world.db));
    });
    report("medium", &samples);
}

fn bench_services() {
    header("platform_services");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let zach = hive.db().user_ids()[0];
    let _ = hive.knowledge(); // warm
    let samples = time_n(iters(20, 3), || {
        let kn = hive.knowledge();
        std::hint::black_box(build_context(hive.db(), &kn, zach, ContextConfig::default()));
    });
    report("activity_context", &samples);
    let samples = time_n(iters(20, 3), || {
        std::hint::black_box(hive.recommend_peers(zach, PeerRecConfig::default()));
    });
    report("recommend_peers", &samples);
    let samples = time_n(iters(20, 3), || {
        std::hint::black_box(hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
    });
    report("search", &samples);
    let samples = time_n(iters(5, 1), || {
        std::hint::black_box(hive.discover_communities());
    });
    report("communities", &samples);
}

fn bench_peer_scaling() {
    header("platform_peer_scaling");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let zach = hive.db().user_ids()[0];
    let _ = hive.knowledge(); // warm
    // A wide candidate pool makes the per-peer evidence fan-out the
    // dominant cost, which is what the pool parallelizes.
    let cfg = PeerRecConfig::defaults().with_candidate_pool(60);
    let n = iters(10, 3);
    let serial = time_n(n, || {
        hive_par::with_threads(1, || {
            std::hint::black_box(hive.recommend_peers(zach, cfg));
        });
    });
    report("recommend_peers_t1", &serial);
    let par = time_n(n, || {
        hive_par::with_threads(4, || {
            std::hint::black_box(hive.recommend_peers(zach, cfg));
        });
    });
    report("recommend_peers_t4", &par);
    metric("peers_t4_vs_t1_speedup", mean(&serial) / mean(&par));
}

fn bench_explain_cache() {
    header("platform_explain");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let (a, b) = (users[0], users[1]);
    let kn = hive.knowledge();
    let n = iters(10, 3);
    // Pre-cache behaviour: every explanation rebuilt the relationship
    // store and its adjacency from scratch.
    let cold = time_n(n, || {
        let store = kn.to_store(hive.db());
        std::hint::black_box(explain_relationship(hive.db(), &kn, &store, a, b, 3));
    });
    report("cold_rebuild_store", &cold);
    let _ = hive.explain_relationship(a, b); // warm the generation-keyed cache
    let warm = time_n(n, || {
        std::hint::black_box(hive.explain_relationship(a, b));
    });
    report("warm_graph_view", &warm);
    metric("explain_warm_speedup", mean(&cold) / mean(&warm));
}

fn main() {
    println!("bench_platform — end-to-end platform benchmarks");
    bench_world_build();
    bench_knowledge_build();
    bench_services();
    bench_peer_scaling();
    bench_explain_cache();
    write_json_fragment("bench_platform");
}
