//! End-to-end platform benchmarks: world generation, knowledge-network
//! derivation, and the hot service paths on the medium world.
//!
//! Run: `cargo bench -p hive-bench --bench bench_platform`

use hive_bench::{header, report, report_header, time_n};
use hive_core::context::{build_context, ContextConfig};
use hive_core::discover::DiscoverConfig;
use hive_core::knowledge::KnowledgeNetwork;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn bench_world_build() {
    header("platform_world_build");
    report_header();
    let samples = time_n(10, || {
        std::hint::black_box(WorldBuilder::new(SimConfig::small()).build());
    });
    report("small", &samples);
    let samples = time_n(5, || {
        std::hint::black_box(WorldBuilder::new(SimConfig::medium()).build());
    });
    report("medium", &samples);
}

fn bench_knowledge_build() {
    header("platform_knowledge_build");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let samples = time_n(10, || {
        std::hint::black_box(KnowledgeNetwork::build(&world.db));
    });
    report("medium", &samples);
}

fn bench_services() {
    header("platform_services");
    report_header();
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let zach = hive.db().user_ids()[0];
    let _ = hive.knowledge(); // warm
    let samples = time_n(20, || {
        let kn = hive.knowledge();
        std::hint::black_box(build_context(hive.db(), &kn, zach, ContextConfig::default()));
    });
    report("activity_context", &samples);
    let samples = time_n(20, || {
        std::hint::black_box(hive.recommend_peers(zach, PeerRecConfig::default()));
    });
    report("recommend_peers", &samples);
    let samples = time_n(20, || {
        std::hint::black_box(hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
    });
    report("search", &samples);
    let samples = time_n(5, || {
        std::hint::black_box(hive.discover_communities());
    });
    report("communities", &samples);
}

fn main() {
    println!("bench_platform — end-to-end platform benchmarks");
    bench_world_build();
    bench_knowledge_build();
    bench_services();
}
