//! End-to-end platform benchmarks: world generation, knowledge-network
//! derivation, and the hot service paths on the medium world.

use criterion::{criterion_group, criterion_main, Criterion};
use hive_core::context::{build_context, ContextConfig};
use hive_core::discover::DiscoverConfig;
use hive_core::knowledge::KnowledgeNetwork;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn bench_world_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform_world_build");
    group.sample_size(10);
    group.bench_function("small", |b| {
        b.iter(|| WorldBuilder::new(SimConfig::small()).build());
    });
    group.bench_function("medium", |b| {
        b.iter(|| WorldBuilder::new(SimConfig::medium()).build());
    });
    group.finish();
}

fn bench_knowledge_build(c: &mut Criterion) {
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let mut group = c.benchmark_group("platform_knowledge_build");
    group.sample_size(10);
    group.bench_function("medium", |b| {
        b.iter(|| KnowledgeNetwork::build(&world.db));
    });
    group.finish();
}

fn bench_services(c: &mut Criterion) {
    let world = WorldBuilder::new(SimConfig::medium()).build();
    let hive = Hive::new(world.db);
    let zach = hive.db().user_ids()[0];
    let _ = hive.knowledge(); // warm
    c.bench_function("platform_activity_context", |b| {
        b.iter(|| {
            let kn = hive.knowledge();
            build_context(hive.db(), &kn, zach, ContextConfig::default())
        });
    });
    c.bench_function("platform_recommend_peers", |b| {
        b.iter(|| hive.recommend_peers(zach, PeerRecConfig::default()));
    });
    c.bench_function("platform_search", |b| {
        b.iter(|| hive.search(zach, "tensor stream sketch", DiscoverConfig::default()));
    });
    c.bench_function("platform_communities", |b| {
        b.iter(|| hive.discover_communities());
    });
}

criterion_group!(benches, bench_world_build, bench_knowledge_build, bench_services);
criterion_main!(benches);
