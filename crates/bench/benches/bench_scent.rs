//! E1 microbenchmarks: sketch computation, incremental delta updates,
//! sketch comparison vs exact Frobenius distance, and CP-ALS cost.
//!
//! Run: `cargo bench -p hive-bench --bench bench_scent`

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_n, write_json_fragment,
};
use hive_rng::Rng;
use hive_scent::{cp_als, SketchConfig, SparseTensor, TensorSketch};

fn random_tensor(dim: usize, nnz: usize, seed: u64) -> SparseTensor {
    let mut t = SparseTensor::new(vec![dim, dim, 3]);
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..nnz {
        let idx = vec![rng.gen_range(0..dim), rng.gen_range(0..dim), rng.gen_range(0..3usize)];
        t.set(&idx, rng.gen_range(0.1..1.0));
    }
    t
}

fn bench_sketch_compute() {
    header("scent_sketch_compute");
    report_header();
    for (nnz, n) in [(500usize, 50), (5_000, 10)] {
        let t = random_tensor(100, nnz, 1);
        let cfg = SketchConfig { measurements: 256, seed: 7 };
        let samples = time_n(iters(n, 3), || {
            std::hint::black_box(TensorSketch::compute(&t, cfg));
        });
        report(&format!("{nnz}_nnz_r256"), &samples);
    }
}

fn bench_incremental_update() {
    header("scent_delta_update");
    report_header();
    let t = random_tensor(100, 2_000, 2);
    let cfg = SketchConfig { measurements: 256, seed: 7 };
    let sketch = TensorSketch::compute(&t, cfg);
    let samples = time_n(iters(50, 5), || {
        let mut s = sketch.clone();
        for i in 0..100usize {
            s.apply_delta(&[i % 100, (i * 7) % 100, i % 3], 0.01);
        }
        std::hint::black_box(s);
    });
    report("delta_update_x100", &samples);
}

fn bench_compare() {
    header("scent_distance");
    report_header();
    let a = random_tensor(100, 5_000, 3);
    let b = random_tensor(100, 5_000, 4);
    let cfg = SketchConfig { measurements: 256, seed: 7 };
    let sa = TensorSketch::compute(&a, cfg);
    let sb = TensorSketch::compute(&b, cfg);
    let samples = time_n(iters(500, 50), || {
        std::hint::black_box(sa.estimate_distance(&sb));
    });
    report("sketch_distance_r256", &samples);
    let samples = time_n(iters(50, 5), || {
        std::hint::black_box(a.frobenius_distance(&b));
    });
    report("exact_frobenius_5k_nnz", &samples);
}

fn bench_cp() {
    header("scent_cp_als");
    report_header();
    let t = random_tensor(40, 1_000, 5);
    let samples = time_n(iters(5, 2), || {
        std::hint::black_box(cp_als(&t, 3, 6, 1));
    });
    report("cp_als_rank3_iters6", &samples);
    // Above the hive-par entry gate (2_048 nnz): the ALS sweeps fan the
    // MTTKRP and row solves over the pool.
    let big = random_tensor(100, 6_000, 6);
    let n = iters(5, 2);
    let serial = time_n(n, || {
        hive_par::with_threads(1, || {
            std::hint::black_box(cp_als(&big, 3, 6, 1));
        });
    });
    report("cp_als_6k_nnz_t1", &serial);
    let par = time_n(n, || {
        hive_par::with_threads(4, || {
            std::hint::black_box(cp_als(&big, 3, 6, 1));
        });
    });
    report("cp_als_6k_nnz_t4", &par);
    metric("cp_t4_vs_t1_speedup", mean(&serial) / mean(&par));
}

fn main() {
    println!("bench_scent — SCENT substrate microbenchmarks");
    bench_sketch_compute();
    bench_incremental_update();
    bench_compare();
    bench_cp();
    write_json_fragment("bench_scent");
}
