//! E1 microbenchmarks: sketch computation, incremental delta updates,
//! sketch comparison vs exact Frobenius distance, and CP-ALS cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hive_scent::{cp_als, SketchConfig, SparseTensor, TensorSketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(dim: usize, nnz: usize, seed: u64) -> SparseTensor {
    let mut t = SparseTensor::new(vec![dim, dim, 3]);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..nnz {
        let idx = vec![rng.gen_range(0..dim), rng.gen_range(0..dim), rng.gen_range(0..3)];
        t.set(&idx, rng.gen_range(0.1..1.0));
    }
    t
}

fn bench_sketch_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("scent_sketch_compute");
    for nnz in [500usize, 5_000] {
        let t = random_tensor(100, nnz, 1);
        let cfg = SketchConfig { measurements: 256, seed: 7 };
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| TensorSketch::compute(&t, cfg));
        });
    }
    group.finish();
}

fn bench_incremental_update(c: &mut Criterion) {
    let t = random_tensor(100, 2_000, 2);
    let cfg = SketchConfig { measurements: 256, seed: 7 };
    let sketch = TensorSketch::compute(&t, cfg);
    c.bench_function("scent_delta_update_x100", |b| {
        b.iter(|| {
            let mut s = sketch.clone();
            for i in 0..100usize {
                s.apply_delta(&[i % 100, (i * 7) % 100, i % 3], 0.01);
            }
            s
        });
    });
}

fn bench_compare(c: &mut Criterion) {
    let a = random_tensor(100, 5_000, 3);
    let b2 = random_tensor(100, 5_000, 4);
    let cfg = SketchConfig { measurements: 256, seed: 7 };
    let sa = TensorSketch::compute(&a, cfg);
    let sb = TensorSketch::compute(&b2, cfg);
    c.bench_function("scent_sketch_distance_r256", |b| {
        b.iter(|| sa.estimate_distance(&sb));
    });
    c.bench_function("scent_exact_frobenius_5k_nnz", |b| {
        b.iter(|| a.frobenius_distance(&b2));
    });
}

fn bench_cp(c: &mut Criterion) {
    let t = random_tensor(40, 1_000, 5);
    c.bench_function("scent_cp_als_rank3_iters6", |b| {
        b.iter(|| cp_als(&t, 3, 6, 1));
    });
}

criterion_group!(benches, bench_sketch_compute, bench_incremental_update, bench_compare, bench_cp);
criterion_main!(benches);
