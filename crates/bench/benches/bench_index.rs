//! Secondary-index benchmarks: the declarative query planner against
//! the full-scan reference path it replaced, plus the cost of keeping
//! the index warm through the delta log.
//!
//! Run: `cargo bench -p hive-bench --bench bench_index`
//!
//! Three claims are measured at the medium world:
//!
//! * a history-shaped query (one actor, bounded window) answered from
//!   the actor postings beats the full activity-log scan
//!   (`idx_vs_scan_speedup`, floor-gated at 5.0 in the allowlist);
//! * a topic-scoped resource query answered from the topic postings
//!   beats walking every arena (`topic_vs_scan_speedup`);
//! * patching the index forward through `deltas_since` costs O(delta),
//!   not O(world) (`patch_vs_rebuild_speedup`).

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_n, time_once, write_json_fragment,
};
use hive_core::clock::Timestamp;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::{ActivityCategory, ActivityQuery, DbIndexes, HiveDb, ResourceQuery, TickRange};

/// The actor with the longest posting list — the worst indexed case,
/// so the speedup is not flattered by a near-empty result.
fn busiest_actor(db: &HiveDb, idx: &DbIndexes) -> hive_core::ids::UserId {
    db.user_ids()
        .into_iter()
        .max_by_key(|&u| idx.actor_postings(u).len())
        .expect("medium world has users")
}

/// Indexed run vs reference scan for one query shape; asserts the two
/// paths agree before trusting the timings.
fn run_vs_scan(db: &HiveDb, idx: &DbIndexes, label: &str, query: &ActivityQuery) -> f64 {
    assert_eq!(query.run(db, idx), query.scan(db), "planner must match the scan for {label}");
    // Both paths are microseconds; a deep sample keeps the ratio out
    // of allocator-warmup noise even in smoke mode.
    let n = iters(600, 150);
    let run = time_n(n, || {
        std::hint::black_box(query.run(db, idx));
    });
    let scan = time_n(n, || {
        std::hint::black_box(query.scan(db));
    });
    report(&format!("{label}_indexed"), &run);
    report(&format!("{label}_scan"), &scan);
    mean(&scan) / mean(&run)
}

fn bench_queries() {
    header("index");
    report_header();
    let db = WorldBuilder::new(SimConfig::medium()).build().db;
    let (idx, build_us) = time_once(|| DbIndexes::build(&db));
    metric("build_us", build_us);
    let zach = busiest_actor(&db, &idx);
    let mid = Timestamp(db.now().ticks() / 2);

    // The `search_history` shape: one actor, the later half of the log.
    let history = ActivityQuery::new()
        .with_actors(vec![zach])
        .within(TickRange::since(mid));
    let speedup = run_vs_scan(&db, &idx, "history_actor_window", &history);
    metric("idx_vs_scan_speedup", speedup);

    // The AlphaSum report shape: a category slice over a window — the
    // candidate pull that used to walk `activities_between`.
    let category = ActivityQuery::new()
        .with_categories(vec![ActivityCategory::Discuss, ActivityCategory::Content])
        .within(TickRange::since(mid));
    let speedup = run_vs_scan(&db, &idx, "report_category_window", &category);
    metric("category_vs_scan_speedup", speedup);
}

fn bench_resources() {
    header("index_discover");
    report_header();
    let db = WorldBuilder::new(SimConfig::medium()).build().db;
    let idx = DbIndexes::build(&db);
    // A token guaranteed to hit: the first indexed paper topic.
    let paper = db.paper_ids()[0];
    let token = hive_core::db::index::topic_tokens(&db.get_paper(paper).unwrap().text())
        .into_iter()
        .next()
        .expect("papers carry text");
    let query = ResourceQuery::new().on_topic(&token);
    assert_eq!(query.run(&db, &idx), query.scan(&db), "resource planner must match the scan");
    let n = iters(40, 8);
    let run = time_n(n, || {
        std::hint::black_box(query.run(&db, &idx));
    });
    let scan = time_n(n, || {
        std::hint::black_box(query.scan(&db));
    });
    report("discover_topic_indexed", &run);
    report("discover_topic_scan", &scan);
    metric("topic_vs_scan_speedup", mean(&scan) / mean(&run));
}

/// O(delta) maintenance: after a handful of writes, `patch` must cost
/// a sliver of a cold `build`.
fn bench_maintenance() {
    header("index_patch");
    report_header();
    let mut db = WorldBuilder::new(SimConfig::medium()).build().db;
    let mut idx = DbIndexes::build(&db);
    let users = db.user_ids();
    let papers = db.paper_ids();
    let rounds = iters(30, 5);
    let mut patch_us = Vec::with_capacity(rounds);
    for i in 0..rounds {
        db.advance_clock(1);
        db.view_paper(users[i % users.len()], papers[i % papers.len()]).unwrap();
        let ((), us) = time_once(|| {
            assert!(idx.patch(&db), "delta log must still cover the gap");
        });
        patch_us.push(us);
    }
    report("patch_per_delta", &patch_us);
    let n = iters(10, 3);
    let rebuild_us = time_n(n, || {
        std::hint::black_box(DbIndexes::build(&db));
    });
    report("rebuild_cold", &rebuild_us);
    metric("patch_vs_rebuild_speedup", mean(&rebuild_us) / mean(&patch_us));
    metric("host_threads", std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64));
}

fn main() {
    println!("bench_index — typed secondary indexes: planner vs scan, patch vs rebuild");
    bench_queries();
    bench_resources();
    bench_maintenance();
    write_json_fragment("bench_index");
}
