//! Replication benchmarks: follower apply throughput for one vs two
//! replicas consuming the same frame log concurrently, and the
//! failover-to-first-read latency (promote a caught-up follower, then
//! answer the first query from the new leader's handle).
//!
//! Run: `cargo bench -p hive-bench --bench bench_replica`
//!
//! Two followers are independent state machines replaying the same
//! log, so with `hive_par::force_workers(2)` the combined apply rate
//! should approach 2× one follower's. On a single-core host the two
//! workers time-slice one CPU and the ratio carries no signal, so
//! `bench_gate` exempts `*_vs_f1_*` when `host_threads` is < 2.

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_once, write_json_fragment,
};
use hive_core::discover::DiscoverConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_replica::{frame, Cluster, ClusterConfig, FaultPlan, Follower, Leader};
use hive_rng::Rng;
use std::sync::Mutex;

/// Seals a frame log (bootstrap checkpoint + ops frames) and counts
/// the ops shipped in it.
fn build_log(steps: usize) -> (Vec<String>, usize) {
    let db = WorldBuilder::new(SimConfig::medium()).build().db;
    let mut leader = Leader::new(db, u64::MAX);
    let mut wires: Vec<String> = leader.seal_frames(true).iter().map(frame::encode).collect();
    let mut rng = Rng::seed_from_u64(42);
    let mut ops = 0usize;
    for step in 0..steps {
        for op in hive_replica::synth::step_ops(leader.hive(), step, &mut rng) {
            if leader.apply(op).is_ok() {
                ops += 1;
            }
        }
        if (step + 1) % 3 == 0 {
            wires.extend(leader.seal_frames(false).iter().map(frame::encode));
        }
    }
    wires.extend(leader.seal_frames(false).iter().map(frame::encode));
    (wires, ops)
}

/// Ops applied per second with N followers independently replaying the
/// same log on N forced workers.
fn bench_apply() {
    header("replica_apply");
    report_header();
    let (wires, ops) = build_log(iters(60, 12));
    let trials = iters(3, 1);
    let mut rate_f1 = 0.0;
    for n in [1usize, 2] {
        let run = || {
            let followers: Vec<Mutex<Follower>> =
                (0..n).map(|id| Mutex::new(Follower::blank(id))).collect();
            hive_par::force_workers(n, || {
                hive_par::par_tasks(&followers, |_, slot| {
                    let mut follower = slot.lock().expect("bench follower lock");
                    for wire in &wires {
                        follower.ingest(wire).expect("clean log applies");
                    }
                    assert!(follower.is_streaming());
                });
            });
        };
        run(); // unmeasured warmup at this fan-out
        let mut per_op = Vec::with_capacity(trials);
        for _ in 0..trials {
            let ((), us) = time_once(run);
            per_op.push(us / (n * ops) as f64);
        }
        report(&format!("apply_f{n}"), &per_op);
        let rate = 1e6 / mean(&per_op);
        metric(&format!("apply_ops_per_sec_f{n}"), rate);
        if n == 1 {
            rate_f1 = rate;
        } else {
            metric(&format!("apply_par_f{n}_vs_f1_speedup"), rate / rate_f1);
        }
    }
    metric("host_threads", std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64));
}

/// Drives a 2-follower cluster until quiescent, so promotion is legal.
fn caught_up_cluster() -> Cluster {
    let db = WorldBuilder::new(SimConfig::medium()).build().db;
    let mut cluster = Cluster::new(
        db,
        2,
        ClusterConfig { seed: 42, checkpoint_every: 8, faults: FaultPlan::none() },
    );
    let mut rng = Rng::seed_from_u64(7);
    for step in 0..iters(30, 6) {
        for op in hive_replica::synth::step_ops(cluster.leader_hive(), step, &mut rng) {
            let _ = cluster.apply(op);
        }
        cluster.commit();
    }
    assert!(cluster.heal(8), "clean channels must converge");
    cluster
}

/// Failover latency: old leader gone, promote follower 0, serve the
/// first read from the new leader's handle.
fn bench_failover() {
    header("replica_failover");
    report_header();
    let trials = iters(5, 2);
    let mut first_read = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut cluster = caught_up_cluster();
        let ((), us) = time_once(|| {
            cluster.promote(0).expect("caught-up follower promotes");
            let reader = cluster.leader().reader();
            let epoch = reader.epoch();
            let u = epoch.db().user_ids()[0];
            std::hint::black_box(epoch.search(
                u,
                "tensor stream sketch",
                DiscoverConfig::default(),
            ));
        });
        first_read.push(us);
    }
    report("failover_first_read", &first_read);
    metric("failover_first_read_us", mean(&first_read));
}

fn main() {
    println!("bench_replica — log-shipped replication: apply throughput and failover latency");
    bench_apply();
    bench_failover();
    write_json_fragment("bench_replica");
}
