//! E7 microbenchmarks (text side): tokenization, TF-IDF vectorization,
//! keyphrase extraction, snippet extraction, and AlphaSum summarization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hive_text::keyphrase::{extract_keyphrases, KeyphraseConfig};
use hive_text::snippet::{extract_snippet, SnippetConfig};
use hive_text::summarize::{summarize_table, Strategy, SummaryConfig, Table, ValueLattice};
use hive_text::tfidf::Corpus;
use hive_text::tokenize::tokenize_filtered;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ABSTRACT: &str = "Compressed sensing of tensor streams enables scalable \
    monitoring of evolving social networks. Tensor streams encode multi-relational \
    social media data compactly. Structural change detection in tensor streams is \
    costly for decomposition methods; randomized tensor ensembles reduce the cost \
    of change detection while keeping accuracy high across realistic workloads. \
    The monitoring system must keep up with the stream rate at all times.";

fn long_document(paragraphs: usize) -> String {
    let mut s = String::new();
    for _ in 0..paragraphs {
        s.push_str(ABSTRACT);
        s.push(' ');
    }
    s
}

fn bench_tokenize(c: &mut Criterion) {
    let doc = long_document(20);
    c.bench_function("text_tokenize_filtered_20p", |b| {
        b.iter(|| tokenize_filtered(&doc).len());
    });
}

fn bench_tfidf(c: &mut Criterion) {
    let mut corpus = Corpus::new();
    for i in 0..200 {
        corpus.index_document(&format!("{ABSTRACT} variant {i}"));
    }
    c.bench_function("text_vectorize_known", |b| {
        b.iter(|| corpus.vectorize_known(ABSTRACT));
    });
}

fn bench_keyphrases(c: &mut Criterion) {
    let mut group = c.benchmark_group("text_keyphrases");
    for paragraphs in [1usize, 10] {
        let doc = long_document(paragraphs);
        group.bench_with_input(BenchmarkId::from_parameter(paragraphs), &paragraphs, |b, _| {
            b.iter(|| extract_keyphrases(&doc, KeyphraseConfig::default()));
        });
    }
    group.finish();
}

fn bench_snippets(c: &mut Criterion) {
    let mut group = c.benchmark_group("text_snippets");
    for paragraphs in [5usize, 40] {
        let doc = long_document(paragraphs);
        group.bench_with_input(BenchmarkId::from_parameter(paragraphs), &paragraphs, |b, _| {
            b.iter(|| {
                extract_snippet(&doc, &["tensor streams", "change detection"], SnippetConfig::default())
            });
        });
    }
    group.finish();
}

fn random_activity_table(rows: usize, seed: u64) -> Table {
    let mut who = ValueLattice::new("*");
    for org in 0..5 {
        who.add_child("*", format!("org{org}"));
        for u in 0..20 {
            who.add_child(format!("org{org}"), format!("user{org}_{u}"));
        }
    }
    let mut place = ValueLattice::new("*");
    for t in 0..4 {
        place.add_child("*", format!("track{t}"));
        for s in 0..5 {
            place.add_child(format!("track{t}"), format!("session{t}_{s}"));
        }
    }
    let mut what = ValueLattice::new("*");
    for a in ["checkin", "question", "view"] {
        what.add_child("*", a);
    }
    let mut table = Table::new(
        vec!["who".into(), "where".into(), "what".into()],
        vec![who, place, what],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rows {
        table.push_row(vec![
            format!("user{}_{}", rng.gen_range(0..5), rng.gen_range(0..20)),
            format!("session{}_{}", rng.gen_range(0..4), rng.gen_range(0..5)),
            ["checkin", "question", "view"][rng.gen_range(0..3)].to_string(),
        ]);
    }
    table
}

fn bench_alphasum(c: &mut Criterion) {
    let mut group = c.benchmark_group("text_alphasum_greedy_k8");
    group.sample_size(10);
    for rows in [100usize, 400] {
        let table = random_activity_table(rows, 1);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                summarize_table(&table, SummaryConfig { max_rows: 8, strategy: Strategy::Greedy })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_tfidf,
    bench_keyphrases,
    bench_snippets,
    bench_alphasum
);
criterion_main!(benches);
