//! E7 microbenchmarks (text side): tokenization, TF-IDF vectorization,
//! keyphrase extraction, snippet extraction, and AlphaSum summarization.
//!
//! Run: `cargo bench -p hive-bench --bench bench_text`

use hive_bench::{
    header, iters, mean, metric, report, report_header, time_n, write_json_fragment,
};
use hive_rng::Rng;
use hive_text::keyphrase::{extract_keyphrases, KeyphraseConfig};
use hive_text::snippet::{extract_snippet, SnippetConfig};
use hive_text::summarize::{summarize_table, Strategy, SummaryConfig, Table, ValueLattice};
use hive_text::tfidf::Corpus;
use hive_text::tokenize::tokenize_filtered;

const ABSTRACT: &str = "Compressed sensing of tensor streams enables scalable \
    monitoring of evolving social networks. Tensor streams encode multi-relational \
    social media data compactly. Structural change detection in tensor streams is \
    costly for decomposition methods; randomized tensor ensembles reduce the cost \
    of change detection while keeping accuracy high across realistic workloads. \
    The monitoring system must keep up with the stream rate at all times.";

fn long_document(paragraphs: usize) -> String {
    let mut s = String::new();
    for _ in 0..paragraphs {
        s.push_str(ABSTRACT);
        s.push(' ');
    }
    s
}

fn bench_tokenize() {
    header("text_tokenize");
    report_header();
    let doc = long_document(20);
    let samples = time_n(iters(100, 10), || {
        std::hint::black_box(tokenize_filtered(&doc).len());
    });
    report("tokenize_filtered_20p", &samples);
}

fn bench_tfidf() {
    header("text_tfidf");
    report_header();
    let mut corpus = Corpus::new();
    for i in 0..200 {
        corpus.index_document(&format!("{ABSTRACT} variant {i}"));
    }
    let samples = time_n(iters(200, 20), || {
        std::hint::black_box(corpus.vectorize_known(ABSTRACT));
    });
    report("vectorize_known", &samples);
    // Whole-corpus re-weighting, the path the knowledge network build
    // fans out over the pool.
    let tfs: Vec<_> = (0..200)
        .map(|i| corpus.vectorize_known(&format!("{ABSTRACT} variant {i}")))
        .collect();
    let n = iters(20, 3);
    let serial = time_n(n, || {
        hive_par::with_threads(1, || {
            std::hint::black_box(corpus.tfidf_batch(&tfs));
        });
    });
    report("tfidf_batch_200_t1", &serial);
    let par = time_n(n, || {
        hive_par::with_threads(4, || {
            std::hint::black_box(corpus.tfidf_batch(&tfs));
        });
    });
    report("tfidf_batch_200_t4", &par);
    metric("tfidf_t4_vs_t1_speedup", mean(&serial) / mean(&par));
}

fn bench_keyphrases() {
    header("text_keyphrases");
    report_header();
    for (paragraphs, n) in [(1usize, 100), (10, 20)] {
        let doc = long_document(paragraphs);
        let samples = time_n(iters(n, 5), || {
            std::hint::black_box(extract_keyphrases(&doc, KeyphraseConfig::default()));
        });
        report(&format!("{paragraphs}_paragraphs"), &samples);
    }
}

fn bench_snippets() {
    header("text_snippets");
    report_header();
    for (paragraphs, n) in [(5usize, 100), (40, 20)] {
        let doc = long_document(paragraphs);
        let samples = time_n(iters(n, 5), || {
            std::hint::black_box(extract_snippet(
                &doc,
                &["tensor streams", "change detection"],
                SnippetConfig::default(),
            ));
        });
        report(&format!("{paragraphs}_paragraphs"), &samples);
    }
}

fn random_activity_table(rows: usize, seed: u64) -> Table {
    let mut who = ValueLattice::new("*");
    for org in 0..5 {
        who.add_child("*", format!("org{org}"));
        for u in 0..20 {
            who.add_child(format!("org{org}"), format!("user{org}_{u}"));
        }
    }
    let mut place = ValueLattice::new("*");
    for t in 0..4 {
        place.add_child("*", format!("track{t}"));
        for s in 0..5 {
            place.add_child(format!("track{t}"), format!("session{t}_{s}"));
        }
    }
    let mut what = ValueLattice::new("*");
    for a in ["checkin", "question", "view"] {
        what.add_child("*", a);
    }
    let mut table = Table::new(
        vec!["who".into(), "where".into(), "what".into()],
        vec![who, place, what],
    );
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..rows {
        table.push_row(vec![
            format!("user{}_{}", rng.gen_range(0..5usize), rng.gen_range(0..20usize)),
            format!("session{}_{}", rng.gen_range(0..4usize), rng.gen_range(0..5usize)),
            ["checkin", "question", "view"][rng.gen_range(0..3usize)].to_string(),
        ]);
    }
    table
}

fn bench_alphasum() {
    header("text_alphasum_greedy_k8");
    report_header();
    for (rows, n) in [(100usize, 10), (400, 5)] {
        let table = random_activity_table(rows, 1);
        let samples = time_n(iters(n, 2), || {
            std::hint::black_box(summarize_table(
                &table,
                SummaryConfig { max_rows: 8, strategy: Strategy::Greedy },
            ));
        });
        report(&format!("{rows}_rows"), &samples);
    }
}

fn main() {
    println!("bench_text — text substrate microbenchmarks");
    bench_tokenize();
    bench_tfidf();
    bench_keyphrases();
    bench_snippets();
    bench_alphasum();
    write_json_fragment("bench_text");
}
