//! Context propagation through the integrated network (paper §2.3).
//!
//! "Once all the concepts are extracted and ranked (based on the context),
//! Hive propagates the concepts within the relevant neighborhoods of the
//! knowledge network using adaptation strategies, based on the current
//! active context (defined by the workpad)."
//!
//! Seeds (workpad concepts with activation levels) spread through the
//! integrated graph with per-hop decay; the resulting activation map is
//! what the discovery services use to rank resources.

use hive_graph::{personalized_pagerank, Graph, NodeId, PprConfig};
use std::collections::HashMap;

/// Propagation parameters.
#[derive(Clone, Copy, Debug)]
pub struct PropagationConfig {
    /// Probability of continuing to spread per step (PPR damping).
    pub decay: f64,
    /// Convergence tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig { decay: 0.7, tolerance: 1e-9, max_iters: 100 }
    }
}

/// Spreads activation from `seeds` (node key -> initial activation) over
/// `graph`, returning activation per node key, normalized so the maximum
/// activation is 1. Unknown seed keys are ignored; returns an empty map
/// if no seed is known.
pub fn propagate(
    graph: &Graph,
    seeds: &HashMap<String, f64>,
    cfg: PropagationConfig,
) -> HashMap<String, f64> {
    let mut seed_ids: HashMap<NodeId, f64> = HashMap::new();
    for (key, &mass) in seeds {
        if mass <= 0.0 {
            continue;
        }
        if let Some(id) = graph.node(key) {
            *seed_ids.entry(id).or_insert(0.0) += mass;
        }
    }
    if seed_ids.is_empty() {
        return HashMap::new();
    }
    let ppr = personalized_pagerank(
        graph,
        &seed_ids,
        PprConfig { damping: cfg.decay, tolerance: cfg.tolerance, max_iters: cfg.max_iters },
    );
    let max = ppr.iter().cloned().fold(0.0f64, f64::max);
    if max == 0.0 {
        return HashMap::new();
    }
    graph
        .nodes()
        .filter(|n| ppr[n.index()] > 0.0)
        .map(|n| (graph.key(n).to_string(), ppr[n.index()] / max))
        .collect()
}

/// The `k` most activated node keys, descending, excluding the seeds
/// themselves (the interesting output: what the context *reaches*).
pub fn top_activated(
    graph: &Graph,
    seeds: &HashMap<String, f64>,
    k: usize,
    cfg: PropagationConfig,
) -> Vec<(String, f64)> {
    let act = propagate(graph, seeds, cfg);
    let mut out: Vec<(String, f64)> = act
        .into_iter()
        .filter(|(key, _)| !seeds.contains_key(key))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..5).map(|i| g.add_node(format!("c{i}"))).collect();
        for w in ids.windows(2) {
            g.add_undirected_edge(w[0], w[1], 1.0);
        }
        g
    }

    #[test]
    fn activation_decays_with_distance() {
        let g = path_graph();
        let mut seeds = HashMap::new();
        seeds.insert("c0".to_string(), 1.0);
        let act = propagate(&g, &seeds, PropagationConfig::default());
        assert!((act["c0"] - 1.0).abs() < 1e-9, "seed is maximal");
        assert!(act["c1"] > act["c2"]);
        assert!(act["c2"] > act["c3"]);
    }

    #[test]
    fn unknown_seeds_ignored() {
        let g = path_graph();
        let mut seeds = HashMap::new();
        seeds.insert("ghost".to_string(), 1.0);
        assert!(propagate(&g, &seeds, PropagationConfig::default()).is_empty());
        seeds.insert("c0".to_string(), 1.0);
        assert!(!propagate(&g, &seeds, PropagationConfig::default()).is_empty());
    }

    #[test]
    fn multiple_seeds_blend() {
        let g = path_graph();
        let mut seeds = HashMap::new();
        seeds.insert("c0".to_string(), 1.0);
        seeds.insert("c4".to_string(), 1.0);
        let act = propagate(&g, &seeds, PropagationConfig::default());
        // Middle node gets activation from both ends: more than with one seed.
        let mut single = HashMap::new();
        single.insert("c0".to_string(), 1.0);
        let act_single = propagate(&g, &single, PropagationConfig::default());
        assert!(act["c2"] > act_single["c2"]);
    }

    #[test]
    fn top_activated_excludes_seeds() {
        let g = path_graph();
        let mut seeds = HashMap::new();
        seeds.insert("c0".to_string(), 1.0);
        let top = top_activated(&g, &seeds, 10, PropagationConfig::default());
        assert!(!top.iter().any(|(k, _)| k == "c0"));
        assert_eq!(top[0].0, "c1", "nearest node ranks first");
    }

    #[test]
    fn higher_decay_reaches_further() {
        let g = path_graph();
        let mut seeds = HashMap::new();
        seeds.insert("c0".to_string(), 1.0);
        let near = propagate(
            &g,
            &seeds,
            PropagationConfig { decay: 0.3, ..Default::default() },
        );
        let far = propagate(
            &g,
            &seeds,
            PropagationConfig { decay: 0.9, ..Default::default() },
        );
        // Relative activation at distance 4 grows with decay.
        let r_near = near.get("c4").copied().unwrap_or(0.0);
        let r_far = far.get("c4").copied().unwrap_or(0.0);
        assert!(r_far > r_near, "{r_far} > {r_near}");
    }
}
