//! Concept-map bootstrapping from documents (paper §2.1, ref \[10\]).
//!
//! "To support services where the activity context is determined by
//! external materials, we apply novel concept map bootstrapping algorithms
//! that rely on user highlights, bookmarks, notes, or documents. These
//! algorithms extract, in a semi-automated manner, dominant concepts and
//! their relationships specific to a given material."
//!
//! Pipeline: per-document TextRank keyphrases become candidate concepts
//! (significance = normalized rank score, max-combined across documents);
//! concepts co-occurring in a document are related with a strength derived
//! from their co-occurrence rate (a PMI-flavored score clamped to (0,1]).

use crate::map::ConceptMap;
use hive_text::keyphrase::{extract_keyphrases, KeyphraseConfig};
use std::collections::{HashMap, HashSet};

/// Bootstrapping parameters.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapConfig {
    /// Keyphrases taken per document.
    pub per_doc_concepts: usize,
    /// Minimum number of co-occurring documents for a relation.
    pub min_cooccurrence: usize,
    /// Keyphrase extraction settings.
    pub keyphrase: KeyphraseConfig,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            per_doc_concepts: 8,
            min_cooccurrence: 1,
            keyphrase: KeyphraseConfig::default(),
        }
    }
}

/// Builds a concept map named `name` from `documents`.
pub fn bootstrap_concept_map(
    name: &str,
    documents: &[&str],
    cfg: BootstrapConfig,
) -> ConceptMap {
    let mut map = ConceptMap::new(name);
    // Which concepts appear in which documents.
    let mut doc_concepts: Vec<HashSet<String>> = Vec::with_capacity(documents.len());
    for doc in documents {
        let kcfg = KeyphraseConfig { top_k: cfg.per_doc_concepts, ..cfg.keyphrase };
        let phrases = extract_keyphrases(doc, kcfg);
        if phrases.is_empty() {
            doc_concepts.push(HashSet::new());
            continue;
        }
        let max_score = phrases[0].score.max(f64::MIN_POSITIVE);
        let mut present = HashSet::new();
        for kp in &phrases {
            let significance = (kp.score / max_score).clamp(f64::MIN_POSITIVE, 1.0);
            map.add_concept(kp.phrase.clone(), significance);
            present.insert(kp.phrase.clone());
        }
        doc_concepts.push(present);
    }
    // Co-occurrence counts.
    let mut pair_count: HashMap<(String, String), usize> = HashMap::new();
    let mut single_count: HashMap<String, usize> = HashMap::new();
    for present in &doc_concepts {
        let mut sorted: Vec<&String> = present.iter().collect();
        sorted.sort();
        for c in &sorted {
            *single_count.entry((*c).clone()).or_insert(0) += 1;
        }
        for (i, a) in sorted.iter().enumerate() {
            for b in &sorted[i + 1..] {
                *pair_count
                    .entry(((*a).clone(), (*b).clone()))
                    .or_insert(0) += 1;
            }
        }
    }
    let n_docs = documents.len().max(1) as f64;
    for ((a, b), cnt) in pair_count {
        if cnt < cfg.min_cooccurrence {
            continue;
        }
        // Pointwise-mutual-information-flavored strength, squashed to (0,1]:
        // P(a,b) / (P(a) * P(b)) >= 1 when co-occurrence beats independence.
        let pa = single_count[&a] as f64 / n_docs;
        let pb = single_count[&b] as f64 / n_docs;
        let pab = cnt as f64 / n_docs;
        let lift = pab / (pa * pb);
        let strength = (1.0 - (-lift).exp()).clamp(f64::MIN_POSITIVE, 1.0);
        map.add_relation(&a, &b, strength);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "Tensor streams model evolving social networks. Compressed sensing \
             of tensor streams enables scalable monitoring of social networks.",
            "Structural change detection in tensor streams benefits from \
             randomized tensor ensembles. Change detection must be fast.",
            "Community discovery in social networks tracks evolving communities \
             over time. Social networks change as communities split and merge.",
        ]
    }

    #[test]
    fn dominant_concepts_extracted() {
        let map = bootstrap_concept_map("mm", &corpus(), BootstrapConfig::default());
        assert!(map.concept_count() > 3);
        let names: Vec<&str> = map.concepts().map(|(c, _)| c).collect();
        assert!(
            names.iter().any(|c| c.contains("tensor")),
            "expected tensor concept in {names:?}"
        );
        assert!(
            names.iter().any(|c| c.contains("social") || c.contains("network")),
            "expected social-network concept in {names:?}"
        );
    }

    #[test]
    fn significances_are_valid() {
        let map = bootstrap_concept_map("mm", &corpus(), BootstrapConfig::default());
        for (_, s) in map.concepts() {
            assert!(s > 0.0 && s <= 1.0);
        }
        for (_, _, w) in map.relations() {
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn cooccurring_concepts_are_related() {
        let map = bootstrap_concept_map("mm", &corpus(), BootstrapConfig::default());
        assert!(map.relation_count() > 0, "co-occurring concepts should link");
    }

    #[test]
    fn min_cooccurrence_prunes() {
        let loose = bootstrap_concept_map(
            "mm",
            &corpus(),
            BootstrapConfig { min_cooccurrence: 1, ..Default::default() },
        );
        let strict = bootstrap_concept_map(
            "mm",
            &corpus(),
            BootstrapConfig { min_cooccurrence: 3, ..Default::default() },
        );
        assert!(strict.relation_count() <= loose.relation_count());
    }

    #[test]
    fn empty_corpus() {
        let map = bootstrap_concept_map("empty", &[], BootstrapConfig::default());
        assert_eq!(map.concept_count(), 0);
        assert_eq!(map.relation_count(), 0);
    }

    #[test]
    fn deterministic() {
        let a = bootstrap_concept_map("mm", &corpus(), BootstrapConfig::default());
        let b = bootstrap_concept_map("mm", &corpus(), BootstrapConfig::default());
        assert_eq!(a.concept_count(), b.concept_count());
        assert_eq!(a.relation_count(), b.relation_count());
    }
}
