//! Concept-map evolution: diffing two snapshots of a layer.
//!
//! The paper stresses that Hive's knowledge structures are "dynamically
//! evolving". A [`ConceptMapDelta`] captures exactly what changed between
//! two snapshots of the same layer (e.g. the papers layer before and
//! after a new edition's proceedings land): concepts and relations that
//! appeared, disappeared, or changed strength — plus a scalar magnitude
//! that can feed the same change detectors SCENT uses.

use crate::map::ConceptMap;
use std::collections::HashSet;

/// The difference between an `old` and a `new` concept map.
#[derive(Clone, Debug, Default)]
pub struct ConceptMapDelta {
    /// Concepts present only in the new map, with their significance.
    pub added_concepts: Vec<(String, f64)>,
    /// Concepts present only in the old map.
    pub removed_concepts: Vec<(String, f64)>,
    /// Concepts in both whose significance changed: `(name, old, new)`.
    pub reweighted_concepts: Vec<(String, f64, f64)>,
    /// Relations present only in the new map: `(a, b, strength)`.
    pub added_relations: Vec<(String, String, f64)>,
    /// Relations present only in the old map.
    pub removed_relations: Vec<(String, String, f64)>,
    /// Relations in both whose strength changed: `(a, b, old, new)`.
    pub reweighted_relations: Vec<(String, String, f64, f64)>,
}

impl ConceptMapDelta {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added_concepts.is_empty()
            && self.removed_concepts.is_empty()
            && self.reweighted_concepts.is_empty()
            && self.added_relations.is_empty()
            && self.removed_relations.is_empty()
            && self.reweighted_relations.is_empty()
    }

    /// A scalar change magnitude: adds/removes count 1 each, reweights
    /// count their absolute significance/strength shift. Comparable
    /// across epochs of the same layer, so a stream of magnitudes can be
    /// fed to the SCENT-style detectors.
    pub fn magnitude(&self) -> f64 {
        self.added_concepts.len() as f64
            + self.removed_concepts.len() as f64
            + self.added_relations.len() as f64
            + self.removed_relations.len() as f64
            + self
                .reweighted_concepts
                .iter()
                .map(|(_, o, n)| (o - n).abs())
                .sum::<f64>()
            + self
                .reweighted_relations
                .iter()
                .map(|(_, _, o, n)| (o - n).abs())
                .sum::<f64>()
    }

    /// Renders a short human-readable changelog.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (c, s) in &self.added_concepts {
            out.push_str(&format!("+ concept {c:?} ({s:.2})\n"));
        }
        for (c, _) in &self.removed_concepts {
            out.push_str(&format!("- concept {c:?}\n"));
        }
        for (c, o, n) in &self.reweighted_concepts {
            out.push_str(&format!("~ concept {c:?} {o:.2} -> {n:.2}\n"));
        }
        for (a, b, w) in &self.added_relations {
            out.push_str(&format!("+ relation {a:?} -- {b:?} ({w:.2})\n"));
        }
        for (a, b, _) in &self.removed_relations {
            out.push_str(&format!("- relation {a:?} -- {b:?}\n"));
        }
        for (a, b, o, n) in &self.reweighted_relations {
            out.push_str(&format!("~ relation {a:?} -- {b:?} {o:.2} -> {n:.2}\n"));
        }
        out
    }
}

/// Computes the delta from `old` to `new`. Reweights below `tolerance`
/// are ignored (bootstrap scores jitter slightly between runs).
pub fn diff_maps(old: &ConceptMap, new: &ConceptMap, tolerance: f64) -> ConceptMapDelta {
    let mut delta = ConceptMapDelta::default();
    let old_names: HashSet<&str> = old.concepts().map(|(c, _)| c).collect();
    let new_names: HashSet<&str> = new.concepts().map(|(c, _)| c).collect();
    for (c, s) in new.concepts() {
        match old.significance(c) {
            None => delta.added_concepts.push((c.to_string(), s)),
            Some(o) if (o - s).abs() > tolerance => {
                delta.reweighted_concepts.push((c.to_string(), o, s));
            }
            Some(_) => {}
        }
    }
    for (c, s) in old.concepts() {
        if !new_names.contains(c) {
            delta.removed_concepts.push((c.to_string(), s));
        }
    }
    let _ = old_names; // clarity: membership checks above use significance()
    for (a, b, w) in new.relations() {
        match old.relation(a, b) {
            None => delta.added_relations.push((a.to_string(), b.to_string(), w)),
            Some(o) if (o - w).abs() > tolerance => {
                delta
                    .reweighted_relations
                    .push((a.to_string(), b.to_string(), o, w));
            }
            Some(_) => {}
        }
    }
    for (a, b, w) in old.relations() {
        if new.relation(a, b).is_none() {
            delta.removed_relations.push((a.to_string(), b.to_string(), w));
        }
    }
    // Deterministic ordering for stable output.
    delta.added_concepts.sort_by(|x, y| x.0.cmp(&y.0));
    delta.removed_concepts.sort_by(|x, y| x.0.cmp(&y.0));
    delta.reweighted_concepts.sort_by(|x, y| x.0.cmp(&y.0));
    delta.added_relations.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
    delta.removed_relations.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
    delta.reweighted_relations.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ConceptMap {
        let mut m = ConceptMap::new("papers");
        m.add_concept("tensor streams", 0.9);
        m.add_concept("change detection", 0.6);
        m.add_relation("tensor streams", "change detection", 0.5);
        m
    }

    #[test]
    fn identical_maps_have_empty_delta() {
        let m = base();
        let d = diff_maps(&m, &m, 1e-9);
        assert!(d.is_empty());
        assert_eq!(d.magnitude(), 0.0);
        assert!(d.render().is_empty());
    }

    #[test]
    fn additions_and_removals_detected() {
        let old = base();
        let mut new = base();
        new.add_concept("graph communities", 0.7);
        new.add_relation("tensor streams", "graph communities", 0.4);
        let d = diff_maps(&old, &new, 1e-9);
        assert_eq!(d.added_concepts.len(), 1);
        assert_eq!(d.added_concepts[0].0, "graph communities");
        assert_eq!(d.added_relations.len(), 1);
        assert!(d.removed_concepts.is_empty());
        // Reverse direction: same items flagged as removals.
        let r = diff_maps(&new, &old, 1e-9);
        assert_eq!(r.removed_concepts.len(), 1);
        assert_eq!(r.removed_relations.len(), 1);
        assert_eq!(d.magnitude(), r.magnitude());
    }

    #[test]
    fn reweights_respect_tolerance() {
        let old = base();
        let mut new = ConceptMap::new("papers");
        new.add_concept("tensor streams", 0.95); // +0.05
        new.add_concept("change detection", 0.6);
        new.add_relation("tensor streams", "change detection", 0.5);
        let strict = diff_maps(&old, &new, 0.01);
        assert_eq!(strict.reweighted_concepts.len(), 1);
        assert!((strict.magnitude() - 0.05).abs() < 1e-9);
        let loose = diff_maps(&old, &new, 0.1);
        assert!(loose.is_empty(), "within tolerance = no change");
    }

    #[test]
    fn changelog_renders_all_kinds() {
        let old = base();
        let mut new = ConceptMap::new("papers");
        new.add_concept("tensor streams", 0.5); // reweighted
        new.add_concept("fresh", 0.3); // added
        // "change detection" removed, relation removed, new relation added.
        new.add_relation("tensor streams", "fresh", 0.2);
        let d = diff_maps(&old, &new, 0.01);
        let text = d.render();
        assert!(text.contains("+ concept \"fresh\""));
        assert!(text.contains("- concept \"change detection\""));
        assert!(text.contains("~ concept \"tensor streams\""));
        assert!(text.contains("+ relation"));
        assert!(text.contains("- relation"));
    }

    #[test]
    fn magnitude_stream_feeds_change_detection() {
        // Epochs of slowly drifting maps with one structural jump.
        let mut epochs: Vec<ConceptMap> = Vec::new();
        for e in 0..10 {
            let mut m = base();
            if e >= 6 {
                // Structural change: a whole new concept cluster.
                for i in 0..5 {
                    m.add_concept(format!("new concept {i}"), 0.5);
                }
            }
            epochs.push(m);
        }
        let magnitudes: Vec<f64> = epochs
            .windows(2)
            .map(|w| diff_maps(&w[0], &w[1], 1e-9).magnitude())
            .collect();
        let jump = magnitudes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i + 1)
            .expect("non-empty");
        assert_eq!(jump, 6, "magnitudes: {magnitudes:?}");
    }
}
