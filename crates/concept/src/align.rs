//! Imprecise alignment between two knowledge layers (paper §2.2).
//!
//! "Integration of layers starts with an alignment phase, which requires
//! identification of mappings between concepts and relationships among
//! different layers. ... since layers can conflict or reinforce each
//! other, the result of the alignment process is imprecise."
//!
//! A candidate link between concept `a` (layer A) and concept `b`
//! (layer B) is scored by a convex combination of:
//!
//! * **lexical similarity** — token-level Jaccard of the concept names
//!   (after the standard normalization), and
//! * **structural similarity** — Jaccard of the *lexically matched*
//!   neighborhoods: how many of `a`'s neighbors have a name-equal
//!   counterpart among `b`'s neighbors.
//!
//! Links below `threshold` are discarded; the result is intentionally
//! many-to-many, preserving the paper's imprecision.

use crate::map::ConceptMap;
use hive_text::tokenize::tokenize_filtered;
use std::collections::HashSet;

/// One alignment link between two layers' concepts.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignmentLink {
    /// Concept in the first map.
    pub a: String,
    /// Concept in the second map.
    pub b: String,
    /// Combined confidence in `(0, 1]`.
    pub score: f64,
}

/// The (imprecise) alignment between two maps.
#[derive(Clone, Debug, Default)]
pub struct Alignment {
    /// Accepted links, strongest first.
    pub links: Vec<AlignmentLink>,
}

impl Alignment {
    /// Links involving concept `a` of the first map.
    pub fn links_of_a<'s>(&'s self, a: &'s str) -> impl Iterator<Item = &'s AlignmentLink> + 's {
        self.links.iter().filter(move |l| l.a == a)
    }

    /// Mean link score (0 when empty) — the "alignment quality" reported
    /// by the Figure 3 harness.
    pub fn mean_score(&self) -> f64 {
        if self.links.is_empty() {
            0.0
        } else {
            self.links.iter().map(|l| l.score).sum::<f64>() / self.links.len() as f64
        }
    }
}

/// Alignment parameters.
#[derive(Clone, Copy, Debug)]
pub struct AlignConfig {
    /// Weight of lexical similarity vs structural (in `[0,1]`).
    pub lexical_weight: f64,
    /// Minimum combined score for a link to be kept.
    pub threshold: f64,
    /// If false, skip the structural term entirely (ablation flag for the
    /// Figure 3 experiment).
    pub use_structure: bool,
}

impl Default for AlignConfig {
    fn default() -> Self {
        AlignConfig { lexical_weight: 0.7, threshold: 0.35, use_structure: true }
    }
}

fn name_tokens(name: &str) -> HashSet<String> {
    tokenize_filtered(name).into_iter().collect()
}

fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    inter as f64 / union as f64
}

/// Aligns two concept maps.
pub fn align_maps(ma: &ConceptMap, mb: &ConceptMap, cfg: AlignConfig) -> Alignment {
    // Pre-tokenize all names.
    let a_names: Vec<(&str, HashSet<String>)> =
        ma.concepts().map(|(c, _)| (c, name_tokens(c))).collect();
    let b_names: Vec<(&str, HashSet<String>)> =
        mb.concepts().map(|(c, _)| (c, name_tokens(c))).collect();
    let mut links = Vec::new();
    for (ca, ta) in &a_names {
        for (cb, tb) in &b_names {
            let lexical = jaccard(ta, tb);
            if lexical == 0.0 && cfg.use_structure {
                // Without any lexical anchor the structural term alone is
                // too weak a signal; skip early for speed.
                continue;
            }
            let structural = if cfg.use_structure {
                neighborhood_similarity(ma, ca, mb, cb)
            } else {
                0.0
            };
            let w = if cfg.use_structure { cfg.lexical_weight } else { 1.0 };
            let score = w * lexical + (1.0 - w) * structural;
            if score >= cfg.threshold {
                links.push(AlignmentLink {
                    a: (*ca).to_string(),
                    b: (*cb).to_string(),
                    score: score.clamp(0.0, 1.0),
                });
            }
        }
    }
    links.sort_by(|x, y| {
        y.score
            .total_cmp(&x.score)
            .then_with(|| (x.a.as_str(), x.b.as_str()).cmp(&(y.a.as_str(), y.b.as_str())))
    });
    Alignment { links }
}

/// Jaccard over lexically matched neighbor names.
fn neighborhood_similarity(ma: &ConceptMap, ca: &str, mb: &ConceptMap, cb: &str) -> f64 {
    let na: Vec<HashSet<String>> = ma.neighbors(ca).map(|(n, _)| name_tokens(n)).collect();
    let nb: Vec<HashSet<String>> = mb.neighbors(cb).map(|(n, _)| name_tokens(n)).collect();
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    // A neighbor of `a` is "matched" if some neighbor of `b` shares more
    // than half of its tokens.
    let matched_a = na
        .iter()
        .filter(|ta| nb.iter().any(|tb| jaccard(ta, tb) > 0.5))
        .count();
    let matched_b = nb
        .iter()
        .filter(|tb| na.iter().any(|ta| jaccard(ta, tb) > 0.5))
        .count();
    (matched_a + matched_b) as f64 / (na.len() + nb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_a() -> ConceptMap {
        let mut m = ConceptMap::new("papers");
        m.add_concept("tensor streams", 0.9);
        m.add_concept("social networks", 0.8);
        m.add_concept("change detection", 0.7);
        m.add_relation("tensor streams", "change detection", 0.8);
        m.add_relation("tensor streams", "social networks", 0.6);
        m
    }

    fn layer_b() -> ConceptMap {
        let mut m = ConceptMap::new("sessions");
        m.add_concept("tensor stream", 0.9); // singular: stems align
        m.add_concept("social network analysis", 0.8);
        m.add_concept("query optimization", 0.6);
        m.add_relation("tensor stream", "social network analysis", 0.5);
        m
    }

    #[test]
    fn lexical_matches_found() {
        let al = align_maps(&layer_a(), &layer_b(), AlignConfig::default());
        assert!(
            al.links
                .iter()
                .any(|l| l.a == "tensor streams" && l.b == "tensor stream"),
            "expected tensor link in {:?}",
            al.links
        );
        assert!(
            al.links
                .iter()
                .any(|l| l.a == "social networks" && l.b == "social network analysis"),
            "expected social link in {:?}",
            al.links
        );
    }

    #[test]
    fn unrelated_concepts_not_linked() {
        let al = align_maps(&layer_a(), &layer_b(), AlignConfig::default());
        assert!(!al
            .links
            .iter()
            .any(|l| l.b == "query optimization"), "{:?}", al.links);
    }

    #[test]
    fn links_sorted_by_score() {
        let al = align_maps(&layer_a(), &layer_b(), AlignConfig::default());
        for w in al.links.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn threshold_filters() {
        let loose = align_maps(
            &layer_a(),
            &layer_b(),
            AlignConfig { threshold: 0.05, ..Default::default() },
        );
        let strict = align_maps(
            &layer_a(),
            &layer_b(),
            AlignConfig { threshold: 0.9, ..Default::default() },
        );
        assert!(strict.links.len() <= loose.links.len());
    }

    #[test]
    fn structure_raises_confidence_of_consistent_links() {
        let with = align_maps(&layer_a(), &layer_b(), AlignConfig::default());
        let without = align_maps(
            &layer_a(),
            &layer_b(),
            AlignConfig { use_structure: false, ..Default::default() },
        );
        let f = |al: &Alignment| {
            al.links
                .iter()
                .find(|l| l.a == "tensor streams" && l.b == "tensor stream")
                .map(|l| l.score)
        };
        let (sw, so) = (f(&with), f(&without));
        assert!(sw.is_some() && so.is_some());
        // tensor<->tensor has a structurally consistent neighborhood
        // (both relate to the social-network concept): structure helps.
        assert!(sw.unwrap() >= so.unwrap() * 0.7 - 1e-9);
    }

    #[test]
    fn mean_score_and_links_of() {
        let al = align_maps(&layer_a(), &layer_b(), AlignConfig::default());
        assert!(al.mean_score() > 0.0);
        assert!(al.links_of_a("tensor streams").count() >= 1);
        let empty = Alignment::default();
        assert_eq!(empty.mean_score(), 0.0);
    }
}
