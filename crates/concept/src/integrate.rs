//! The integrated multi-layer "context network" of paper Figure 3.
//!
//! Hive's knowledge network stacks layers — user connections, concept
//! maps, co-authorship, content, contextual knowledge — and "uses the
//! multiple context layers ... in an integrated manner" for search and
//! recommendation. A [`ContextNetwork`] owns one [`ConceptMap`] per layer
//! plus the pairwise [`Alignment`]s, and can:
//!
//! * fuse everything into a single weighted [`hive_graph::Graph`] whose
//!   node keys are `"<layer>::<concept>"` (intra-layer relation edges +
//!   cross-layer alignment edges),
//! * export itself to a [`hive_store::TripleStore`] for ranked path
//!   queries, and
//! * report per-layer inventories (the Figure 3 harness output).

use crate::align::{align_maps, AlignConfig, Alignment};
use crate::map::ConceptMap;
use hive_graph::Graph;
use hive_store::{StoreError, Term, TripleStore};

/// Index of a layer within the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub usize);

/// One knowledge layer: a named concept map with a trust weight.
#[derive(Clone, Debug)]
pub struct Layer {
    /// The layer's concept map (its name is the layer name).
    pub map: ConceptMap,
    /// Trust weight in `(0, 1]`, scaling this layer's contribution.
    pub weight: f64,
}

/// The integrated context network.
#[derive(Clone, Debug, Default)]
pub struct ContextNetwork {
    layers: Vec<Layer>,
    /// `(a, b, alignment)` with `a < b`, computed on demand.
    alignments: Vec<(LayerId, LayerId, Alignment)>,
}

impl ContextNetwork {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a layer; returns its id. Panics if `weight` is not in (0,1].
    pub fn add_layer(&mut self, map: ConceptMap, weight: f64) -> LayerId {
        assert!(weight > 0.0 && weight <= 1.0, "layer weight in (0,1], got {weight}");
        self.layers.push(Layer { map, weight });
        LayerId(self.layers.len() - 1)
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Access a layer.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    /// All layers with their ids.
    pub fn layers(&self) -> impl Iterator<Item = (LayerId, &Layer)> {
        self.layers.iter().enumerate().map(|(i, l)| (LayerId(i), l))
    }

    /// Computes alignments between every pair of layers.
    pub fn align_all(&mut self, cfg: AlignConfig) {
        self.alignments.clear();
        for i in 0..self.layers.len() {
            for j in (i + 1)..self.layers.len() {
                let al = align_maps(&self.layers[i].map, &self.layers[j].map, cfg);
                self.alignments.push((LayerId(i), LayerId(j), al));
            }
        }
    }

    /// The alignment between two layers, if computed.
    pub fn alignment(&self, a: LayerId, b: LayerId) -> Option<&Alignment> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.alignments
            .iter()
            .find(|(x, y, _)| *x == lo && *y == hi)
            .map(|(_, _, al)| al)
    }

    /// Pairwise mean alignment scores — the "alignment quality matrix"
    /// reported by the Figure 3 harness. Entry `(i, j)` is 0 on the
    /// diagonal and for uncomputed pairs.
    pub fn alignment_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.layers.len();
        let mut m = vec![vec![0.0; n]; n];
        for (a, b, al) in &self.alignments {
            let s = al.mean_score();
            m[a.0][b.0] = s;
            m[b.0][a.0] = s;
        }
        m
    }

    /// Qualified node key for a layer concept.
    pub fn node_key(&self, layer: LayerId, concept: &str) -> String {
        format!("{}::{concept}", self.layers[layer.0].map.name())
    }

    /// Fuses all layers + alignments into one undirected weighted graph.
    ///
    /// Intra-layer relation weights are scaled by the layer's trust
    /// weight; cross-layer edges use the alignment link score scaled by
    /// `cross_layer_weight`.
    pub fn integrated_graph(&self, cross_layer_weight: f64) -> Graph {
        let mut g = Graph::new();
        for (lid, layer) in self.layers() {
            for (c, _) in layer.map.concepts() {
                g.add_node(self.node_key(lid, c));
            }
            for (a, b, w) in layer.map.relations() {
                let ua = g.add_node(self.node_key(lid, a));
                let ub = g.add_node(self.node_key(lid, b));
                g.add_undirected_edge(ua, ub, w * layer.weight);
            }
        }
        for (a, b, al) in &self.alignments {
            for link in &al.links {
                let ua = g.add_node(self.node_key(*a, &link.a));
                let ub = g.add_node(self.node_key(*b, &link.b));
                g.add_undirected_edge(ua, ub, link.score * cross_layer_weight);
            }
        }
        g
    }

    /// Exports the network as weighted RDF triples in a freshly built
    /// store: `concept --rel:related--> concept` (intra-layer),
    /// `concept --rel:aligned--> concept` (cross-layer), and
    /// `concept --rel:in_layer--> layer`.
    ///
    /// Returns an owned store rather than patching a caller-supplied
    /// `&mut TripleStore`: store mutation goes through the store's own
    /// typed mutators (lint R9), and the export is a pure function of
    /// the network anyway.
    pub fn export_store(&self) -> Result<TripleStore, StoreError> {
        let mut store = TripleStore::new();
        let related = Term::iri("rel:related");
        let aligned = Term::iri("rel:aligned");
        let in_layer = Term::iri("rel:in_layer");
        let mut n = 0;
        for (lid, layer) in self.layers() {
            let layer_term = Term::iri(format!("layer:{}", layer.map.name()));
            for (c, s) in layer.map.concepts() {
                let ct = Term::iri(self.node_key(lid, c));
                store.insert(ct, in_layer.clone(), layer_term.clone(), s)?;
                n += 1;
            }
            for (a, b, w) in layer.map.relations() {
                let ta = Term::iri(self.node_key(lid, a));
                let tb = Term::iri(self.node_key(lid, b));
                store.insert(ta, related.clone(), tb, (w * layer.weight).clamp(f64::MIN_POSITIVE, 1.0))?;
                n += 1;
            }
        }
        for (a, b, al) in &self.alignments {
            for link in &al.links {
                let ta = Term::iri(self.node_key(*a, &link.a));
                let tb = Term::iri(self.node_key(*b, &link.b));
                store.insert(ta, aligned.clone(), tb, link.score)?;
                n += 1;
            }
        }
        debug_assert_eq!(n, store.len());
        Ok(store)
    }

    /// Per-layer `(name, concepts, relations, weight)` inventory rows.
    pub fn inventory(&self) -> Vec<(String, usize, usize, f64)> {
        self.layers
            .iter()
            .map(|l| {
                (
                    l.map.name().to_string(),
                    l.map.concept_count(),
                    l.map.relation_count(),
                    l.weight,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer_network() -> ContextNetwork {
        let mut papers = ConceptMap::new("papers");
        papers.add_concept("tensor streams", 0.9);
        papers.add_concept("change detection", 0.7);
        papers.add_relation("tensor streams", "change detection", 0.8);
        let mut sessions = ConceptMap::new("sessions");
        sessions.add_concept("tensor stream", 0.8);
        sessions.add_concept("graph processing", 0.6);
        sessions.add_relation("tensor stream", "graph processing", 0.5);
        let mut net = ContextNetwork::new();
        net.add_layer(papers, 1.0);
        net.add_layer(sessions, 0.8);
        net.align_all(AlignConfig::default());
        net
    }

    #[test]
    fn layers_and_inventory() {
        let net = two_layer_network();
        assert_eq!(net.layer_count(), 2);
        let inv = net.inventory();
        assert_eq!(inv[0], ("papers".to_string(), 2, 1, 1.0));
        assert_eq!(inv[1].1, 2);
    }

    #[test]
    fn alignment_found_and_matrix_symmetric() {
        let net = two_layer_network();
        let al = net.alignment(LayerId(0), LayerId(1)).unwrap();
        assert!(!al.links.is_empty(), "tensor concepts should align");
        // Order-insensitive lookup.
        assert!(net.alignment(LayerId(1), LayerId(0)).is_some());
        let m = net.alignment_matrix();
        assert_eq!(m[0][1], m[1][0]);
        assert!(m[0][1] > 0.0);
        assert_eq!(m[0][0], 0.0);
    }

    #[test]
    fn integrated_graph_connects_layers() {
        let net = two_layer_network();
        let g = net.integrated_graph(0.9);
        assert_eq!(g.node_count(), 4);
        let a = g.node("papers::tensor streams").unwrap();
        let b = g.node("sessions::tensor stream").unwrap();
        assert!(g.edge_weight(a, b).is_some(), "cross-layer edge exists");
        // Intra-layer edge scaled by layer weight 0.8.
        let s1 = g.node("sessions::graph processing").unwrap();
        let w = g.edge_weight(b, s1).unwrap();
        assert!((w - 0.5 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn export_store_counts() {
        let net = two_layer_network();
        let st = net.export_store().unwrap();
        // 4 in_layer + 2 related + alignment links.
        assert!(st.len() >= 7, "got {}", st.len());
        // Path query across layers works on the exported store.
        let paths = hive_store::PathQuery::new(
            Term::iri("papers::change detection"),
            Term::iri("sessions::graph processing"),
        )
        .over_predicates(vec![Term::iri("rel:related"), Term::iri("rel:aligned")])
        .run(&st)
        .unwrap();
        assert!(!paths.is_empty(), "cross-layer path should exist");
    }

    #[test]
    fn empty_network() {
        let net = ContextNetwork::new();
        assert_eq!(net.layer_count(), 0);
        assert!(net.alignment_matrix().is_empty());
        let g = net.integrated_graph(1.0);
        assert_eq!(g.node_count(), 0);
    }
}
