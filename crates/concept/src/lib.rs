//! # hive-concept — concept maps and the layered context network
//!
//! Implements the knowledge structures of paper §2.1–§2.2:
//!
//! * [`ConceptMap`] — weighted concepts and relations ("the domain
//!   knowledge captured by the usage context includes concepts, their
//!   significance, ... and the strength of the inter-relationships"),
//! * **bootstrapping** — "novel concept map bootstrapping algorithms that
//!   rely on user highlights, bookmarks, notes, or documents" (ref \[10\]):
//!   documents in, weighted concept map out,
//! * **alignment** — the §2.2 integration phase: imprecise, weighted
//!   mappings between the concepts of two layers, combining lexical and
//!   structural similarity,
//! * **integration** — the multi-layer "context network" of Figure 3,
//!   which fuses layers plus alignment edges into one weighted graph and
//!   can export itself into a [`hive_store::TripleStore`],
//! * **propagation** — context propagation "within the relevant
//!   neighborhoods of the knowledge network using adaptation strategies"
//!   (§2.3), seeded by the active workpad.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod bootstrap;
pub mod evolve;
pub mod integrate;
pub mod map;
pub mod propagate;

pub use align::{align_maps, AlignConfig, Alignment, AlignmentLink};
pub use bootstrap::{bootstrap_concept_map, BootstrapConfig};
pub use evolve::{diff_maps, ConceptMapDelta};
pub use integrate::{ContextNetwork, Layer, LayerId};
pub use map::ConceptMap;
pub use propagate::{propagate, top_activated, PropagationConfig};
