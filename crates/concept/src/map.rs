//! Weighted concept maps: concepts with significance scores and weighted
//! inter-concept relations.

use std::collections::HashMap;

/// A concept map for one knowledge layer or document collection.
///
/// Concepts carry a *significance* in `(0, 1]`; relations carry a
/// *strength* in `(0, 1]`. Re-adding a concept/relation keeps the maximum
/// (observing a concept again can only reinforce it).
#[derive(Clone, Debug, Default)]
pub struct ConceptMap {
    name: String,
    concepts: HashMap<String, f64>,
    relations: HashMap<(String, String), f64>,
}

impl ConceptMap {
    /// Creates an empty map with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        ConceptMap { name: name.into(), ..Default::default() }
    }

    /// The map's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of (undirected) relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Adds a concept, keeping the max significance if it exists.
    ///
    /// Panics if `significance` is not in `(0, 1]`.
    pub fn add_concept(&mut self, concept: impl Into<String>, significance: f64) {
        assert!(
            significance > 0.0 && significance <= 1.0,
            "significance must be in (0,1], got {significance}"
        );
        let c = concept.into();
        let slot = self.concepts.entry(c).or_insert(0.0);
        if significance > *slot {
            *slot = significance;
        }
    }

    /// Significance of a concept, if present.
    pub fn significance(&self, concept: &str) -> Option<f64> {
        self.concepts.get(concept).copied()
    }

    /// True if the concept exists.
    pub fn contains(&self, concept: &str) -> bool {
        self.concepts.contains_key(concept)
    }

    fn ordered(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    /// Adds an undirected relation, keeping the max strength. Both
    /// endpoints must already be concepts.
    pub fn add_relation(&mut self, a: &str, b: &str, strength: f64) {
        assert!(
            strength > 0.0 && strength <= 1.0,
            "strength must be in (0,1], got {strength}"
        );
        assert!(self.contains(a), "unknown concept {a:?}");
        assert!(self.contains(b), "unknown concept {b:?}");
        if a == b {
            return;
        }
        let key = Self::ordered(a, b);
        let slot = self.relations.entry(key).or_insert(0.0);
        if strength > *slot {
            *slot = strength;
        }
    }

    /// Strength of the relation between `a` and `b`, if any.
    pub fn relation(&self, a: &str, b: &str) -> Option<f64> {
        self.relations.get(&Self::ordered(a, b)).copied()
    }

    /// Iterates `(concept, significance)`.
    pub fn concepts(&self) -> impl Iterator<Item = (&str, f64)> {
        self.concepts.iter().map(|(c, &s)| (c.as_str(), s))
    }

    /// Iterates `(a, b, strength)` with `a < b`.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.relations
            .iter()
            .map(|((a, b), &w)| (a.as_str(), b.as_str(), w))
    }

    /// Neighbors of `concept` with relation strengths.
    pub fn neighbors<'a>(&'a self, concept: &'a str) -> impl Iterator<Item = (&'a str, f64)> + 'a {
        self.relations.iter().filter_map(move |((a, b), &w)| {
            if a == concept {
                Some((b.as_str(), w))
            } else if b == concept {
                Some((a.as_str(), w))
            } else {
                None
            }
        })
    }

    /// Merges `other` into `self` (max-combining concepts and relations).
    pub fn merge(&mut self, other: &ConceptMap) {
        for (c, s) in other.concepts() {
            self.add_concept(c, s);
        }
        for (a, b, w) in other.relations() {
            self.add_relation(a, b, w);
        }
    }

    /// The `k` most significant concepts, descending.
    pub fn top_concepts(&self, k: usize) -> Vec<(&str, f64)> {
        let mut all: Vec<(&str, f64)> = self.concepts().collect();
        all.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(y.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concepts_max_combine() {
        let mut m = ConceptMap::new("test");
        m.add_concept("tensor", 0.4);
        m.add_concept("tensor", 0.8);
        m.add_concept("tensor", 0.2);
        assert_eq!(m.significance("tensor"), Some(0.8));
        assert_eq!(m.concept_count(), 1);
    }

    #[test]
    fn relations_are_undirected() {
        let mut m = ConceptMap::new("test");
        m.add_concept("a", 1.0);
        m.add_concept("b", 1.0);
        m.add_relation("b", "a", 0.5);
        assert_eq!(m.relation("a", "b"), Some(0.5));
        assert_eq!(m.relation("b", "a"), Some(0.5));
        assert_eq!(m.relation_count(), 1);
    }

    #[test]
    fn self_relations_ignored() {
        let mut m = ConceptMap::new("test");
        m.add_concept("a", 1.0);
        m.add_relation("a", "a", 0.5);
        assert_eq!(m.relation_count(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown concept")]
    fn relation_requires_concepts() {
        let mut m = ConceptMap::new("test");
        m.add_concept("a", 1.0);
        m.add_relation("a", "ghost", 0.5);
    }

    #[test]
    fn neighbors_listing() {
        let mut m = ConceptMap::new("test");
        for c in ["a", "b", "c"] {
            m.add_concept(c, 1.0);
        }
        m.add_relation("a", "b", 0.5);
        m.add_relation("a", "c", 0.7);
        let mut nbrs: Vec<_> = m.neighbors("a").collect();
        nbrs.sort_by(|a, b| a.0.cmp(b.0));
        assert_eq!(nbrs, vec![("b", 0.5), ("c", 0.7)]);
    }

    #[test]
    fn merge_max_combines() {
        let mut m1 = ConceptMap::new("m1");
        m1.add_concept("x", 0.3);
        let mut m2 = ConceptMap::new("m2");
        m2.add_concept("x", 0.9);
        m2.add_concept("y", 0.5);
        m2.add_relation("x", "y", 0.4);
        m1.merge(&m2);
        assert_eq!(m1.significance("x"), Some(0.9));
        assert_eq!(m1.relation("x", "y"), Some(0.4));
    }

    #[test]
    fn top_concepts_ordering() {
        let mut m = ConceptMap::new("test");
        m.add_concept("low", 0.1);
        m.add_concept("high", 0.9);
        m.add_concept("mid", 0.5);
        let top = m.top_concepts(2);
        assert_eq!(top[0].0, "high");
        assert_eq!(top[1].0, "mid");
    }
}
