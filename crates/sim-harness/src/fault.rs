//! Snapshot corruption: generate malformed snapshot JSON that a
//! correct loader must reject with a typed error.
//!
//! Every injector verifies its own work: a candidate corruption that
//! still parses as valid JSON (possible in principle for a bit flip)
//! is discarded and the next candidate tried, so a returned corruption
//! is guaranteed malformed at the JSON level — except for
//! [`FaultKind::VersionBump`] and [`FaultKind::FieldDrop`], which stay
//! well-formed JSON and must instead be rejected by the snapshot
//! decoder (version check, missing-field check).

use hive_core::{HiveDb, HiveError};
use hive_json::Json;
use hive_rng::Rng;
use hive_store::{StoreError, TripleStore};

/// The four corruption families injected at every crash point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The file was cut short mid-write.
    Truncate,
    /// A structural byte was damaged on disk.
    BitFlip,
    /// The snapshot came from an incompatible (future) format version.
    VersionBump,
    /// A top-level field went missing (e.g. a partial rewrite).
    FieldDrop,
}

impl FaultKind {
    /// All kinds, in injection order.
    pub const ALL: [FaultKind; 4] =
        [FaultKind::Truncate, FaultKind::BitFlip, FaultKind::VersionBump, FaultKind::FieldDrop];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::VersionBump => "version-bump",
            FaultKind::FieldDrop => "field-drop",
        }
    }

    /// Whether this corruption must surface specifically as a
    /// snapshot-version error (rather than any typed error).
    pub fn wants_version_error(self) -> bool {
        matches!(self, FaultKind::VersionBump)
    }
}

/// Produces a corrupted variant of `json`, or `None` when the input is
/// too small/oddly shaped for this fault kind to apply.
pub fn corrupt(json: &str, kind: FaultKind, rng: &mut Rng) -> Option<String> {
    match kind {
        FaultKind::Truncate => truncate(json, rng),
        FaultKind::BitFlip => bit_flip(json, rng),
        FaultKind::VersionBump => version_bump(json, rng),
        FaultKind::FieldDrop => field_drop(json, rng),
    }
}

fn truncate(json: &str, rng: &mut Rng) -> Option<String> {
    if json.len() < 2 {
        return None;
    }
    for _ in 0..8 {
        let mut cut = rng.gen_range(1..json.len());
        while cut > 0 && !json.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut == 0 {
            continue;
        }
        let cand = &json[..cut];
        // The parser requires the full input to be consumed, so any
        // proper prefix of an object fails; verify anyway.
        if Json::parse(cand).is_err() {
            return Some(cand.to_string());
        }
    }
    None
}

fn bit_flip(json: &str, rng: &mut Rng) -> Option<String> {
    let bytes = json.as_bytes();
    // Only structural bytes are targeted: flipping a digit or a letter
    // inside a string yields *valid* JSON with different content, which
    // a loader cannot be required to detect without checksums.
    let mut structural = Vec::new();
    let mut in_str = false;
    let mut esc = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
                structural.push(i);
            }
        } else {
            match b {
                b'"' => {
                    in_str = true;
                    structural.push(i);
                }
                b'{' | b'}' | b'[' | b']' | b':' | b',' => structural.push(i),
                _ => {}
            }
        }
    }
    if structural.is_empty() {
        return None;
    }
    let start = rng.gen_range(0..structural.len());
    for off in 0..structural.len().min(64) {
        let pos = structural[(start + off) % structural.len()];
        let mut cand = bytes.to_vec();
        cand[pos] ^= 0x01; // all targets are ASCII; stays ASCII
        if let Ok(s) = String::from_utf8(cand) {
            if Json::parse(&s).is_err() {
                return Some(s);
            }
        }
    }
    None
}

fn version_bump(json: &str, rng: &mut Rng) -> Option<String> {
    let mut doc = Json::parse(json).ok()?;
    let bump = rng.gen_range(1..997i64);
    {
        let Json::Obj(fields) = &mut doc else { return None };
        let slot = fields.iter_mut().find(|(k, _)| k == "version")?;
        let Json::Int(n) = &mut slot.1 else { return None };
        *n += bump;
    }
    Some(doc.render())
}

fn field_drop(json: &str, rng: &mut Rng) -> Option<String> {
    let mut doc = Json::parse(json).ok()?;
    {
        let Json::Obj(fields) = &mut doc else { return None };
        if fields.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..fields.len());
        fields.remove(idx);
    }
    Some(doc.render())
}

/// What loading a (possibly corrupted) snapshot did.
#[derive(Debug)]
pub enum LoadOutcome<T, E> {
    /// The loader accepted the input.
    Loaded(T),
    /// The loader rejected the input with a typed error.
    Rejected(E),
    /// The loader panicked — always a harness violation.
    Panicked(String),
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Loads a platform snapshot, converting panics into an outcome.
pub fn load_platform(json: &str) -> LoadOutcome<Box<HiveDb>, HiveError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| HiveDb::from_json(json))) {
        Ok(Ok(db)) => LoadOutcome::Loaded(Box::new(db)),
        Ok(Err(e)) => LoadOutcome::Rejected(e),
        Err(p) => LoadOutcome::Panicked(panic_text(p)),
    }
}

/// Loads a store snapshot, converting panics into an outcome.
pub fn load_store(json: &str) -> LoadOutcome<Box<TripleStore>, StoreError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| TripleStore::from_json(json))) {
        Ok(Ok(st)) => LoadOutcome::Loaded(Box::new(st)),
        Ok(Err(e)) => LoadOutcome::Rejected(e),
        Err(p) => LoadOutcome::Panicked(panic_text(p)),
    }
}
