//! Replication soak: drives a [`hive_replica::Cluster`] with a
//! seed-generated op stream under transport fault injection, and holds
//! the leader-vs-follower differential oracle at every checkpoint.
//!
//! The oracle generalizes the PR 3 recovery fingerprint to
//! replication: whenever the cluster is quiescent at a matching log
//! sequence number (after bounded healing), every streaming follower's
//! full query fingerprint must equal the leader's **bit-for-bit** —
//! same PPR scores, same search rankings, same feeds, down to the
//! float bits. Mid-soak the run also crashes and restarts a follower
//! (its replica state and in-flight frames vanish; it must re-bootstrap
//! from a checkpoint frame and converge), and optionally hands the
//! leadership to a caught-up follower, after which the oracle keeps
//! holding against the promoted instance.

use crate::oracle::fingerprint;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_replica::{Cluster, ClusterConfig, FaultPlan};
use hive_rng::Rng;

/// Which transport faults the soak arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMenu {
    /// Perfect channels.
    None,
    /// Drop + duplicate + reorder + truncate, all armed.
    All,
    /// Frame drops only.
    Drop,
    /// Duplicated frames only.
    Dup,
    /// Adjacent reorders only.
    Reorder,
    /// Truncated frames only.
    Truncate,
}

impl FaultMenu {
    /// Parses a `--faults` value.
    pub fn parse(s: &str) -> Option<FaultMenu> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" => Some(FaultMenu::None),
            "all" => Some(FaultMenu::All),
            "drop" => Some(FaultMenu::Drop),
            "dup" => Some(FaultMenu::Dup),
            "reorder" => Some(FaultMenu::Reorder),
            "truncate" => Some(FaultMenu::Truncate),
            _ => None,
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultMenu::None => "none",
            FaultMenu::All => "all",
            FaultMenu::Drop => "drop",
            FaultMenu::Dup => "dup",
            FaultMenu::Reorder => "reorder",
            FaultMenu::Truncate => "truncate",
        }
    }

    fn plan(self) -> FaultPlan {
        // Probabilities are per frame per follower; 0.12 keeps the
        // channel hostile enough to exercise every recovery path while
        // bounded healing still converges fast.
        match self {
            FaultMenu::None => FaultPlan::none(),
            FaultMenu::All => FaultPlan::all(0.12),
            FaultMenu::Drop => FaultPlan::drops(0.2),
            FaultMenu::Dup => FaultPlan::dups(0.2),
            FaultMenu::Reorder => FaultPlan::reorders(0.2),
            FaultMenu::Truncate => FaultPlan::truncates(0.2),
        }
    }
}

/// Replication-soak parameters; everything else derives from `seed`.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaSoakConfig {
    /// Master seed: world, op stream, fault schedules.
    pub seed: u64,
    /// Workload steps driven through the leader.
    pub steps: usize,
    /// Follower count.
    pub followers: usize,
    /// Armed transport faults.
    pub faults: FaultMenu,
    /// Researchers in the generated world (min 6).
    pub users: usize,
    /// Commit (seal + ship) every this many steps.
    pub commit_every: usize,
    /// Leader checkpoint cadence, in ops frames.
    pub checkpoint_every: u64,
    /// Crash follower 0 at this step (0 disables) and restart it
    /// `steps / 10` steps later.
    pub crash_at: usize,
    /// Hand leadership to follower 0 after the main loop and run a
    /// short post-failover tail under the same oracle.
    pub promote_at_end: bool,
}

impl Default for ReplicaSoakConfig {
    fn default() -> Self {
        ReplicaSoakConfig {
            seed: 42,
            steps: 200,
            followers: 2,
            faults: FaultMenu::All,
            users: 12,
            commit_every: 3,
            checkpoint_every: 6,
            crash_at: 0,
            promote_at_end: true,
        }
    }
}

/// Outcome of one replication soak.
#[derive(Clone, Debug, Default)]
pub struct ReplicaSoakReport {
    /// The seed that produced this report.
    pub seed: u64,
    /// Steps driven.
    pub steps_run: usize,
    /// Follower count.
    pub followers: usize,
    /// The armed fault menu label.
    pub faults: &'static str,
    /// Ops the leader accepted.
    pub ops_applied: usize,
    /// Ops the leader rejected (typed errors; never shipped).
    pub ops_rejected: usize,
    /// Log frames the leader sealed (ops + checkpoints).
    pub frames_sealed: u64,
    /// Fingerprint comparisons performed (leader vs follower at a
    /// matching sequence number).
    pub fingerprint_checks: usize,
    /// Re-sync checkpoints the leader emitted on demand.
    pub resyncs: u64,
    /// Gaps + corrupt frames the followers refused (typed).
    pub refusals: u64,
    /// Whether a promotion happened.
    pub promoted: bool,
    /// All violations, in discovery order.
    pub violations: Vec<String>,
}

impl ReplicaSoakReport {
    /// True when the replication oracle held everywhere.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "replica soak seed={} faults={}: {} steps x {} followers, {} ops applied \
             ({} rejected), {} frames, {} resyncs, {} typed refusals, {} fingerprint checks{}\n",
            self.seed,
            self.faults,
            self.steps_run,
            self.followers,
            self.ops_applied,
            self.ops_rejected,
            self.frames_sealed,
            self.resyncs,
            self.refusals,
            self.fingerprint_checks,
            if self.promoted { ", promoted follower 0" } else { "" },
        );
        if self.ok() {
            out.push_str("OK: every follower bit-identical to the leader at every checkpoint");
        } else {
            out.push_str(&format!("FAILED: {} violation(s)", self.violations.len()));
            for v in &self.violations {
                out.push('\n');
                out.push_str(&format!("  {v}"));
            }
        }
        out
    }
}

/// How many healing rounds a soak grants before calling a follower
/// permanently behind. Each round re-broadcasts a checkpoint, so under
/// any fault probability < 1 the chance of exhausting this is
/// negligible — hitting it is a finding, not noise.
const HEAL_ROUNDS: usize = 64;

fn check_fingerprints(cluster: &Cluster, at: &str, report: &mut ReplicaSoakReport) {
    let leader_fp = fingerprint(cluster.leader_hive());
    for idx in 0..cluster.follower_count() {
        let Some(f) = cluster.follower(idx) else { continue };
        if !f.is_streaming() || f.next_seq() != cluster.leader().next_seq() {
            continue;
        }
        let Some(hive) = f.hive() else { continue };
        report.fingerprint_checks += 1;
        let diffs = leader_fp.diff(&fingerprint(hive));
        for d in diffs {
            report.violations.push(format!("{at}: follower {idx} diverges from leader: {d}"));
        }
    }
}

/// Runs the replication soak and verifies the leader-vs-follower
/// differential oracle at every checkpoint.
pub fn replica_soak(cfg: ReplicaSoakConfig) -> ReplicaSoakReport {
    let mut report = ReplicaSoakReport {
        seed: cfg.seed,
        followers: cfg.followers,
        faults: cfg.faults.label(),
        ..ReplicaSoakReport::default()
    };
    let mut root = Rng::seed_from_u64(cfg.seed);
    let world_seed = root.next_u64();
    let mut op_rng = root.fork();
    let transport_seed = root.next_u64();
    let sim = SimConfig {
        seed: world_seed,
        users: cfg.users.max(6),
        topics: 4,
        conferences: 2,
        sessions_per_conf: 4,
        papers_per_conf: 8,
        ..SimConfig::small()
    };
    let world = WorldBuilder::new(sim).build();
    let mut cluster = Cluster::new(
        world.db,
        cfg.followers,
        ClusterConfig {
            seed: transport_seed,
            checkpoint_every: cfg.checkpoint_every,
            faults: cfg.faults.plan(),
        },
    );
    let commit_every = cfg.commit_every.max(1);
    let restart_at = cfg.crash_at + (cfg.steps / 10).max(3);
    let mut crashed = false;

    let mut drive = |cluster: &mut Cluster,
                     op_rng: &mut Rng,
                     steps: std::ops::Range<usize>,
                     report: &mut ReplicaSoakReport| {
        for step in steps {
            if cfg.crash_at > 0 && step == cfg.crash_at {
                if cluster.crash_follower(0).is_ok() {
                    crashed = true;
                }
            }
            if crashed && step == restart_at {
                let _ = cluster.restart_follower(0);
            }
            for op in hive_replica::synth::step_ops(cluster.leader_hive(), step, op_rng) {
                match cluster.apply(op) {
                    Ok(()) => report.ops_applied += 1,
                    Err(hive_replica::ReplicaError::Rejected(_)) => report.ops_rejected += 1,
                    Err(e) => report
                        .violations
                        .push(format!("step {step}: leader refused op unexpectedly: {e}")),
                }
            }
            if (step + 1) % commit_every == 0 {
                cluster.commit();
                // The oracle fires whenever healing reaches quiescence:
                // every streaming follower at the leader's seq must
                // answer every probe bit-identically.
                if cluster.heal(HEAL_ROUNDS) {
                    check_fingerprints(cluster, &format!("step {step}"), report);
                }
            }
        }
    };

    drive(&mut cluster, &mut op_rng, 0..cfg.steps, &mut report);
    report.steps_run = cfg.steps;

    // Final convergence: everything still alive must catch up and agree.
    if !cluster.heal(HEAL_ROUNDS) {
        report.violations.push(format!(
            "final heal: followers never converged within {HEAL_ROUNDS} rounds"
        ));
    }
    check_fingerprints(&cluster, "final", &mut report);

    // Failover tail: promote follower 0 and keep the oracle holding
    // against the new leader.
    if cfg.promote_at_end && cluster.follower_count() > 0 {
        match cluster.promote(0) {
            Ok(()) => {
                report.promoted = true;
                let tail = cfg.steps..cfg.steps + (cfg.steps / 4).max(5);
                drive(&mut cluster, &mut op_rng, tail, &mut report);
                if !cluster.heal(HEAL_ROUNDS) {
                    report
                        .violations
                        .push("post-promotion heal: followers never converged".to_string());
                }
                check_fingerprints(&cluster, "post-promotion", &mut report);
            }
            Err(e) => {
                report.violations.push(format!("promotion of a caught-up follower refused: {e}"));
            }
        }
    }

    let stats = cluster.stats();
    report.frames_sealed = cluster.leader().next_seq();
    report.resyncs = stats.resync_checkpoints;
    report.refusals = stats.gaps + stats.corrupt_frames + stats.other_refusals;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_soak_is_identical_everywhere() {
        let report = replica_soak(ReplicaSoakConfig {
            seed: 5,
            steps: 40,
            followers: 2,
            faults: FaultMenu::None,
            crash_at: 0,
            promote_at_end: false,
            ..ReplicaSoakConfig::default()
        });
        assert!(report.ok(), "{}", report.render());
        assert!(report.fingerprint_checks > 0, "oracle must actually fire");
        assert_eq!(report.refusals, 0, "clean channels refuse nothing");
    }

    #[test]
    fn faulty_channel_soak_converges_and_stays_identical() {
        let report = replica_soak(ReplicaSoakConfig {
            seed: 6,
            steps: 60,
            followers: 2,
            faults: FaultMenu::All,
            crash_at: 20,
            promote_at_end: true,
            ..ReplicaSoakConfig::default()
        });
        assert!(report.ok(), "{}", report.render());
        assert!(report.promoted);
        assert!(report.refusals > 0, "an armed fault plan must actually bite");
        assert!(report.resyncs > 0, "faults must force at least one re-sync");
    }
}
