//! N-reader × 1-writer serving soak with a snapshot-consistency
//! oracle.
//!
//! The writer task drives the usual seed-generated workload through
//! [`HiveServer::writer`] and publishes an epoch every few steps;
//! reader tasks concurrently pull epochs off their [`ReadHandle`]s and
//! record a fixed query battery per epoch they observe. Concurrency
//! runs through `hive-par`'s [`hive_par::par_tasks`] (lint R6: no raw
//! threads), with [`hive_par::force_workers`] so the tasks genuinely
//! overlap even on a single-core host.
//!
//! The oracle is checked serially afterwards, in two layers:
//!
//! 1. **Snapshot consistency** — every battery a reader recorded
//!    against some epoch must be bit-identical to the battery of a
//!    *cold* platform rebuilt from that epoch's own database snapshot
//!    ([`Epoch::rebuild`]): whatever interleaving happened, each read
//!    saw exactly the state a serial replay at that generation would
//!    produce. Published-but-unobserved epochs are checked too.
//! 2. **Epoch ordering** — the sequence of epochs each reader observed
//!    must be monotone in publish seq and database generation (the
//!    slot never goes backwards), and the writer's published sequence
//!    must be strictly increasing.
//!
//! Correctness never depends on the scheduler: any interleaving of
//! reads and publishes must satisfy both layers, so a violation is a
//! real serving-layer bug, not flakiness.

use crate::oracle::bits;
use crate::workload::{self, WorkloadStats};
use hive_core::clock::Timestamp;
use hive_core::discover::DiscoverConfig;
use hive_core::serve::{Epoch, HiveServer};
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_rng::Rng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Serving-soak parameters; everything else derives from `seed`.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Master seed: world and workload.
    pub seed: u64,
    /// Writer workload steps.
    pub steps: usize,
    /// Concurrent reader tasks.
    pub readers: usize,
    /// Publish an epoch every this many writer steps.
    pub publish_every: usize,
    /// Researchers in the generated world (min 6).
    pub users: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { seed: 42, steps: 200, readers: 3, publish_every: 10, users: 14 }
    }
}

/// Outcome of one serving soak.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// The seed that produced this report.
    pub seed: u64,
    /// Writer steps executed.
    pub steps_run: usize,
    /// Epochs published (including the boot epoch).
    pub publishes: usize,
    /// Epoch reads performed across all readers.
    pub reads: usize,
    /// Workload operations the writer applied.
    pub ops_applied: usize,
    /// Workload operations the platform rejected (typed errors).
    pub ops_rejected: usize,
    /// Distinct epochs verified against a cold serial replay.
    pub epochs_checked: usize,
    /// All violations, in discovery order.
    pub violations: Vec<String>,
}

impl ServeReport {
    /// True when the snapshot-consistency oracle held everywhere.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "serve soak seed={}: {} writer steps ({} ops applied, {} rejected), {} epochs \
             published, {} reads across readers, {} distinct epochs replay-checked\n",
            self.seed,
            self.steps_run,
            self.ops_applied,
            self.ops_rejected,
            self.publishes,
            self.reads,
            self.epochs_checked,
        );
        if self.ok() {
            out.push_str("OK: every read bit-identical to serial replay at its epoch");
        } else {
            out.push_str(&format!("FAILED: {} violation(s)", self.violations.len()));
            for v in &self.violations {
                out.push('\n');
                out.push_str(&format!("  {v}"));
            }
        }
        out
    }
}

/// One epoch observation: the epoch a reader (or the writer) held and
/// the battery it computed against it.
type Sample = (Arc<Epoch>, String);

enum TaskOut {
    Writer { epochs: Vec<Arc<Epoch>>, stats: WorkloadStats },
    Reader { samples: Vec<Sample>, torn: Vec<String> },
    Empty,
}

/// A fixed, deterministic query battery over one epoch. Floats are
/// rendered via [`bits`], so comparison is bit-exact; everything the
/// battery touches (search, similarity, feeds, trends) goes through
/// the epoch's frozen knowledge network and database snapshot.
fn epoch_battery(epoch: &Epoch) -> String {
    let db = epoch.db();
    let users = db.user_ids();
    let mut out = format!(
        "gen={} users={} papers={} log={} now={}",
        epoch.generation(),
        users.len(),
        db.paper_ids().len(),
        db.activity_log().len(),
        db.now().0,
    );
    let mut probes = Vec::new();
    for idx in [0, users.len() / 2, users.len().saturating_sub(1)] {
        if let Some(&u) = users.get(idx) {
            if !probes.contains(&u) {
                probes.push(u);
            }
        }
    }
    for u in probes {
        let similar: Vec<String> = epoch
            .similar_peers(u, 5)
            .into_iter()
            .map(|(v, s)| format!("{}={}", v.iri(), bits(s)))
            .collect();
        out.push_str(&format!("\nsimilar:{}={}", u.iri(), similar.join("|")));
        let hits: Vec<String> = epoch
            .search(u, "tensor stream community detection", DiscoverConfig::default())
            .into_iter()
            .map(|h| format!("{}:{}", bits(h.score), h.title))
            .collect();
        out.push_str(&format!("\nsearch:{}={}", u.iri(), hits.join("|")));
        let digest = epoch.digest(u, Timestamp(0));
        let mut counts: Vec<String> = digest
            .counts
            // lint:allow(determinism-taint) -- rendered lines are sorted below
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        counts.sort();
        out.push_str(&format!(
            "\ndigest:{}=updates={} {}",
            u.iri(),
            digest.updates.len(),
            counts.join(",")
        ));
    }
    let trending: Vec<String> = epoch
        .trending_sessions(Timestamp(0), db.now(), 5)
        .into_iter()
        .map(|(s, w)| format!("{}={}", s.iri(), bits(w)))
        .collect();
    out.push_str(&format!("\ntrending={}", trending.join("|")));
    out
}

fn unpoison_take<T>(slot: &Mutex<Option<T>>) -> Option<T> {
    match slot.lock() {
        Ok(mut g) => g.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    }
}

/// Runs the N-reader × 1-writer soak and verifies the
/// snapshot-consistency oracle.
// lint:root(determinism)
pub fn serve_soak(cfg: ServeConfig) -> ServeReport {
    let mut report = ServeReport { seed: cfg.seed, ..ServeReport::default() };
    let mut root = Rng::seed_from_u64(cfg.seed);
    let world_seed = root.next_u64();
    let workload_rng = root.fork();
    let sim = SimConfig {
        seed: world_seed,
        users: cfg.users.max(6),
        topics: 4,
        conferences: 2,
        sessions_per_conf: 4,
        papers_per_conf: 8,
        ..SimConfig::small()
    };
    let world = WorldBuilder::new(sim).build();
    let server = HiveServer::new(world.db);
    let handle = server.reader();
    let publish_every = cfg.publish_every.max(1);
    let sample_cap = cfg.steps.saturating_mul(50).max(64);
    let writer_slot: Mutex<Option<(HiveServer, Rng)>> = Mutex::new(Some((server, workload_rng)));
    let done = AtomicBool::new(false);
    let roles: Vec<usize> = (0..=cfg.readers.max(1)).collect();
    let outs: Vec<TaskOut> = hive_par::force_workers(roles.len(), || {
        hive_par::par_tasks(&roles, |_, &role| {
            if role == 0 {
                let Some((mut server, mut rng)) = unpoison_take(&writer_slot) else {
                    return TaskOut::Empty;
                };
                let mut stats = WorkloadStats::default();
                let mut epochs = vec![server.current()];
                for step in 0..cfg.steps {
                    workload::step(server.writer(), &mut rng, step, &mut stats);
                    if (step + 1) % publish_every == 0 {
                        epochs.push(server.publish());
                    }
                }
                // Flush any unpublished tail; a no-op publish returns
                // the already-recorded epoch, so only new seqs append.
                let last = server.publish();
                if epochs.last().map(|e| e.seq()) != Some(last.seq()) {
                    epochs.push(last);
                }
                done.store(true, Ordering::Release);
                TaskOut::Writer { epochs, stats }
            } else {
                let mut samples: Vec<Sample> = Vec::new();
                let mut torn = Vec::new();
                while !done.load(Ordering::Acquire) && samples.len() < sample_cap {
                    let epoch = handle.epoch();
                    let battery = epoch_battery(&epoch);
                    if samples.is_empty() {
                        // A pinned epoch must answer identically on
                        // repeated calls — torn interior state would
                        // show up as two different batteries.
                        let again = epoch_battery(&epoch);
                        if again != battery {
                            torn.push(format!(
                                "reader {role}: repeated battery on epoch seq={} diverged",
                                epoch.seq()
                            ));
                        }
                    }
                    samples.push((epoch, battery));
                }
                // One final read so every reader also observes the
                // writer's last published epoch.
                let epoch = handle.epoch();
                let battery = epoch_battery(&epoch);
                samples.push((epoch, battery));
                TaskOut::Reader { samples, torn }
            }
        })
    });
    report.steps_run = cfg.steps;
    // ---- serial verification ------------------------------------------
    // Cold replay per distinct publish seq, computed once and compared
    // against every observation of that epoch.
    let mut expected: BTreeMap<u64, String> = BTreeMap::new();
    let mut check = |epoch: &Arc<Epoch>, battery: &str, who: &str, report: &mut ServeReport| {
        let want = expected.entry(epoch.seq()).or_insert_with(|| {
            report.epochs_checked += 1;
            epoch_battery(&Epoch::rebuild(Arc::new(epoch.db().clone())))
        });
        if want != battery {
            report.violations.push(format!(
                "{who}: epoch seq={} gen={} diverges from serial replay",
                epoch.seq(),
                epoch.generation()
            ));
        }
    };
    for (task, out) in outs.into_iter().enumerate() {
        match out {
            TaskOut::Writer { epochs, stats } => {
                report.publishes = epochs.len();
                report.ops_applied = stats.applied;
                report.ops_rejected = stats.rejected;
                let mut prev_seq: Option<u64> = None;
                for epoch in &epochs {
                    if let Some(p) = prev_seq {
                        if epoch.seq() <= p {
                            report.violations.push(format!(
                                "writer: published seq {} after {} (not strictly increasing)",
                                epoch.seq(),
                                p
                            ));
                        }
                    }
                    prev_seq = Some(epoch.seq());
                    let battery = epoch_battery(epoch);
                    check(epoch, &battery, "writer", &mut report);
                }
            }
            TaskOut::Reader { samples, torn } => {
                report.violations.extend(torn);
                report.reads += samples.len();
                let mut prev: Option<(u64, u64)> = None;
                for (epoch, battery) in &samples {
                    if let Some((ps, pg)) = prev {
                        if epoch.seq() < ps || epoch.generation() < pg {
                            report.violations.push(format!(
                                "reader {task}: epoch went backwards (seq {} gen {} after seq {ps} gen {pg})",
                                epoch.seq(),
                                epoch.generation()
                            ));
                        }
                    }
                    prev = Some((epoch.seq(), epoch.generation()));
                    check(epoch, battery, &format!("reader {task}"), &mut report);
                }
            }
            TaskOut::Empty => {
                report.violations.push(format!("task {task}: writer state already taken"));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_soak_small_run_is_clean() {
        let report = serve_soak(ServeConfig {
            seed: 7,
            steps: 30,
            readers: 2,
            publish_every: 6,
            users: 10,
        });
        assert!(report.ok(), "{}", report.render());
        assert!(report.publishes >= 2, "boot + at least one publish");
        assert!(report.reads >= 2, "every reader reads at least once");
        assert_eq!(report.epochs_checked, report.publishes);
    }
}
