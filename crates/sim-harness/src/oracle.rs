//! Recovery-equivalence fingerprints and differential oracles.
//!
//! A [`Fingerprint`] is an ordered list of labeled strings capturing a
//! fixed battery of query results. Floats are rendered via
//! [`f64::to_bits`], so two fingerprints compare bit-exactly — "close
//! enough" never passes. Map-shaped results are sorted before
//! rendering, because equality of content must not depend on hash
//! iteration order.

use hive_core::clock::Timestamp;
use hive_core::discover::DiscoverConfig;
use hive_core::evidence::{self, RelationshipExplanation};
use hive_core::history::HistoryQuery;
use hive_core::ids::UserId;
use hive_core::knowledge::KnowledgeNetwork;
use hive_core::peers::PeerRecConfig;
use hive_core::reports::ReportScope;
use hive_core::{Hive, PprCache};
use hive_graph::{personalized_pagerank_csr, CsrView, DynPprConfig, DynamicPpr, PprConfig};
use hive_store::{GraphView, PathQuery, Term};
use std::collections::HashMap;

/// Hex rendering of the exact bit pattern of a float.
pub fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// An ordered battery of labeled query results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Fingerprint {
    /// `(label, rendered result)` pairs in battery order.
    pub entries: Vec<(String, String)>,
}

impl Fingerprint {
    fn push(&mut self, label: impl Into<String>, value: impl Into<String>) {
        self.entries.push((label.into(), value.into()));
    }

    /// Human-readable differences between two fingerprints (empty =
    /// equivalent).
    pub fn diff(&self, other: &Fingerprint) -> Vec<String> {
        let mut out = Vec::new();
        if self.entries.len() != other.entries.len() {
            out.push(format!(
                "battery size mismatch: {} vs {} entries",
                self.entries.len(),
                other.entries.len()
            ));
        }
        for ((la, va), (lb, vb)) in self.entries.iter().zip(&other.entries) {
            if la != lb {
                out.push(format!("battery order diverged: `{la}` vs `{lb}`"));
            } else if va != vb {
                out.push(format!("`{la}`: {} != {}", clip(va), clip(vb)));
            }
        }
        out
    }
}

fn clip(s: &str) -> String {
    const MAX: usize = 160;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut cut = MAX;
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &s[..cut])
}

/// Deterministic probe set: first, middle, and last user plus the
/// first co-author pair (battery must be fixed, not sampled, so the
/// pre- and post-crash instances answer the same questions).
fn probes(hive: &Hive) -> (Vec<UserId>, Option<(UserId, UserId)>) {
    let users = hive.db().user_ids();
    let mut probe = Vec::new();
    for idx in [0, users.len() / 2, users.len().saturating_sub(1)] {
        if let Some(&u) = users.get(idx) {
            if !probe.contains(&u) {
                probe.push(u);
            }
        }
    }
    let mut pair = None;
    for p in hive.db().paper_ids() {
        if let Ok(paper) = hive.db().get_paper(p) {
            if paper.authors.len() >= 2 {
                pair = Some((paper.authors[0], paper.authors[1]));
                break;
            }
        }
    }
    if pair.is_none() && users.len() >= 2 {
        pair = Some((users[0], users[1]));
    }
    (probe, pair)
}

fn render_ppr(kn: &KnowledgeNetwork, ppr: &PprCache, u: UserId) -> String {
    let Some(node) = kn.unified.node(&u.iri()) else {
        return "absent".to_string();
    };
    let mut seeds = HashMap::new();
    seeds.insert(node, 1.0);
    let scores = ppr.scores(&kn.unified_csr, &seeds, PprConfig::default());
    let mut ranked: Vec<(String, f64)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (kn.unified.key(hive_graph::NodeId(i as u32)).to_string(), s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(8);
    ranked
        .into_iter()
        .map(|(k, s)| format!("{k}={}", bits(s)))
        .collect::<Vec<_>>()
        .join(";")
}

fn render_explanation(exp: &RelationshipExplanation) -> String {
    let items: Vec<String> = exp
        .items
        .iter()
        .map(|i| format!("{:?}={}:{}", i.kind, bits(i.score), i.explanation))
        .collect();
    format!(
        "combined={} items=[{}] paths=[{}]",
        bits(exp.combined),
        items.join("|"),
        exp.paths.join("|")
    )
}

/// Ranked `rel:*` path query between two users over a fresh store
/// export and view — exercises the store/view layers directly, outside
/// the facade's generation cache.
fn render_paths(hive: &Hive, kn: &KnowledgeNetwork, a: UserId, b: UserId) -> String {
    let store = kn.to_store(hive.db());
    let view = GraphView::build(&store);
    let query = PathQuery::new(Term::iri(a.iri()), Term::iri(b.iri()))
        .max_hops(3)
        .top_k(3);
    match query.run_on(&store, &view) {
        Ok(paths) => paths
            .iter()
            .map(|p| format!("{}:{}", bits(p.score), p.explain(&store)))
            .collect::<Vec<_>>()
            .join("|"),
        Err(e) => format!("error: {e}"),
    }
}

/// Captures the full battery against a live facade.
// lint:root(determinism)
pub fn fingerprint(hive: &Hive) -> Fingerprint {
    let mut fp = Fingerprint::default();
    let db = hive.db();
    fp.push(
        "counts",
        format!(
            "users={} confs={} sessions={} papers={} presentations={} questions={} log={} now={}",
            db.user_ids().len(),
            db.conference_ids().len(),
            db.session_ids().len(),
            db.paper_ids().len(),
            db.presentation_ids().len(),
            db.question_ids().len(),
            db.activity_log().len(),
            db.now().0,
        ),
    );
    let (probe_users, pair) = probes(hive);
    let kn = hive.knowledge();
    let ppr = hive.ppr();
    for u in &probe_users {
        let u = *u;
        fp.push(format!("ppr:{}", u.iri()), render_ppr(&kn, &ppr, u));
        let peers: Vec<String> = hive
            .recommend_peers(u, PeerRecConfig::default())
            .iter()
            .map(|r| {
                let sessions: Vec<String> = r
                    .likely_sessions
                    .iter()
                    .map(|(s, w)| format!("{}={}", s.iri(), bits(*w)))
                    .collect();
                format!(
                    "{}={} reasons={} sessions=[{}]",
                    r.user.iri(),
                    bits(r.score),
                    r.reasons.len(),
                    sessions.join(",")
                )
            })
            .collect();
        fp.push(format!("peers:{}", u.iri()), peers.join("|"));
        let similar: Vec<String> = hive
            .similar_peers(u, 5)
            .iter()
            .map(|(v, s)| format!("{}={}", v.iri(), bits(*s)))
            .collect();
        fp.push(format!("similar:{}", u.iri()), similar.join("|"));
        let digest = hive.digest(u, Timestamp(0));
        let mut counts: Vec<String> = digest
            .counts
            // lint:allow(determinism-taint) -- rendered lines are sorted below
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        counts.sort();
        fp.push(
            format!("digest:{}", u.iri()),
            format!("updates={} {}", digest.updates.len(), counts.join(",")),
        );
        let hits: Vec<String> = hive
            .search(u, "tensor stream community detection", DiscoverConfig::default())
            .iter()
            .map(|h| format!("{:?}={}:{}", h.resource, bits(h.score), h.title))
            .collect();
        fp.push(format!("search:{}", u.iri()), hits.join("|"));
    }
    if let Some((a, b)) = pair {
        fp.push(
            format!("explain:{}:{}", a.iri(), b.iri()),
            render_explanation(&hive.explain_relationship(a, b)),
        );
        fp.push(format!("paths:{}:{}", a.iri(), b.iri()), render_paths(hive, &kn, a, b));
    }
    fp.push(
        "report",
        hive.update_report(&ReportScope::Platform, Timestamp(0), Timestamp(u64::MAX), 8)
            .render(),
    );
    let timeline: Vec<String> = hive
        .timeline(&[], 64)
        .iter()
        .map(|(t, counts)| {
            let mut cs: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
            cs.sort();
            format!("{}:[{}]", t.0, cs.join(","))
        })
        .collect();
    fp.push("timeline", timeline.join("|"));
    let history: Vec<String> = hive
        .search_history(&HistoryQuery::new().limit(8), probe_users.first().copied())
        .iter()
        .map(|h| format!("{}:{}", bits(h.relevance), h.text))
        .collect();
    fp.push("history", history.join("|"));
    let trending: Vec<String> = hive
        .trending_sessions(Timestamp(0), hive.db().now(), 5)
        .iter()
        .map(|(s, w)| format!("{}={}", s.iri(), bits(*w)))
        .collect();
    fp.push("trending", trending.join("|"));
    // Secondary-index contents: a delta-patched index on the leader and
    // a replay-built index on a follower must digest identically (the
    // digest iterates BTreeMap postings, no hash order involved).
    fp.push("index", hive.indexes().digest());
    fp
}

/// Differential oracles: the same questions asked two ways must agree
/// bit-for-bit.
///
/// * **parallel vs serial** — the knowledge network (its TF-IDF batch
///   vectorization runs through `hive-par`) and a PPR sweep are built
///   under 1 worker and under `threads` workers
///   ([`hive_par::force_workers`] bypasses the host clamp so the
///   parallel leg stays parallel even on a single-core host).
/// * **cached vs fresh** — the facade's generation-cached relationship
///   store/view against a from-scratch export and
///   [`GraphView::build`].
/// * **delta vs rebuild** — the live facade, whose kn/rel snapshots
///   have been delta-patched in place across the whole workload so
///   far, against a cold platform built from a clone of the same
///   database; the full fingerprint battery must match bit-for-bit.
// lint:root(determinism)
pub fn differential_check(
    hive: &Hive,
    probe: UserId,
    pair: (UserId, UserId),
    threads: usize,
) -> Vec<String> {
    let mut out = Vec::new();
    let db = hive.db();
    let serial = hive_par::with_threads(1, || {
        let kn = KnowledgeNetwork::build(db);
        (render_ppr(&kn, &PprCache::new(), probe), bits(kn.user_similarity(pair.0, pair.1)))
    });
    let parallel = hive_par::force_workers(threads.max(2), || {
        let kn = KnowledgeNetwork::build(db);
        (render_ppr(&kn, &PprCache::new(), probe), bits(kn.user_similarity(pair.0, pair.1)))
    });
    if serial.0 != parallel.0 {
        out.push(format!(
            "ppr diverges across thread counts for {}: {} != {}",
            probe.iri(),
            clip(&serial.0),
            clip(&parallel.0)
        ));
    }
    if serial.1 != parallel.1 {
        out.push(format!(
            "user similarity diverges across thread counts: {} != {}",
            serial.1, parallel.1
        ));
    }
    // Cached path: facade rel-snapshot (reused across calls within a
    // generation). Fresh path: explicit export + view build.
    let cached = render_explanation(&hive.explain_relationship(pair.0, pair.1));
    let kn = hive.knowledge();
    let store = kn.to_store(db);
    let view = GraphView::build(&store);
    let fresh = render_explanation(&evidence::explain_relationship_with_view(
        db, &kn, &store, &view, pair.0, pair.1, 3,
    ));
    if cached != fresh {
        out.push(format!(
            "cached relationship view diverges from fresh rebuild: {} != {}",
            clip(&cached),
            clip(&fresh)
        ));
    }
    // Incremental vs full: seed a forward-push engine from the served
    // unified graph, replay a deterministic burst of synthetic arrivals
    // into both the engine and a plain graph copy, and demand the
    // incremental scores stay inside the certified push tolerance of a
    // cold power iteration — with the bit-identical top-8 ordering the
    // serving battery fingerprints. A second engine with a zero error
    // budget must fall back and reproduce the cold solve bit-for-bit.
    let kn = hive.knowledge();
    if let Some(seed_node) = kn.unified.node(&probe.iri()) {
        let mut seeds = HashMap::new();
        seeds.insert(seed_node, 1.0);
        let mut engine =
            DynamicPpr::new(kn.unified.clone(), PprConfig::default(), DynPprConfig::default());
        let mut strict = DynamicPpr::new(
            kn.unified.clone(),
            PprConfig::default(),
            DynPprConfig { error_budget: 0.0, ..DynPprConfig::default() },
        );
        let mut full_graph = kn.unified.clone();
        let _ = engine.scores_incremental(&seeds);
        let _ = strict.scores_incremental(&seeds);
        let n = full_graph.node_count();
        let mut rng = hive_rng::Rng::seed_from_u64(0x0a11_ce5e);
        for _ in 0..8 {
            let u = hive_graph::NodeId(rng.gen_range(0..n) as u32);
            let v = hive_graph::NodeId(rng.gen_range(0..n) as u32);
            if u == v {
                continue;
            }
            let w = rng.gen_range(0.1..1.0);
            engine.apply_undirected_edge(u, v, w);
            strict.apply_undirected_edge(u, v, w);
            full_graph.add_undirected_edge(u, v, w);
        }
        let incr = engine.scores_incremental(&seeds);
        let exact = strict.scores_incremental(&seeds);
        let full =
            personalized_pagerank_csr(&CsrView::build(&full_graph), &seeds, PprConfig::default());
        let l1: f64 = incr.iter().zip(&full).map(|(a, b)| (a - b).abs()).sum();
        if l1 > 1e-8 {
            out.push(format!(
                "incremental ppr drifted {l1:e} L1 from full iteration for {}",
                probe.iri()
            ));
        }
        let top = |scores: &[f64]| {
            let mut ranked: Vec<(usize, u64)> =
                scores.iter().enumerate().map(|(i, &s)| (i, s.to_bits())).collect();
            ranked.sort_by(|a, b| {
                f64::from_bits(b.1).total_cmp(&f64::from_bits(a.1)).then(a.0.cmp(&b.0))
            });
            ranked.truncate(8);
            ranked.into_iter().map(|(i, _)| i).collect::<Vec<_>>()
        };
        if top(&incr) != top(&full) {
            out.push(format!(
                "incremental ppr top-8 order diverges from full iteration for {}",
                probe.iri()
            ));
        }
        // Fallback equivalence: any nonzero perturbation overflows the
        // zero budget, forcing a re-solve that must replay cold
        // bitwise. (When every arrival lands on zero-rank nodes the
        // engine legitimately keeps serving its old solve — which is
        // still bitwise-cold, so the comparison below covers both
        // paths; the fallback *counter* proof lives in the controlled
        // `tests/ppr_incremental.rs` suite.)
        if exact.iter().zip(&full).any(|(a, b)| a.to_bits() != b.to_bits()) {
            out.push(format!(
                "zero-budget fallback is not bit-identical to cold solve for {}",
                probe.iri()
            ));
        }
    }
    // Delta-vs-rebuild: the live facade has been answering out of
    // snapshots patched forward by the delta log; a cold platform over
    // the same database rebuilds everything from scratch. The two must
    // be indistinguishable across the entire query battery.
    let cold = Hive::new(db.clone());
    for d in fingerprint(hive).diff(&fingerprint(&cold)) {
        out.push(format!("delta-maintained facade vs cold rebuild: {d}"));
    }
    out
}
