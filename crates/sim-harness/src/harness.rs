//! The soak driver: workload → crash/restore → oracles, all from one
//! seed.

use crate::fault::{self, FaultKind, LoadOutcome};
use crate::oracle;
use crate::workload::{self, WorkloadStats};
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::{Hive, HiveError};
use hive_rng::Rng;
use hive_store::StoreError;
use std::fmt;

/// Which oracle family flagged a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckerKind {
    /// Post-restore query battery diverged from the pre-crash one.
    Recovery,
    /// A corrupted snapshot was mishandled (panic or silent load).
    Fault,
    /// Parallel-vs-serial or cached-vs-fresh answers diverged.
    Differential,
}

impl CheckerKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CheckerKind::Recovery => "recovery",
            CheckerKind::Fault => "fault",
            CheckerKind::Differential => "differential",
        }
    }
}

/// One detected violation; the run seed reproduces it exactly.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workload step at which the violation surfaced.
    pub step: usize,
    /// The oracle family that flagged it.
    pub checker: CheckerKind,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[step {} · {}] {}", self.step, self.checker.label(), self.detail)
    }
}

/// Harness parameters; everything else derives from `seed`.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Master seed: world, workload, fault sites, probe choices.
    pub seed: u64,
    /// Workload steps to run.
    pub steps: usize,
    /// Snapshot/restore crash points, evenly spread over the run.
    pub crash_points: usize,
    /// Researchers in the generated world (min 6).
    pub users: usize,
    /// Run the differential oracles every this many steps (0 = only at
    /// crash points).
    pub diff_every: usize,
    /// Worker count for the parallel side of the differential oracle.
    pub threads: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { seed: 42, steps: 120, crash_points: 3, users: 14, diff_every: 25, threads: 4 }
    }
}

/// Outcome of one soak run.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    /// The seed that produced this report.
    pub seed: u64,
    /// Steps executed.
    pub steps_run: usize,
    /// Crash/restore cycles performed.
    pub crashes: usize,
    /// Corruptions injected (both platform and store snapshots).
    pub faults_injected: usize,
    /// Corruptions correctly rejected with a typed error.
    pub fault_errors: usize,
    /// Corruption attempts skipped (input too small for the kind).
    pub faults_skipped: usize,
    /// Workload operations the platform accepted.
    pub ops_applied: usize,
    /// Workload operations the platform rejected (typed errors).
    pub ops_rejected: usize,
    /// Differential oracle invocations.
    pub diff_checks: usize,
    /// All violations, in discovery order.
    pub violations: Vec<Violation>,
}

impl SoakReport {
    /// True when every oracle held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "soak seed={}: {} steps, {} crash/restore cycles, {} ops applied ({} rejected), \
             {} faults injected ({} typed rejections, {} skipped), {} differential checks\n",
            self.seed,
            self.steps_run,
            self.crashes,
            self.ops_applied,
            self.ops_rejected,
            self.faults_injected,
            self.fault_errors,
            self.faults_skipped,
            self.diff_checks,
        );
        if self.ok() {
            out.push_str("OK: zero violations across recovery, fault, and differential oracles");
        } else {
            out.push_str(&format!("FAILED: {} violation(s)", self.violations.len()));
            for v in &self.violations {
                out.push('\n');
                out.push_str(&format!("  {v}"));
            }
        }
        out
    }
}

/// The deterministic soak harness.
pub struct SimHarness {
    cfg: HarnessConfig,
}

impl SimHarness {
    /// Creates a harness for one configuration.
    pub fn new(cfg: HarnessConfig) -> Self {
        SimHarness { cfg }
    }

    /// Runs the full soak and reports. Observability is reset up front
    /// so a run's `hive_obs::report_text()` reflects exactly this soak
    /// and two equal-seed runs render byte-identical reports.
    pub fn run(&self) -> SoakReport {
        hive_obs::reset();
        let cfg = self.cfg;
        // One master seed fans out into independent streams, so e.g.
        // changing the number of crash points cannot shift the
        // workload's randomness.
        let mut root = Rng::seed_from_u64(cfg.seed);
        let world_seed = root.next_u64();
        let mut workload_rng = root.fork();
        let mut fault_rng = root.fork();
        let mut probe_rng = root.fork();
        let sim = SimConfig {
            seed: world_seed,
            users: cfg.users.max(6),
            topics: 4,
            conferences: 2,
            sessions_per_conf: 4,
            papers_per_conf: 8,
            ..SimConfig::small()
        };
        let world = WorldBuilder::new(sim).build();
        let mut hive = Hive::new(world.db);
        let mut stats = WorkloadStats::default();
        let mut report = SoakReport { seed: cfg.seed, ..SoakReport::default() };
        let crash_at: Vec<usize> = (1..=cfg.crash_points)
            .map(|i| i * cfg.steps / (cfg.crash_points + 1))
            .collect();
        for step in 0..cfg.steps {
            workload::step(&mut hive, &mut workload_rng, step, &mut stats);
            if cfg.diff_every > 0 && step % cfg.diff_every == cfg.diff_every - 1 {
                self.differential(&hive, step, &mut probe_rng, &mut report);
            }
            if crash_at.contains(&step) {
                hive = self.crash_restore(hive, step, &mut fault_rng, &mut report);
                report.crashes += 1;
            }
        }
        report.steps_run = cfg.steps;
        report.ops_applied = stats.applied;
        report.ops_rejected = stats.rejected;
        report
    }

    fn differential(&self, hive: &Hive, step: usize, rng: &mut Rng, report: &mut SoakReport) {
        let users = hive.db().user_ids();
        if users.len() < 2 {
            return;
        }
        let probe = users[rng.gen_range(0..users.len())];
        let ai = rng.gen_range(0..users.len());
        let mut bi = rng.gen_range(0..users.len() - 1);
        if bi >= ai {
            bi += 1;
        }
        let (a, b) = (users[ai], users[bi]);
        report.diff_checks += 1;
        for detail in oracle::differential_check(hive, probe, (a, b), self.cfg.threads) {
            report.violations.push(Violation { step, checker: CheckerKind::Differential, detail });
        }
    }

    /// Snapshot, verify recovery equivalence, then attack the snapshot
    /// with every fault kind. Returns the restored instance (the run
    /// continues on the post-crash deployment, like a real restart).
    fn crash_restore(
        &self,
        hive: Hive,
        step: usize,
        rng: &mut Rng,
        report: &mut SoakReport,
    ) -> Hive {
        let pre = oracle::fingerprint(&hive);
        let json = match hive.db().to_json() {
            Ok(j) => j,
            Err(e) => {
                report.violations.push(Violation {
                    step,
                    checker: CheckerKind::Recovery,
                    detail: format!("snapshot serialization failed: {e}"),
                });
                return hive;
            }
        };
        // Store-layer snapshot of the relationship export, attacked by
        // the same fault kinds below.
        let store_json = hive.knowledge().to_store(hive.db()).to_json().ok();
        self.inject_faults(&json, store_json.as_deref(), step, rng, report);
        match fault::load_platform(&json) {
            LoadOutcome::Loaded(db) => {
                let restored = Hive::new(*db);
                let post = oracle::fingerprint(&restored);
                for detail in pre.diff(&post) {
                    report.violations.push(Violation {
                        step,
                        checker: CheckerKind::Recovery,
                        detail,
                    });
                }
                restored
            }
            LoadOutcome::Rejected(e) => {
                report.violations.push(Violation {
                    step,
                    checker: CheckerKind::Recovery,
                    detail: format!("pristine snapshot rejected: {e}"),
                });
                hive
            }
            LoadOutcome::Panicked(msg) => {
                report.violations.push(Violation {
                    step,
                    checker: CheckerKind::Recovery,
                    detail: format!("pristine snapshot load panicked: {msg}"),
                });
                hive
            }
        }
    }

    fn inject_faults(
        &self,
        platform_json: &str,
        store_json: Option<&str>,
        step: usize,
        rng: &mut Rng,
        report: &mut SoakReport,
    ) {
        for kind in FaultKind::ALL {
            match fault::corrupt(platform_json, kind, rng) {
                Some(bad) => {
                    report.faults_injected += 1;
                    match fault::load_platform(&bad) {
                        LoadOutcome::Rejected(HiveError::SnapshotVersion { .. }) => {
                            report.fault_errors += 1;
                        }
                        LoadOutcome::Rejected(e) if kind.wants_version_error() => {
                            report.violations.push(Violation {
                                step,
                                checker: CheckerKind::Fault,
                                detail: format!(
                                    "platform {}: expected a snapshot-version error, got: {e}",
                                    kind.label()
                                ),
                            });
                        }
                        LoadOutcome::Rejected(_) => report.fault_errors += 1,
                        LoadOutcome::Loaded(_) => {
                            report.violations.push(Violation {
                                step,
                                checker: CheckerKind::Fault,
                                detail: format!(
                                    "platform {}: corrupted snapshot loaded without error",
                                    kind.label()
                                ),
                            });
                        }
                        LoadOutcome::Panicked(msg) => {
                            report.violations.push(Violation {
                                step,
                                checker: CheckerKind::Fault,
                                detail: format!("platform {}: loader panicked: {msg}", kind.label()),
                            });
                        }
                    }
                }
                None => report.faults_skipped += 1,
            }
            let Some(sjson) = store_json else { continue };
            match fault::corrupt(sjson, kind, rng) {
                Some(bad) => {
                    report.faults_injected += 1;
                    match fault::load_store(&bad) {
                        LoadOutcome::Rejected(StoreError::SnapshotVersion { .. }) => {
                            report.fault_errors += 1;
                        }
                        LoadOutcome::Rejected(e) if kind.wants_version_error() => {
                            report.violations.push(Violation {
                                step,
                                checker: CheckerKind::Fault,
                                detail: format!(
                                    "store {}: expected a snapshot-version error, got: {e}",
                                    kind.label()
                                ),
                            });
                        }
                        LoadOutcome::Rejected(_) => report.fault_errors += 1,
                        LoadOutcome::Loaded(_) => {
                            report.violations.push(Violation {
                                step,
                                checker: CheckerKind::Fault,
                                detail: format!(
                                    "store {}: corrupted snapshot loaded without error",
                                    kind.label()
                                ),
                            });
                        }
                        LoadOutcome::Panicked(msg) => {
                            report.violations.push(Violation {
                                step,
                                checker: CheckerKind::Fault,
                                detail: format!("store {}: loader panicked: {msg}", kind.label()),
                            });
                        }
                    }
                }
                None => report.faults_skipped += 1,
            }
        }
    }
}
