//! Seed-driven multi-user workload against the [`Hive`] facade.
//!
//! Every step advances the logical clock and applies one operation
//! drawn from a fixed distribution over the platform API: social
//! mutations (register / follow / connect), conference activity
//! (check-in / attend / upload / ask / answer / comment / tweet),
//! workpad edits, and read-only service queries. Operations that the
//! platform legitimately rejects (duplicate follow, answering an
//! unanswerable question, ...) count as *rejected*, not as failures —
//! the harness only requires that rejections are typed errors, which
//! the facade's `Result` signatures already guarantee at compile time.

use hive_core::ids::{ConferenceId, UserId};
use hive_core::model::{Paper, QaTarget, User, WorkpadItem};
use hive_core::sim::{topic_abstract, topic_phrase, topic_question, topic_title};
use hive_core::Hive;
use hive_rng::{Rng, SliceRandom};

/// Running tallies of what the generator did.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadStats {
    /// Operations the platform accepted.
    pub applied: usize,
    /// Operations the platform rejected with a typed error.
    pub rejected: usize,
}

impl WorkloadStats {
    fn tally<T, E>(&mut self, res: Result<T, E>) {
        match res {
            Ok(_) => self.applied += 1,
            Err(_) => self.rejected += 1,
        }
    }

    fn skip(&mut self) {
        self.rejected += 1;
    }
}

fn pick_user(hive: &Hive, rng: &mut Rng) -> Option<UserId> {
    hive.db().user_ids().choose(rng).copied()
}

fn pick_pair(hive: &Hive, rng: &mut Rng) -> Option<(UserId, UserId)> {
    let users = hive.db().user_ids();
    if users.len() < 2 {
        return None;
    }
    let a = rng.gen_range(0..users.len());
    let mut b = rng.gen_range(0..users.len() - 1);
    if b >= a {
        b += 1;
    }
    Some((users[a], users[b]))
}

fn topic(rng: &mut Rng) -> usize {
    rng.gen_range(0..4)
}

/// Applies one generated operation; returns a label for diagnostics.
pub fn step(hive: &mut Hive, rng: &mut Rng, step_no: usize, stats: &mut WorkloadStats) -> &'static str {
    // Time always moves between operations so feeds, reports, and
    // trending windows see a spread-out history.
    let dt = rng.gen_range(1..4u64);
    hive.advance_clock(dt);
    let roll = rng.gen_range(0..100u32);
    match roll {
        0..=4 => {
            let t = topic(rng);
            let name = format!("Sim Researcher {step_no}");
            let user = User::new(name, "Simulated Institute")
                .with_interests(vec![topic_phrase(t, rng)]);
            hive.add_user(user);
            stats.applied += 1;
            "register"
        }
        5..=16 => {
            match pick_pair(hive, rng) {
                Some((a, b)) => stats.tally(hive.follow(a, b)),
                None => stats.skip(),
            }
            "follow"
        }
        17..=26 => {
            match pick_pair(hive, rng) {
                Some((a, b)) => {
                    // Half the rolls respond to a pending request (if
                    // any), the rest originate a new one.
                    let pending = hive.db().pending_requests_for(a);
                    match pending.choose(rng).copied() {
                        Some(from) if rng.gen_bool(0.5) => {
                            stats.tally(hive.respond_connection(a, from, rng.gen_bool(0.8)))
                        }
                        _ => stats.tally(hive.request_connection(a, b)),
                    }
                }
                None => stats.skip(),
            }
            "connect"
        }
        27..=38 => {
            let sessions = hive.db().session_ids();
            match (pick_user(hive, rng), sessions.choose(rng).copied()) {
                (Some(u), Some(s)) => stats.tally(hive.check_in(u, s)),
                _ => stats.skip(),
            }
            "check-in"
        }
        39..=43 => {
            let users = hive.db().user_ids();
            let n_authors = rng.gen_range(1..=3usize).min(users.len());
            let authors: Vec<UserId> =
                users.choose_multiple(rng, n_authors).into_iter().copied().collect();
            if authors.is_empty() {
                stats.skip();
                return "upload-paper";
            }
            let t = topic(rng);
            let n_cites = rng.gen_range(0..3usize);
            let cites: Vec<_> = hive
                .db()
                .paper_ids()
                .choose_multiple(rng, n_cites)
                .into_iter()
                .copied()
                .collect();
            let venue = hive.db().conference_ids().choose(rng).copied();
            let mut paper = Paper::new(topic_title(t, rng), authors)
                .with_abstract(topic_abstract(t, rng))
                .citing(cites);
            if let Some(v) = venue {
                paper = paper.at_venue(v);
            }
            stats.tally(hive.add_paper(paper));
            "upload-paper"
        }
        44..=53 => {
            let target = if rng.gen_bool(0.5) {
                hive.db().presentation_ids().choose(rng).map(|&p| QaTarget::Presentation(p))
            } else {
                hive.db().session_ids().choose(rng).map(|&s| QaTarget::Session(s))
            };
            match (pick_user(hive, rng), target) {
                (Some(u), Some(t)) => {
                    let q = topic_question(topic(rng), rng);
                    stats.tally(hive.ask_question(u, t, &q, rng.gen_bool(0.3)))
                }
                _ => stats.skip(),
            }
            "ask"
        }
        54..=61 => {
            match (pick_user(hive, rng), hive.db().question_ids().choose(rng).copied()) {
                (Some(u), Some(q)) => {
                    let text = topic_phrase(topic(rng), rng);
                    stats.tally(hive.answer_question(u, q, &text))
                }
                _ => stats.skip(),
            }
            "answer"
        }
        62..=71 => {
            let Some(u) = pick_user(hive, rng) else {
                stats.skip();
                return "workpad";
            };
            match hive.db().active_workpad_of(u) {
                Some(pad) if rng.gen_bool(0.7) => {
                    let item = if rng.gen_bool(0.5) {
                        hive.db().paper_ids().choose(rng).map(|&p| WorkpadItem::Paper(p))
                    } else {
                        hive.db().session_ids().choose(rng).map(|&s| WorkpadItem::Session(s))
                    };
                    match item {
                        Some(item) => stats.tally(hive.workpad_add(u, pad, item)),
                        None => stats.skip(),
                    }
                }
                Some(pad) => {
                    let note = topic_phrase(topic(rng), rng);
                    stats.tally(hive.workpad_note(u, pad, note))
                }
                None => {
                    stats.tally(hive.create_workpad(u, format!("pad {step_no}").as_str()))
                }
            }
            "workpad"
        }
        72..=77 => {
            match rng.gen_range(0..3u32) {
                0 => {
                    let target =
                        hive.db().session_ids().choose(rng).map(|&s| QaTarget::Session(s));
                    match (pick_user(hive, rng), target) {
                        (Some(u), Some(t)) => {
                            let text = topic_phrase(topic(rng), rng);
                            stats.tally(hive.comment(u, t, text))
                        }
                        _ => stats.skip(),
                    }
                }
                1 => {
                    match (pick_user(hive, rng), hive.db().session_ids().choose(rng).copied()) {
                        (Some(u), Some(s)) => {
                            let text = topic_phrase(topic(rng), rng);
                            stats.tally(hive.post_tweet(Some(u), "@sim", text, s))
                        }
                        _ => stats.skip(),
                    }
                }
                _ => {
                    match (pick_user(hive, rng), hive.db().paper_ids().choose(rng).copied()) {
                        (Some(u), Some(p)) => stats.tally(hive.view_paper(u, p)),
                        _ => stats.skip(),
                    }
                }
            }
            "engage"
        }
        78..=83 => {
            let confs: Vec<ConferenceId> = hive.db().conference_ids();
            match (pick_user(hive, rng), confs.choose(rng).copied()) {
                (Some(u), Some(c)) => stats.tally(hive.attend(u, c)),
                _ => stats.skip(),
            }
            "attend"
        }
        _ => {
            // Read-only service traffic interleaved with the mutations;
            // results are discarded here (the oracles assert on them at
            // crash points), but the calls must not error or panic.
            let Some(u) = pick_user(hive, rng) else {
                stats.skip();
                return "read";
            };
            match rng.gen_range(0..5u32) {
                0 => {
                    let q = topic_phrase(topic(rng), rng);
                    let _ = hive.search(u, &q, hive_core::discover::DiscoverConfig::default());
                }
                1 => {
                    let _ = hive.recommend_peers(u, hive_core::peers::PeerRecConfig::default());
                }
                2 => {
                    if let Some((a, b)) = pick_pair(hive, rng) {
                        let _ = hive.explain_relationship(a, b);
                    }
                }
                3 => {
                    let _ = hive.digest(u, hive_core::clock::Timestamp(0));
                }
                _ => {
                    let _ = hive.similar_peers(u, 5);
                }
            }
            stats.applied += 1;
            "read"
        }
    }
}
