//! Deterministic simulation harness for the Hive platform.
//!
//! Drives the full [`hive_core::Hive`] facade with a seed-generated
//! multi-user workload, periodically "crashes" the deployment by
//! serializing it to a JSON snapshot and reloading, and checks three
//! independent oracle families along the way:
//!
//! 1. **Recovery equivalence** ([`oracle`]): after snapshot + reload, a
//!    fixed battery of queries (PPR top-k, peer recommendations,
//!    relationship explanations, ranked path queries, feeds, reports,
//!    history) must answer bit-identically to the pre-crash instance.
//! 2. **Fault injection** ([`fault`]): truncated, bit-flipped,
//!    version-bumped, and field-dropped snapshot JSON must surface a
//!    typed error — never a panic, never a silently half-loaded
//!    database.
//! 3. **Differential oracles** ([`oracle::differential_check`]):
//!    parallel-vs-serial knowledge-network builds (1 thread vs N) and
//!    cached-vs-fresh relationship-graph views must agree bit-for-bit.
//! 4. **Snapshot consistency** ([`serve`]): an N-reader × 1-writer
//!    soak over the epoch serving layer where every concurrent read
//!    must be bit-identical to a cold serial replay at the epoch it
//!    was served from (`--serve-readers N` on the binary).
//! 5. **Replication equivalence** ([`replica`]): a leader plus N
//!    log-shipped followers under deterministic transport faults
//!    (drop/dup/reorder/truncate) with crash/restart and failover,
//!    where every caught-up follower's fingerprint must equal the
//!    leader's bit-for-bit (`--followers N --faults all` on the
//!    binary).
//!
//! Everything derives from one `u64` seed through [`hive_rng`] stream
//! forking, so any reported violation reproduces from the printed seed
//! alone: `cargo run -p hive-sim-harness -- --seed N --steps M`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod harness;
pub mod oracle;
pub mod replica;
pub mod serve;
pub mod workload;

pub use harness::{CheckerKind, HarnessConfig, SimHarness, SoakReport, Violation};
pub use replica::{replica_soak, FaultMenu, ReplicaSoakConfig, ReplicaSoakReport};
pub use serve::{serve_soak, ServeConfig, ServeReport};
