//! Soak-runner binary: `cargo run -p hive-sim-harness -- --seed N --steps M`.
//!
//! Exits 0 when every oracle held, 1 on violations (after printing the
//! failing seed and the exact reproduction command), 2 on usage errors.

use hive_sim_harness::{
    replica_soak, serve_soak, FaultMenu, HarnessConfig, ReplicaSoakConfig, ServeConfig, SimHarness,
};

const USAGE: &str = "usage: hive-sim-harness [--seed N] [--steps M] [--crashes K] \
[--users U] [--diff-every D] [--threads T] [--serve-readers R] [--followers F] \
[--faults none|all|drop|dup|reorder|truncate] [--sweep S]\n\
  --serve-readers R additionally runs the N-reader x 1-writer serving soak with R readers\n\
  --followers F additionally runs the replication soak with F log-shipped followers\n\
  --faults X arms the replication transport fault plan (default all)\n\
  --sweep S runs S consecutive seeds starting at --seed and stops at the first failure";

fn parse_flag(name: &str, value: Option<String>) -> Result<u64, String> {
    let Some(v) = value else {
        return Err(format!("missing value for {name}"));
    };
    v.parse::<u64>().map_err(|_| format!("invalid value for {name}: {v}"))
}

fn parse_config() -> Result<(HarnessConfig, u64, usize, usize, FaultMenu), String> {
    let mut cfg = HarnessConfig::default();
    let mut sweep = 1u64;
    let mut serve_readers = 0usize;
    let mut followers = 0usize;
    let mut faults = FaultMenu::All;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => cfg.seed = parse_flag(&arg, args.next())?,
            "--steps" => cfg.steps = parse_flag(&arg, args.next())? as usize,
            "--crashes" => cfg.crash_points = parse_flag(&arg, args.next())? as usize,
            "--users" => cfg.users = parse_flag(&arg, args.next())? as usize,
            "--diff-every" => cfg.diff_every = parse_flag(&arg, args.next())? as usize,
            "--threads" => cfg.threads = (parse_flag(&arg, args.next())? as usize).max(2),
            "--serve-readers" => serve_readers = parse_flag(&arg, args.next())? as usize,
            "--followers" => followers = parse_flag(&arg, args.next())? as usize,
            "--faults" => {
                let Some(v) = args.next() else {
                    return Err("missing value for --faults".to_string());
                };
                faults = FaultMenu::parse(&v)
                    .ok_or(format!("invalid value for --faults: {v} (want none|all|drop|dup|reorder|truncate)"))?;
            }
            "--sweep" => sweep = parse_flag(&arg, args.next())?.max(1),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((cfg, sweep, serve_readers, followers, faults))
}

fn main() {
    let (base, sweep, serve_readers, followers, faults) = match parse_config() {
        Ok(parsed) => parsed,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    for seed in base.seed..base.seed.saturating_add(sweep) {
        let cfg = HarnessConfig { seed, ..base };
        let report = SimHarness::new(cfg).run();
        println!("{}", report.render());
        if hive_obs::level() != hive_obs::Level::Off {
            println!("{}", hive_obs::report_text());
        }
        if !report.ok() {
            println!(
                "reproduce with: cargo run -p hive-sim-harness -- --seed {} --steps {} --crashes {} --users {} --diff-every {}",
                seed, cfg.steps, cfg.crash_points, cfg.users, cfg.diff_every
            );
            std::process::exit(1);
        }
        if serve_readers > 0 {
            let serve_cfg = ServeConfig {
                seed,
                steps: cfg.steps,
                readers: serve_readers,
                users: cfg.users,
                ..ServeConfig::default()
            };
            let serve_report = serve_soak(serve_cfg);
            println!("{}", serve_report.render());
            if !serve_report.ok() {
                println!(
                    "reproduce with: cargo run -p hive-sim-harness -- --seed {} --steps {} --serve-readers {}",
                    seed, cfg.steps, serve_readers
                );
                std::process::exit(1);
            }
        }
        if followers > 0 {
            let replica_cfg = ReplicaSoakConfig {
                seed,
                steps: cfg.steps,
                followers,
                faults,
                users: cfg.users,
                crash_at: cfg.steps / 3,
                ..ReplicaSoakConfig::default()
            };
            let replica_report = replica_soak(replica_cfg);
            println!("{}", replica_report.render());
            if !replica_report.ok() {
                println!(
                    "reproduce with: cargo run -p hive-sim-harness -- --seed {} --steps {} --followers {} --faults {}",
                    seed,
                    cfg.steps,
                    followers,
                    faults.label()
                );
                std::process::exit(1);
            }
        }
    }
}
