//! Recursive-descent JSON parser (RFC 8259 subset: no duplicate-key
//! policy, objects keep the first occurrence's position in order).

use crate::{Json, JsonError};

/// Maximum container nesting depth accepted by [`Json::parse`].
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub(crate) fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8: the input is a &str, so any
                    // multi-byte sequence here is already valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a low surrogate escape next.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("unparseable float"))
        } else {
            // Integers that overflow i64 (e.g. 20-digit ids) degrade to
            // float rather than failing the whole document.
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("unparseable number")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
