//! # hive-json — dependency-free JSON for snapshots
//!
//! The store and platform snapshot formats (see `hive-store::snapshot`
//! and `hive-core::persist`) are JSON so they stay diffable and
//! tool-readable, but the workspace is hermetic: no registry crates.
//! This crate supplies the whole serialization stack in ~700 lines:
//!
//! * [`Json`] — an owned JSON value (objects preserve insertion order,
//!   so equal states serialize to byte-identical strings),
//! * [`Json::render`] / [`Json::parse`] — writer and recursive-descent
//!   parser with a depth limit,
//! * [`ToJson`] / [`FromJson`] — conversion traits with impls for the
//!   primitives, `Vec`, `Option`, and small tuples,
//! * [`impl_json_struct!`], [`impl_json_newtype!`],
//!   [`impl_json_enum_unit!`], [`impl_json_enum_payload!`] — macros that
//!   replace the old `#[derive(Serialize, Deserialize)]` sites with
//!   explicit, greppable impls.
//!
//! Representation conventions match what serde_json derived for the
//! same types, so pre-existing snapshot files keep loading: structs are
//! objects, newtypes are their inner value, unit enum variants are
//! strings, payload variants are `{"Variant": value}` objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod parse;
mod write;

pub use parse::MAX_DEPTH;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that lexed as an integer (no `.`, `e`, or `E`).
    Int(i64),
    /// Any other number. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (not sorted, not deduplicated).
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Convenience constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }
}

impl Json {
    /// Parses a JSON document (must consume the full input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        parse::parse(text)
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write::write(self, &mut out);
        out
    }

    /// Looks up a key in an object; `Err` if missing or not an object.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field `{key}`"))),
            other => Err(JsonError::new(format!(
                "expected object with field `{key}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Short type label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {}", other.kind()))),
        }
    }

    /// Numeric value as `f64` (accepts `Int` and `Float`).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(v) => Ok(*v as f64),
            Json::Float(v) => Ok(*v),
            other => Err(JsonError::new(format!("expected number, got {}", other.kind()))),
        }
    }

    /// Integer value (rejects floats with a fractional part).
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(v) => Ok(*v),
            Json::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Ok(*v as i64),
            other => Err(JsonError::new(format!("expected integer, got {}", other.kind()))),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs the value; errors carry a human-readable reason.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// One-call serialization: value → JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// One-call deserialization: JSON string → value.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(v) => Json::Int(v),
                    // Out of i64 range (huge u64): degrade to float.
                    Err(_) => Json::Float(*self as f64),
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw)
                    .map_err(|_| JsonError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_json_int!(i64, i32, u64, u32, u16, u8, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! impl_json_tuple {
    ($($name:ident : $idx:tt),+ ; $len:literal) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let items = v.as_arr()?;
                if items.len() != $len {
                    return Err(JsonError::new(format!(
                        "expected {}-tuple, got array of {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    };
}

impl_json_tuple!(A:0 ; 1);
impl_json_tuple!(A:0, B:1 ; 2);
impl_json_tuple!(A:0, B:1, C:2 ; 3);
impl_json_tuple!(A:0, B:1, C:2, D:3 ; 4);
impl_json_tuple!(A:0, B:1, C:2, D:3, E:4 ; 5);

// ---------------------------------------------------------------------
// Derive-replacement macros
// ---------------------------------------------------------------------

/// Implements [`ToJson`]/[`FromJson`] for a struct with named public
/// fields, serialized as an object in field order.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(::std::vec![
                    $( (
                        ::std::string::String::from(stringify!($field)),
                        $crate::ToJson::to_json(&self.$field),
                    ), )*
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                ::std::result::Result::Ok($ty {
                    $( $field: v
                        .field(stringify!($field))
                        .and_then($crate::FromJson::from_json)
                        .map_err(|e| $crate::JsonError::new(::std::format!(
                            "{}.{}: {}", stringify!($ty), stringify!($field), e.0
                        )))?, )*
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct
/// (id newtypes, timestamps), serialized as the bare inner value.
#[macro_export]
macro_rules! impl_json_newtype {
    ($($ty:ident),* $(,)?) => {$(
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                ::std::result::Result::Ok($ty($crate::FromJson::from_json(v)?))
            }
        }
    )*};
}

/// Implements [`ToJson`]/[`FromJson`] for an enum of unit variants,
/// serialized as the variant name string.
#[macro_export]
macro_rules! impl_json_enum_unit {
    ($ty:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $( $ty::$variant =>
                        $crate::Json::Str(::std::string::String::from(stringify!($variant))), )*
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                match v.as_str()? {
                    $( stringify!($variant) => ::std::result::Result::Ok($ty::$variant), )*
                    other => ::std::result::Result::Err($crate::JsonError::new(
                        ::std::format!("unknown {} variant `{}`", stringify!($ty), other),
                    )),
                }
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum where every variant
/// carries exactly one payload, serialized externally tagged as
/// `{"Variant": payload}`.
#[macro_export]
macro_rules! impl_json_enum_payload {
    ($ty:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $( $ty::$variant(inner) => $crate::Json::Obj(::std::vec![(
                        ::std::string::String::from(stringify!($variant)),
                        $crate::ToJson::to_json(inner),
                    )]), )*
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                match v {
                    $crate::Json::Obj(pairs) if pairs.len() == 1 => {
                        let (tag, inner) = &pairs[0];
                        match tag.as_str() {
                            $( stringify!($variant) => ::std::result::Result::Ok(
                                $ty::$variant($crate::FromJson::from_json(inner)?),
                            ), )*
                            other => ::std::result::Result::Err($crate::JsonError::new(
                                ::std::format!("unknown {} variant `{}`", stringify!($ty), other),
                            )),
                        }
                    }
                    other => ::std::result::Result::Err($crate::JsonError::new(::std::format!(
                        "expected single-key object for {}, got {}",
                        stringify!($ty),
                        other.kind(),
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_primitives() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"");
    }

    #[test]
    fn render_escapes() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into()).render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn render_containers() {
        let v = Json::Arr(vec![Json::Int(1), Json::Null]);
        assert_eq!(v.render(), "[1,null]");
        let o = Json::Obj(vec![("a".into(), Json::Int(1)), ("b".into(), Json::Bool(false))]);
        assert_eq!(o.render(), "{\"a\":1,\"b\":false}");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_render() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.25",
            "1e3",
            "\"hello\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"k\":\"v\",\"n\":[null,false]}",
        ];
        for c in cases {
            let v = Json::parse(c).expect(c);
            let again = Json::parse(&v.render()).expect(c);
            assert_eq!(v, again, "case {c}");
        }
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").expect("parses");
        let a = v.field("a").expect("field");
        assert_eq!(a.as_arr().expect("arr").len(), 2);
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).expect("parses");
        assert_eq!(v.as_str().expect("str"), "a\"b\\c\ndA\u{e9}");
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = Json::parse(r#""\ud83d\ude00""#).expect("parses");
        assert_eq!(v.as_str().expect("str"), "\u{1F600}");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "tru", "nul", "01", "+1", "1.", ".5",
            "\"unterminated", "\"bad \\q escape\"", "[1] trailing", "{\"a\" 1}",
            "\"\\ud800\"", "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn parse_depth_limited() {
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_keep_integer_identity() {
        assert_eq!(Json::parse("42").expect("int"), Json::Int(42));
        assert_eq!(Json::parse("42.0").expect("float"), Json::Float(42.0));
        assert_eq!(Json::parse("1e2").expect("float"), Json::Float(100.0));
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for v in [0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MAX, f64::MIN_POSITIVE] {
            let s = Json::Float(v).render();
            let back = Json::parse(&s).expect("parses");
            assert_eq!(back.as_f64().expect("num").to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn primitive_conversions_round_trip() {
        let v: u32 = 7;
        assert_eq!(u32::from_json(&v.to_json()).expect("u32"), 7);
        let s = String::from("x");
        assert_eq!(String::from_json(&s.to_json()).expect("string"), "x");
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_json(&o.to_json()).expect("opt"), None);
        let t = (1u32, String::from("a"), 0.5f64);
        let back: (u32, String, f64) = FromJson::from_json(&t.to_json()).expect("tuple");
        assert_eq!(back, t);
        let vec = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&vec.to_json()).expect("vec"), vec);
    }

    #[test]
    fn conversion_errors_are_descriptive() {
        let err = u32::from_json(&Json::Int(-1)).expect_err("negative");
        assert!(err.0.contains("out of range"));
        let err = bool::from_json(&Json::Int(0)).expect_err("not bool");
        assert!(err.0.contains("expected bool"));
    }

    // Macro smoke tests: one struct, one newtype, one enum of each shape.
    #[derive(Debug)]
    struct Point {
        x: u32,
        y: u32,
        tag: String,
    }
    impl_json_struct!(Point { x, y, tag });

    struct Wrapper(u64);
    impl_json_newtype!(Wrapper);

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    impl_json_enum_unit!(Color { Red, Green });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Circle(u32),
        Label(String),
    }
    impl_json_enum_payload!(Shape { Circle, Label });

    #[test]
    fn struct_macro_round_trip() {
        let p = Point { x: 1, y: 2, tag: "origin-ish".into() };
        let json = to_string(&p);
        assert_eq!(json, "{\"x\":1,\"y\":2,\"tag\":\"origin-ish\"}");
        let back: Point = from_str(&json).expect("round trip");
        assert_eq!((back.x, back.y, back.tag), (1, 2, "origin-ish".into()));
        let err = from_str::<Point>("{\"x\":1}").expect_err("missing fields");
        assert!(err.0.contains("Point.y"), "err: {err}");
    }

    #[test]
    fn newtype_macro_round_trip() {
        let w = Wrapper(9);
        assert_eq!(to_string(&w), "9");
        let back: Wrapper = from_str("9").expect("round trip");
        assert_eq!(back.0, 9);
    }

    #[test]
    fn enum_macros_round_trip() {
        assert_eq!(to_string(&Color::Red), "\"Red\"");
        assert_eq!(from_str::<Color>("\"Green\"").expect("unit"), Color::Green);
        assert!(from_str::<Color>("\"Blue\"").is_err());
        let s = Shape::Label("big".into());
        assert_eq!(to_string(&s), "{\"Label\":\"big\"}");
        assert_eq!(from_str::<Shape>("{\"Circle\":3}").expect("payload"), Shape::Circle(3));
        assert!(from_str::<Shape>("{\"Square\":3}").is_err());
        assert!(from_str::<Shape>("7").is_err());
    }
}
