//! Compact JSON writer.
//!
//! Floats are written with `{}` formatting, which in Rust is the
//! shortest decimal string that round-trips to the same bits — so
//! snapshot weights survive dump/load bit-exactly (asserted by the
//! `float_round_trip_is_bit_exact` test in `lib.rs`).

use crate::Json;
use std::fmt::Write as _;

pub(crate) fn write(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Float(x) => write_float(*x, out),
        Json::Str(s) => write_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; degrade to null like serde_json.
        out.push_str("null");
        return;
    }
    let mut s = String::new();
    let _ = write!(s, "{x}");
    // `{}` renders integral floats without a fractional part ("42");
    // keep the ".0" so the value re-parses as Float, preserving the
    // Int/Float distinction across a round trip.
    if !s.contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
    out.push_str(&s);
}

pub(crate) fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
