//! Index-equivalence property tests: the declarative query planner must
//! be *bit-identical* to the full-scan reference path, and a
//! delta-maintained index must be bit-identical to a cold build.
//!
//! Three layers, all driven by the in-tree seeded runner
//! (`hive_bench::prop`):
//!
//! 1. **Maintenance** — after any randomized mutation burst sequence, a
//!    [`DbIndexes`] patched forward through `deltas_since` equals a
//!    cold [`DbIndexes::build`] structurally (`PartialEq`) and under
//!    [`DbIndexes::digest`].
//! 2. **Planner** — randomized [`ActivityQuery`] / [`ResourceQuery`]
//!    mixes answer identically through `run` (index-planned) and
//!    `scan` (the reference path), including against a *stale* index
//!    whose watermarks trail the database.
//! 3. **Facade** — a driven [`Hive`] keeps its cached index warm
//!    through the O(delta) patch tier: `idx.patch` fires per write
//!    burst while `idx.rebuild` stays at the initial build.

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_core::clock::Timestamp;
use hive_core::db::index::topic_tokens;
use hive_core::model::{Paper, QaTarget, Session, User};
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::{ActivityCategory, ActivityQuery, DbIndexes, Hive, HiveDb, ResourceQuery, TickRange};
use hive_rng::Rng;

/// One random platform mutation. Most arms append activity (actor and
/// category postings, time-range growth); the rarer arms add arena rows
/// so the topic maps and watermarks move too.
fn mutate(db: &mut HiveDb, rng: &mut Rng) {
    let users = db.user_ids();
    let sessions = db.session_ids();
    let papers = db.paper_ids();
    let confs = db.conference_ids();
    let u = users[rng.gen_range(0..users.len())];
    let v = users[rng.gen_range(0..users.len())];
    if rng.gen_range(0..3u32) == 0 {
        db.advance_clock(rng.gen_range(1..5u64));
    }
    match rng.gen_range(0..12u32) {
        0 | 1 => {
            let _ = db.follow(u, v);
        }
        2 | 3 => {
            let s = sessions[rng.gen_range(0..sessions.len())];
            let _ = db.check_in(u, s);
        }
        4 | 5 => {
            let p = papers[rng.gen_range(0..papers.len())];
            let _ = db.view_paper(u, p);
        }
        6 => {
            let c = confs[rng.gen_range(0..confs.len())];
            let _ = db.attend(u, c);
        }
        7 => {
            let s = sessions[rng.gen_range(0..sessions.len())];
            let _ = db.ask_question(u, QaTarget::Session(s), "why does the sketch converge", false);
        }
        8 => {
            let s = sessions[rng.gen_range(0..sessions.len())];
            let _ = db.post_tweet(Some(u), "@zach", "tensor streams drifting again", s);
        }
        9 => {
            db.add_user(User::new(
                format!("Latecomer {}", rng.gen_range(0..1000u32)),
                "Somewhere U",
            ));
        }
        10 => {
            let c = confs[rng.gen_range(0..confs.len())];
            let _ = db.add_session(Session::new(
                c,
                format!("Hot topic {}", rng.gen_range(0..100u32)),
                "R9",
            ));
        }
        _ => {
            let _ = db.add_paper(
                Paper::new(format!("Sketching study {}", rng.gen_range(0..100u32)), vec![u])
                    .with_abstract("streaming tensor decomposition sketches"),
            );
        }
    }
}

fn small_world(rng: &mut Rng) -> HiveDb {
    let sim = SimConfig { seed: rng.next_u64(), users: 8, ..SimConfig::small() };
    WorldBuilder::new(sim).build().db
}

// ---- layer 1: patch vs cold build --------------------------------------

#[test]
fn patched_index_is_bitwise_identical_to_cold_build() {
    check("index::patch_equals_build", DEFAULT_CASES / 2, |rng| {
        let mut db = small_world(rng);
        let mut idx = DbIndexes::build(&db);
        // Several bursts against the same live index: the patched state
        // of burst k seeds burst k+1, so drift would compound.
        for _ in 0..rng.gen_range(1..4usize) {
            for _ in 0..rng.gen_range(0..10usize) {
                mutate(&mut db, rng);
            }
            prop_ensure!(idx.patch(&db), "the delta log must cover a short burst");
            let cold = DbIndexes::build(&db);
            prop_ensure!(idx == cold, "patched index diverged structurally from cold build");
            prop_ensure_eq!(idx.digest(), cold.digest(), "digest must agree with cold build");
        }
        Ok(())
    });
}

// ---- layer 2: planner vs reference scan --------------------------------

fn gen_activity_query(db: &HiveDb, rng: &mut Rng) -> ActivityQuery {
    let users = db.user_ids();
    let mut q = ActivityQuery::new();
    if rng.gen_range(0..3u32) > 0 {
        let n = rng.gen_range(1..4usize);
        let actors = (0..n).map(|_| users[rng.gen_range(0..users.len())]).collect();
        q = q.with_actors(actors);
    }
    if rng.gen_range(0..3u32) == 0 {
        let all = ActivityCategory::ALL;
        let n = rng.gen_range(1..3usize);
        let cats = (0..n).map(|_| all[rng.gen_range(0..all.len())]).collect();
        q = q.with_categories(cats);
    }
    if rng.gen_range(0..2u32) == 0 {
        let now = db.now().ticks();
        let a = rng.gen_range(0..now + 2);
        let b = rng.gen_range(0..now + 2);
        q = q.within(TickRange::between(Timestamp(a.min(b)), Timestamp(a.max(b))));
    }
    q
}

fn gen_resource_query(db: &HiveDb, rng: &mut Rng) -> ResourceQuery {
    let users = db.user_ids();
    let confs = db.conference_ids();
    let papers = db.paper_ids();
    let mut q = ResourceQuery::new()
        .with_papers(rng.gen_range(0..4u32) > 0)
        .with_presentations(rng.gen_range(0..4u32) > 0)
        .with_sessions(rng.gen_range(0..4u32) > 0)
        .with_users(rng.gen_range(0..4u32) > 0);
    if rng.gen_range(0..3u32) == 0 {
        q = q.at_venue(confs[rng.gen_range(0..confs.len())]);
    }
    if rng.gen_range(0..3u32) == 0 {
        q = q.by_author(users[rng.gen_range(0..users.len())]);
    }
    if rng.gen_range(0..2u32) == 0 {
        // Half the topics come from real paper text (guaranteed hits),
        // half are random words (mostly misses).
        let p = papers[rng.gen_range(0..papers.len())];
        let toks = db.get_paper(p).map(|paper| topic_tokens(&paper.text())).unwrap_or_default();
        let topic = if rng.gen_range(0..2u32) == 0 && !toks.is_empty() {
            toks[rng.gen_range(0..toks.len())].clone()
        } else {
            format!("word{}", rng.gen_range(0..40u32))
        };
        q = q.on_topic(topic);
    }
    q
}

#[test]
fn planner_matches_scan_over_random_query_mixes() {
    check("index::run_equals_scan", DEFAULT_CASES / 2, |rng| {
        let mut db = small_world(rng);
        let stale = DbIndexes::build(&db);
        for _ in 0..rng.gen_range(0..12usize) {
            mutate(&mut db, rng);
        }
        let mut fresh = stale.clone();
        prop_ensure!(fresh.patch(&db), "the delta log must cover a short burst");
        for _ in 0..rng.gen_range(1..6usize) {
            let q = gen_activity_query(&db, rng);
            let scanned = q.scan(&db);
            prop_ensure_eq!(q.run(&db, &fresh), scanned, "activity planner vs scan ({q:?})");
            // A stale index only prunes up to its watermarks; the
            // suffix scan must make the answer exact anyway.
            prop_ensure_eq!(q.run(&db, &stale), scanned, "stale-index activity run ({q:?})");
            let r = gen_resource_query(&db, rng);
            let scanned = r.scan(&db);
            prop_ensure_eq!(r.run(&db, &fresh), scanned, "resource planner vs scan ({r:?})");
            prop_ensure_eq!(r.run(&db, &stale), scanned, "stale-index resource run ({r:?})");
        }
        Ok(())
    });
}

// ---- layer 3: the facade keeps its index warm in O(delta) --------------

#[test]
fn facade_maintains_the_index_by_patching_not_rebuilding() {
    hive_obs::with_level(hive_obs::Level::Counts, || {
        hive_obs::reset();
        let world = WorldBuilder::new(SimConfig::small()).build();
        let mut hive = Hive::new(world.db);
        let users = hive.db().user_ids();
        let papers = hive.db().paper_ids();
        let first = hive.indexes();
        for i in 0..6usize {
            hive.advance_clock(1);
            hive.view_paper(users[i % users.len()], papers[i % papers.len()]).unwrap();
            let idx = hive.indexes();
            assert_eq!(idx.generation(), hive.db().generation(), "cache must be current");
        }
        assert!(first.generation() < hive.db().generation());
        let snap = hive_obs::snapshot();
        assert_eq!(snap.counter("idx.rebuild"), 1, "only the initial cold build may rebuild");
        assert_eq!(snap.counter("idx.patch"), 6, "every write burst must patch in O(delta)");
        assert_eq!(snap.counter("core.idx.miss"), 1);
        assert_eq!(snap.counter("core.idx.delta"), 6);
    });
}
