//! Observability determinism oracles.
//!
//! Two properties, checked end-to-end over the seed-generated workload:
//!
//! 1. **Report determinism** — the same seed driven through a fresh
//!    platform twice renders a byte-identical `hive_obs` report (text
//!    and JSON), even when the soak's differential oracles fan work out
//!    across `hive-par` worker threads (worker-local counters merge
//!    commutatively, so totals are scheduling-independent).
//! 2. **No observer effect** — running with observability `Off` versus
//!    `Full` yields bit-identical platform state, per the recovery
//!    fingerprint's `f64::to_bits` battery. Recording must never branch
//!    program logic.

use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_obs::Level;
use hive_rng::Rng;
use hive_sim_harness::oracle::{self, Fingerprint};
use hive_sim_harness::workload::{self, WorkloadStats};
use hive_sim_harness::{HarnessConfig, SimHarness};

/// Drives `steps` workload steps on a fresh seed-built platform at the
/// given obs level; returns the state fingerprint and both report
/// renderings.
fn drive(level: Level, seed: u64, steps: usize) -> (Fingerprint, String, String) {
    hive_obs::with_level(level, || {
        hive_obs::reset();
        let sim = SimConfig { seed, users: 12, ..SimConfig::small() };
        let world = WorldBuilder::new(sim).build();
        let mut hive = Hive::new(world.db);
        let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
        let mut stats = WorkloadStats::default();
        for s in 0..steps {
            workload::step(&mut hive, &mut rng, s, &mut stats);
        }
        (oracle::fingerprint(&hive), hive_obs::report_text(), hive_obs::report_json())
    })
}

#[test]
fn same_seed_renders_byte_identical_reports() {
    let (fp1, text1, json1) = drive(Level::Full, 7, 120);
    let (fp2, text2, json2) = drive(Level::Full, 7, 120);
    assert!(fp1.diff(&fp2).is_empty(), "same seed must rebuild the same platform");
    assert_eq!(text1, text2, "text report must be byte-identical across fresh platforms");
    assert_eq!(json1, json2, "json report must be byte-identical across fresh platforms");
    assert!(
        text1.contains("calls="),
        "full-level report must carry per-service data:\n{text1}"
    );
}

#[test]
fn full_soak_report_is_deterministic_across_runs() {
    // The soak adds crash/restore cycles and the parallel differential
    // oracles (4 worker threads), so this also pins down the
    // worker-counter harvest: merged totals must not depend on thread
    // scheduling.
    let render = || {
        hive_obs::with_level(Level::Full, || {
            let cfg = HarnessConfig { seed: 9, steps: 60, ..HarnessConfig::default() };
            let report = SimHarness::new(cfg).run();
            assert!(report.ok(), "soak must stay violation-free:\n{}", report.render());
            (hive_obs::report_text(), hive_obs::report_json())
        })
    };
    let (text1, json1) = render();
    let (text2, json2) = render();
    assert_eq!(text1, text2);
    assert_eq!(json1, json2);
    assert!(text1.contains("par."), "soak report must include hive-par counters:\n{text1}");
    assert!(text1.contains("store."), "soak report must include hive-store counters:\n{text1}");
}

#[test]
fn observability_is_free_of_observer_effects() {
    let (fp_off, text_off, _) = drive(Level::Off, 23, 120);
    let (fp_full, text_full, _) = drive(Level::Full, 23, 120);
    let diff = fp_off.diff(&fp_full);
    assert!(diff.is_empty(), "obs-off vs obs-full state diverged: {diff:?}");
    assert!(text_off.contains("(no data recorded)"), "off level must record nothing:\n{text_off}");
    assert!(!text_full.contains("(no data recorded)"));
}

#[test]
fn counts_level_skips_spans_but_keeps_counters() {
    let (_, text, _) = drive(Level::Counts, 31, 60);
    assert!(text.contains("calls="), "counts level must keep service call counts:\n{text}");
    assert!(!text.contains("hist="), "counts level must not record histograms:\n{text}");
}
