//! Generation counters and the CSR snapshot caches: mutations must bump
//! the generation, stale views must be detected, and the facade's cached
//! relationship graph must never serve pre-mutation answers.

use hive_core::model::User;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_store::{GraphView, Term, TripleStore};

#[test]
fn store_generation_bumps_on_mutation() {
    let mut st = TripleStore::new();
    let g0 = st.generation();
    st.insert(Term::iri("user:a"), Term::iri("rel:follows"), Term::iri("user:b"), 1.0)
        .unwrap();
    let g1 = st.generation();
    assert!(g1 > g0, "insert must bump the generation");
    st.set_weight(&Term::iri("user:a"), &Term::iri("rel:follows"), &Term::iri("user:b"), 0.5)
        .unwrap();
    let g2 = st.generation();
    assert!(g2 > g1, "set_weight must bump the generation");
    assert!(st.remove(&Term::iri("user:a"), &Term::iri("rel:follows"), &Term::iri("user:b")));
    assert!(st.generation() > g2, "remove must bump the generation");
}

#[test]
fn graph_view_detects_staleness_after_each_mutation_kind() {
    let mut st = TripleStore::new();
    st.insert(Term::iri("user:a"), Term::iri("rel:follows"), Term::iri("user:b"), 1.0)
        .unwrap();

    let view = GraphView::build(&st);
    assert!(view.is_current(&st));
    st.insert(Term::iri("user:b"), Term::iri("rel:follows"), Term::iri("user:c"), 1.0)
        .unwrap();
    assert!(!view.is_current(&st), "insert must invalidate the view");

    let view = GraphView::build(&st);
    st.set_weight(&Term::iri("user:a"), &Term::iri("rel:follows"), &Term::iri("user:b"), 0.2)
        .unwrap();
    assert!(!view.is_current(&st), "set_weight must invalidate the view");

    let view = GraphView::build(&st);
    assert!(st.remove(&Term::iri("user:b"), &Term::iri("rel:follows"), &Term::iri("user:c")));
    assert!(!view.is_current(&st), "remove must invalidate the view");
}

#[test]
fn db_generation_bumps_on_content_mutations_only() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let g0 = hive.db().generation();
    let users = hive.db().user_ids();
    hive.follow(users[0], users[2]).unwrap();
    let g1 = hive.db().generation();
    assert!(g1 > g0, "follow must bump the generation");
    let _ = hive.db().generation();
    assert_eq!(hive.db().generation(), g1, "reads must not bump the generation");
    hive.add_user(User::new("Newcomer", "ASU"));
    assert!(hive.db().generation() > g1, "add_user must bump the generation");
}

#[test]
fn explain_relationship_never_serves_a_stale_view() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let (a, b) = (users[0], users[1]);
    // Warm the generation-keyed cache.
    let before = hive.explain_relationship(a, b);
    // Mutate: a now follows b (new edge + new evidence).
    let followed = hive.follow(a, b).is_ok();
    let after = hive.explain_relationship(a, b);
    if followed {
        assert!(
            after.combined >= before.combined,
            "new following evidence cannot lower the combined score: {} -> {}",
            before.combined,
            after.combined
        );
        assert!(
            after.items.len() > before.items.len()
                || after.combined > before.combined,
            "the post-mutation explanation must reflect the new edge"
        );
    }
    // Either way the cached snapshot must have been rebuilt for the new
    // generation — re-asking at the same generation is stable.
    let again = hive.explain_relationship(a, b);
    assert_eq!(after.items.len(), again.items.len());
    assert!(after.combined.to_bits() == again.combined.to_bits());
}
