//! Property tests for the concept-map substrate: bootstrap invariants,
//! alignment bounds, and evolution-diff algebra.

use hive_concept::{
    align_maps, bootstrap_concept_map, diff_maps, AlignConfig, BootstrapConfig, ConceptMap,
};
use proptest::prelude::*;

/// Small synthetic documents over a limited vocabulary so concepts repeat.
fn arb_docs() -> impl Strategy<Value = Vec<String>> {
    let word = prop::sample::select(vec![
        "tensor", "stream", "graph", "community", "query", "index", "social", "network",
        "detection", "sketch",
    ]);
    let sentence = prop::collection::vec(word, 4..10)
        .prop_map(|ws| format!("{}.", ws.join(" ")));
    prop::collection::vec(sentence, 1..6)
}

/// Random concept maps built from a tiny name pool.
fn arb_map() -> impl Strategy<Value = ConceptMap> {
    prop::collection::vec((0usize..8, 1u32..=100), 1..12).prop_map(|entries| {
        let names = [
            "tensor stream", "graph community", "query index", "social network",
            "change detection", "sketch ensemble", "stream window", "network layer",
        ];
        let mut m = ConceptMap::new("m");
        for (i, s) in &entries {
            m.add_concept(names[*i], *s as f64 / 100.0);
        }
        let present: Vec<String> = m.concepts().map(|(c, _)| c.to_string()).collect();
        for w in present.windows(2) {
            m.add_relation(&w[0], &w[1], 0.5);
        }
        m
    })
}

proptest! {
    /// Bootstrap output is always a well-formed concept map: significances
    /// and strengths in (0,1], relations only between existing concepts.
    #[test]
    fn bootstrap_invariants(docs in arb_docs()) {
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let map = bootstrap_concept_map("p", &refs, BootstrapConfig::default());
        for (_, s) in map.concepts() {
            prop_assert!(s > 0.0 && s <= 1.0);
        }
        for (a, b, w) in map.relations() {
            prop_assert!(w > 0.0 && w <= 1.0);
            prop_assert!(map.contains(a) && map.contains(b));
        }
    }

    /// Alignment scores are bounded, links respect the threshold, and the
    /// alignment is symmetric up to link direction.
    #[test]
    fn alignment_bounds(a in arb_map(), b in arb_map(), thr in 1u32..9) {
        let cfg = AlignConfig { threshold: thr as f64 / 10.0, ..Default::default() };
        let al = align_maps(&a, &b, cfg);
        for link in &al.links {
            prop_assert!(link.score >= cfg.threshold - 1e-12);
            prop_assert!(link.score <= 1.0 + 1e-12);
            prop_assert!(a.contains(&link.a));
            prop_assert!(b.contains(&link.b));
        }
        let rev = align_maps(&b, &a, cfg);
        prop_assert_eq!(al.links.len(), rev.links.len(), "alignment is symmetric");
    }

    /// Diff algebra: diff(x, x) is empty; diff is anti-symmetric in
    /// adds/removes; magnitude is non-negative and zero iff empty.
    #[test]
    fn diff_algebra(a in arb_map(), b in arb_map()) {
        let self_diff = diff_maps(&a, &a, 1e-9);
        prop_assert!(self_diff.is_empty());
        prop_assert_eq!(self_diff.magnitude(), 0.0);
        let ab = diff_maps(&a, &b, 1e-9);
        let ba = diff_maps(&b, &a, 1e-9);
        prop_assert_eq!(ab.added_concepts.len(), ba.removed_concepts.len());
        prop_assert_eq!(ab.removed_concepts.len(), ba.added_concepts.len());
        prop_assert_eq!(ab.added_relations.len(), ba.removed_relations.len());
        prop_assert!((ab.magnitude() - ba.magnitude()).abs() < 1e-9);
        prop_assert!(ab.magnitude() >= 0.0);
        prop_assert_eq!(ab.is_empty(), ab.magnitude() == 0.0);
    }

    /// Merging `b` into `a` leaves every concept at max significance and
    /// never loses a concept from either side.
    #[test]
    fn merge_is_max_union(a in arb_map(), b in arb_map()) {
        let mut merged = a.clone();
        merged.merge(&b);
        for (c, s) in a.concepts() {
            prop_assert!(merged.significance(c).expect("kept") >= s - 1e-12);
        }
        for (c, s) in b.concepts() {
            prop_assert!(merged.significance(c).expect("kept") >= s - 1e-12);
        }
        prop_assert!(merged.concept_count() <= a.concept_count() + b.concept_count());
    }
}
