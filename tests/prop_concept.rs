//! Property tests for the concept-map substrate: bootstrap invariants,
//! alignment bounds, and evolution-diff algebra. Driven by the in-tree
//! seeded runner (`hive_bench::prop`).

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_concept::{
    align_maps, bootstrap_concept_map, diff_maps, AlignConfig, BootstrapConfig, ConceptMap,
};
use hive_rng::{Rng, SliceRandom};

const WORDS: [&str; 10] = [
    "tensor", "stream", "graph", "community", "query", "index", "social", "network",
    "detection", "sketch",
];

/// Small synthetic documents over a limited vocabulary so concepts repeat.
fn gen_docs(rng: &mut Rng) -> Vec<String> {
    let n_sentences = rng.gen_range(1..6usize);
    (0..n_sentences)
        .map(|_| {
            let n_words = rng.gen_range(4..10usize);
            let ws: Vec<&str> = (0..n_words)
                .filter_map(|_| WORDS.choose(rng).copied())
                .collect();
            format!("{}.", ws.join(" "))
        })
        .collect()
}

/// Random concept maps built from a tiny name pool.
fn gen_map(rng: &mut Rng) -> ConceptMap {
    let names = [
        "tensor stream", "graph community", "query index", "social network",
        "change detection", "sketch ensemble", "stream window", "network layer",
    ];
    let mut m = ConceptMap::new("m");
    let n = rng.gen_range(1..12usize);
    for _ in 0..n {
        let i = rng.gen_range(0..8usize);
        let s = rng.gen_range(1..=100u32);
        m.add_concept(names[i], s as f64 / 100.0);
    }
    let present: Vec<String> = m.concepts().map(|(c, _)| c.to_string()).collect();
    for w in present.windows(2) {
        m.add_relation(&w[0], &w[1], 0.5);
    }
    m
}

/// Bootstrap output is always a well-formed concept map: significances
/// and strengths in (0,1], relations only between existing concepts.
#[test]
fn bootstrap_invariants() {
    check("concept::bootstrap_invariants", DEFAULT_CASES, |rng| {
        let docs = gen_docs(rng);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let map = bootstrap_concept_map("p", &refs, BootstrapConfig::default());
        for (_, s) in map.concepts() {
            prop_ensure!(s > 0.0 && s <= 1.0, "significance {s} out of range");
        }
        for (a, b, w) in map.relations() {
            prop_ensure!(w > 0.0 && w <= 1.0, "relation weight {w} out of range");
            prop_ensure!(map.contains(a) && map.contains(b), "dangling relation");
        }
        Ok(())
    });
}

/// Alignment scores are bounded, links respect the threshold, and the
/// alignment is symmetric up to link direction.
#[test]
fn alignment_bounds() {
    check("concept::alignment_bounds", DEFAULT_CASES, |rng| {
        let a = gen_map(rng);
        let b = gen_map(rng);
        let thr = rng.gen_range(1..9u32);
        let cfg = AlignConfig { threshold: thr as f64 / 10.0, ..Default::default() };
        let al = align_maps(&a, &b, cfg);
        for link in &al.links {
            prop_ensure!(link.score >= cfg.threshold - 1e-12, "link below threshold");
            prop_ensure!(link.score <= 1.0 + 1e-12, "link score above 1");
            prop_ensure!(a.contains(&link.a) && b.contains(&link.b), "dangling link");
        }
        let rev = align_maps(&b, &a, cfg);
        prop_ensure_eq!(al.links.len(), rev.links.len(), "alignment is symmetric");
        Ok(())
    });
}

/// Diff algebra: diff(x, x) is empty; diff is anti-symmetric in
/// adds/removes; magnitude is non-negative and zero iff empty.
#[test]
fn diff_algebra() {
    check("concept::diff_algebra", DEFAULT_CASES, |rng| {
        let a = gen_map(rng);
        let b = gen_map(rng);
        let self_diff = diff_maps(&a, &a, 1e-9);
        prop_ensure!(self_diff.is_empty(), "diff(x, x) not empty");
        prop_ensure_eq!(self_diff.magnitude(), 0.0);
        let ab = diff_maps(&a, &b, 1e-9);
        let ba = diff_maps(&b, &a, 1e-9);
        prop_ensure_eq!(ab.added_concepts.len(), ba.removed_concepts.len());
        prop_ensure_eq!(ab.removed_concepts.len(), ba.added_concepts.len());
        prop_ensure_eq!(ab.added_relations.len(), ba.removed_relations.len());
        prop_ensure!((ab.magnitude() - ba.magnitude()).abs() < 1e-9, "magnitude asymmetric");
        prop_ensure!(ab.magnitude() >= 0.0, "negative magnitude");
        prop_ensure_eq!(ab.is_empty(), ab.magnitude() == 0.0);
        Ok(())
    });
}

/// Merging `b` into `a` leaves every concept at max significance and
/// never loses a concept from either side.
#[test]
fn merge_is_max_union() {
    check("concept::merge_is_max_union", DEFAULT_CASES, |rng| {
        let a = gen_map(rng);
        let b = gen_map(rng);
        let mut merged = a.clone();
        merged.merge(&b);
        for (c, s) in a.concepts() {
            let kept = merged.significance(c).ok_or_else(|| format!("lost concept {c}"))?;
            prop_ensure!(kept >= s - 1e-12, "significance dropped for {c}");
        }
        for (c, s) in b.concepts() {
            let kept = merged.significance(c).ok_or_else(|| format!("lost concept {c}"))?;
            prop_ensure!(kept >= s - 1e-12, "significance dropped for {c}");
        }
        prop_ensure!(merged.concept_count() <= a.concept_count() + b.concept_count());
        Ok(())
    });
}
