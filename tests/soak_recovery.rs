//! Tier-1 soak: the deterministic simulation harness must report zero
//! violations — recovery equivalence, fault injection, and differential
//! oracles all hold — for multiple seeds, and every report must be
//! reproducible from its seed alone.

use hive_rng::Rng;
use hive_sim_harness::fault::{self, FaultKind, LoadOutcome};
use hive_sim_harness::{HarnessConfig, SimHarness};

#[test]
fn soak_zero_violations_across_seeds() {
    for seed in [11u64, 23, 47] {
        let cfg = HarnessConfig { seed, steps: 200, crash_points: 5, ..Default::default() };
        let report = SimHarness::new(cfg).run();
        assert!(report.ok(), "seed {seed} violated an oracle:\n{}", report.render());
        assert_eq!(report.steps_run, 200);
        assert_eq!(report.crashes, 5, "all crash points must fire (seed {seed})");
        // Four fault kinds x two snapshot layers at every crash point;
        // every injected corruption must come back as a typed error.
        assert_eq!(
            report.faults_injected + report.faults_skipped,
            5 * FaultKind::ALL.len() * 2,
            "fault accounting (seed {seed})"
        );
        assert!(report.faults_injected > 0, "at least one corruption lands (seed {seed})");
        assert_eq!(
            report.fault_errors, report.faults_injected,
            "every corruption surfaces as a typed error (seed {seed})"
        );
        assert!(report.diff_checks > 0, "differential oracles ran (seed {seed})");
        assert!(report.ops_applied > 0, "workload made progress (seed {seed})");
    }
}

#[test]
fn reports_reproduce_from_seed_alone() {
    let cfg = HarnessConfig { seed: 7, steps: 80, crash_points: 2, ..Default::default() };
    let a = SimHarness::new(cfg).run();
    let b = SimHarness::new(cfg).run();
    assert_eq!(a.render(), b.render(), "same seed, same report");
    let other = SimHarness::new(HarnessConfig { seed: 8, ..cfg }).run();
    assert!(other.ok());
    assert_ne!(
        a.render(),
        other.render(),
        "different seeds drive observably different runs"
    );
}

#[test]
fn every_fault_kind_yields_a_typed_error_directly() {
    // Belt-and-braces outside the harness loop: corrupt a real snapshot
    // with each kind under many rng draws; the loader must reject each
    // one without panicking, and version bumps must carry the found /
    // expected pair.
    let world = hive_core::sim::WorldBuilder::new(hive_core::sim::SimConfig::small()).build();
    let json = world.db.to_json().expect("serializes");
    let mut rng = Rng::seed_from_u64(0xfau64);
    for kind in FaultKind::ALL {
        for _ in 0..8 {
            let Some(bad) = fault::corrupt(&json, kind, &mut rng) else {
                panic!("{} must apply to a full platform snapshot", kind.label());
            };
            match fault::load_platform(&bad) {
                LoadOutcome::Rejected(e) => {
                    if kind.wants_version_error() {
                        assert!(
                            matches!(e, hive_core::HiveError::SnapshotVersion { expected, .. }
                                if expected == hive_core::persist::SNAPSHOT_VERSION),
                            "{}: wrong error: {e}",
                            kind.label()
                        );
                    }
                }
                LoadOutcome::Loaded(_) => {
                    panic!("{}: corrupted snapshot loaded silently", kind.label())
                }
                LoadOutcome::Panicked(msg) => panic!("{}: loader panicked: {msg}", kind.label()),
            }
        }
    }
}
