//! Property tests for the weighted triple store (R2DB substrate).

use hive_store::{PathQuery, Term, TripleStore};
use proptest::prelude::*;

/// A small universe of terms so collisions (and thus interesting
/// overwrite/remove behaviour) actually happen.
fn arb_entity() -> impl Strategy<Value = Term> {
    (0u32..12).prop_map(|i| Term::iri(format!("e{i}")))
}

fn arb_pred() -> impl Strategy<Value = Term> {
    (0u32..4).prop_map(|i| Term::iri(format!("p{i}")))
}

fn arb_weight() -> impl Strategy<Value = f64> {
    (1u32..=100).prop_map(|w| w as f64 / 100.0)
}

fn arb_triples() -> impl Strategy<Value = Vec<(Term, Term, Term, f64)>> {
    prop::collection::vec(
        (arb_entity(), arb_pred(), arb_entity(), arb_weight()),
        0..60,
    )
}

proptest! {
    /// Inserting then querying: every inserted triple is found with its
    /// latest weight, and the indexes stay consistent.
    #[test]
    fn insert_then_lookup(triples in arb_triples()) {
        let mut st = TripleStore::new();
        let mut expected = std::collections::HashMap::new();
        for (s, p, o, w) in &triples {
            st.insert(s.clone(), p.clone(), o.clone(), *w).unwrap();
            expected.insert((s.clone(), p.clone(), o.clone()), *w);
        }
        prop_assert_eq!(st.len(), expected.len());
        prop_assert!(st.check_invariants());
        for ((s, p, o), w) in &expected {
            prop_assert_eq!(st.weight(s, p, o), Some(*w));
        }
    }

    /// Every pattern scan returns exactly the matching subset of a full
    /// scan, for all eight bound/unbound combinations.
    #[test]
    fn scans_agree_with_full_scan(triples in arb_triples(), si in 0u32..12, pi in 0u32..4, oi in 0u32..12) {
        let mut st = TripleStore::new();
        for (s, p, o, w) in &triples {
            st.insert(s.clone(), p.clone(), o.clone(), *w).unwrap();
        }
        let s = Term::iri(format!("e{si}"));
        let p = Term::iri(format!("p{pi}"));
        let o = Term::iri(format!("e{oi}"));
        let full: Vec<(Term, Term, Term)> = st
            .triples_matching(None, None, None)
            .map(|t| st.resolve_triple(&t))
            .collect();
        for mask in 0u8..8 {
            let bs = (mask & 1 != 0).then_some(&s);
            let bp = (mask & 2 != 0).then_some(&p);
            let bo = (mask & 4 != 0).then_some(&o);
            let got: Vec<(Term, Term, Term)> = st
                .triples_matching(bs, bp, bo)
                .map(|t| st.resolve_triple(&t))
                .collect();
            let want: Vec<(Term, Term, Term)> = full
                .iter()
                .filter(|(fs, fp, fo)| {
                    bs.is_none_or(|x| x == fs)
                        && bp.is_none_or(|x| x == fp)
                        && bo.is_none_or(|x| x == fo)
                })
                .cloned()
                .collect();
            let mut got_sorted = got;
            let mut want_sorted = want;
            got_sorted.sort();
            want_sorted.sort();
            prop_assert_eq!(got_sorted, want_sorted, "mask {}", mask);
        }
    }

    /// Remove undoes insert: after removing everything, the store is
    /// empty and invariants hold at every step.
    #[test]
    fn remove_restores_empty(triples in arb_triples()) {
        let mut st = TripleStore::new();
        for (s, p, o, w) in &triples {
            st.insert(s.clone(), p.clone(), o.clone(), *w).unwrap();
        }
        for (s, p, o, _) in &triples {
            st.remove(s, p, o);
            prop_assert!(st.check_invariants());
        }
        prop_assert!(st.is_empty());
    }

    /// Snapshot round trip is the identity on contents.
    #[test]
    fn snapshot_roundtrip(triples in arb_triples()) {
        let mut st = TripleStore::new();
        for (s, p, o, w) in &triples {
            st.insert(s.clone(), p.clone(), o.clone(), *w).unwrap();
        }
        let restored = TripleStore::from_json(&st.to_json().unwrap()).unwrap();
        prop_assert_eq!(restored.len(), st.len());
        for t in st.iter() {
            let (s, p, o) = st.resolve_triple(&t);
            prop_assert_eq!(restored.weight(&s, &p, &o), Some(t.weight));
        }
    }

    /// Ranked paths: scores are sorted descending, within (0,1], and each
    /// path's score equals the product of its hop weights; paths are
    /// loop-free.
    #[test]
    fn ranked_paths_invariants(triples in arb_triples()) {
        let mut st = TripleStore::new();
        for (s, p, o, w) in &triples {
            st.insert(s.clone(), p.clone(), o.clone(), *w).unwrap();
        }
        let src = Term::iri("e0");
        let dst = Term::iri("e1");
        if st.dict().get(&src).is_none() || st.dict().get(&dst).is_none() {
            return Ok(());
        }
        let paths = PathQuery::new(src, dst).top_k(4).max_hops(4).run(&st).unwrap();
        for w in paths.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
        for path in &paths {
            prop_assert!(path.score > 0.0 && path.score <= 1.0 + 1e-12);
            let product: f64 = path.triples.iter().map(|t| t.weight).product();
            prop_assert!((path.score - product).abs() < 1e-9);
            let mut nodes = path.nodes.clone();
            nodes.sort();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), path.nodes.len(), "loop-free");
        }
    }
}

proptest! {
    /// A batch of inserts+removes leaves the store exactly as the same
    /// operations applied one by one, and invariants always hold.
    #[test]
    fn batch_equals_sequential(triples in arb_triples()) {
        use hive_store::Op;
        let ops: Vec<Op> = triples
            .iter()
            .map(|(s, p, o, w)| Op::Insert {
                s: s.clone(),
                p: p.clone(),
                o: o.clone(),
                weight: *w,
            })
            .collect();
        let mut batched = TripleStore::new();
        batched.apply_batch(&ops).unwrap();
        let mut sequential = TripleStore::new();
        for (s, p, o, w) in &triples {
            sequential.insert(s.clone(), p.clone(), o.clone(), *w).unwrap();
        }
        prop_assert_eq!(batched.len(), sequential.len());
        prop_assert!(batched.check_invariants());
        for t in sequential.iter() {
            let (s, p, o) = sequential.resolve_triple(&t);
            prop_assert_eq!(batched.weight(&s, &p, &o), Some(t.weight));
        }
    }
}
