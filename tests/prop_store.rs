//! Property tests for the weighted triple store (R2DB substrate),
//! driven by the in-tree seeded runner (`hive_bench::prop`).

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_rng::Rng;
use hive_store::{PathQuery, Term, TripleStore};

/// A small universe of terms so collisions (and thus interesting
/// overwrite/remove behaviour) actually happen.
fn gen_entity(rng: &mut Rng) -> Term {
    Term::iri(format!("e{}", rng.gen_range(0..12u32)))
}

fn gen_pred(rng: &mut Rng) -> Term {
    Term::iri(format!("p{}", rng.gen_range(0..4u32)))
}

fn gen_weight(rng: &mut Rng) -> f64 {
    rng.gen_range(1..=100u32) as f64 / 100.0
}

fn gen_triples(rng: &mut Rng) -> Vec<(Term, Term, Term, f64)> {
    let n = rng.gen_range(0..60usize);
    (0..n)
        .map(|_| (gen_entity(rng), gen_pred(rng), gen_entity(rng), gen_weight(rng)))
        .collect()
}

fn fill(st: &mut TripleStore, triples: &[(Term, Term, Term, f64)]) -> Result<(), String> {
    for (s, p, o, w) in triples {
        st.insert(s.clone(), p.clone(), o.clone(), *w)
            .map_err(|e| format!("insert failed: {e}"))?;
    }
    Ok(())
}

/// Inserting then querying: every inserted triple is found with its
/// latest weight, and the indexes stay consistent.
#[test]
fn insert_then_lookup() {
    check("store::insert_then_lookup", DEFAULT_CASES, |rng| {
        let triples = gen_triples(rng);
        let mut st = TripleStore::new();
        let mut expected = std::collections::HashMap::new();
        for (s, p, o, w) in &triples {
            st.insert(s.clone(), p.clone(), o.clone(), *w)
                .map_err(|e| format!("insert failed: {e}"))?;
            expected.insert((s.clone(), p.clone(), o.clone()), *w);
        }
        prop_ensure_eq!(st.len(), expected.len());
        prop_ensure!(st.check_invariants());
        for ((s, p, o), w) in &expected {
            prop_ensure_eq!(st.weight(s, p, o), Some(*w));
        }
        Ok(())
    });
}

/// Every pattern scan returns exactly the matching subset of a full
/// scan, for all eight bound/unbound combinations.
#[test]
fn scans_agree_with_full_scan() {
    check("store::scans_agree_with_full_scan", DEFAULT_CASES, |rng| {
        let triples = gen_triples(rng);
        let s = gen_entity(rng);
        let p = gen_pred(rng);
        let o = gen_entity(rng);
        let mut st = TripleStore::new();
        fill(&mut st, &triples)?;
        let full: Vec<(Term, Term, Term)> = st
            .triples_matching(None, None, None)
            .map(|t| st.resolve_triple(&t))
            .collect();
        for mask in 0u8..8 {
            let bs = (mask & 1 != 0).then_some(&s);
            let bp = (mask & 2 != 0).then_some(&p);
            let bo = (mask & 4 != 0).then_some(&o);
            let got: Vec<(Term, Term, Term)> = st
                .triples_matching(bs, bp, bo)
                .map(|t| st.resolve_triple(&t))
                .collect();
            let want: Vec<(Term, Term, Term)> = full
                .iter()
                .filter(|(fs, fp, fo)| {
                    bs.is_none_or(|x| x == fs)
                        && bp.is_none_or(|x| x == fp)
                        && bo.is_none_or(|x| x == fo)
                })
                .cloned()
                .collect();
            let mut got_sorted = got;
            let mut want_sorted = want;
            got_sorted.sort();
            want_sorted.sort();
            prop_ensure_eq!(got_sorted, want_sorted, "mask {mask}");
        }
        Ok(())
    });
}

/// Remove undoes insert: after removing everything, the store is empty
/// and invariants hold at every step.
#[test]
fn remove_restores_empty() {
    check("store::remove_restores_empty", DEFAULT_CASES, |rng| {
        let triples = gen_triples(rng);
        let mut st = TripleStore::new();
        fill(&mut st, &triples)?;
        for (s, p, o, _) in &triples {
            st.remove(s, p, o);
            prop_ensure!(st.check_invariants());
        }
        prop_ensure!(st.is_empty());
        Ok(())
    });
}

/// Snapshot round trip is the identity on contents.
#[test]
fn snapshot_roundtrip() {
    check("store::snapshot_roundtrip", DEFAULT_CASES, |rng| {
        let triples = gen_triples(rng);
        let mut st = TripleStore::new();
        fill(&mut st, &triples)?;
        let json = st.to_json().map_err(|e| format!("to_json: {e}"))?;
        let restored = TripleStore::from_json(&json).map_err(|e| format!("from_json: {e}"))?;
        prop_ensure_eq!(restored.len(), st.len());
        for t in st.iter() {
            let (s, p, o) = st.resolve_triple(&t);
            prop_ensure_eq!(restored.weight(&s, &p, &o), Some(t.weight));
        }
        Ok(())
    });
}

/// Shared body of the ranked-path invariants: scores sorted descending,
/// within (0,1], equal to the product of hop weights, and loop-free.
fn ranked_paths_hold(triples: &[(Term, Term, Term, f64)]) -> Result<(), String> {
    let mut st = TripleStore::new();
    fill(&mut st, triples)?;
    let src = Term::iri("e0");
    let dst = Term::iri("e1");
    if st.dict().get(&src).is_none() || st.dict().get(&dst).is_none() {
        return Ok(());
    }
    let paths = PathQuery::new(src, dst)
        .top_k(4)
        .max_hops(4)
        .run(&st)
        .map_err(|e| format!("path query: {e}"))?;
    for w in paths.windows(2) {
        prop_ensure!(w[0].score >= w[1].score - 1e-12, "scores not sorted");
    }
    for path in &paths {
        prop_ensure!(path.score > 0.0 && path.score <= 1.0 + 1e-12, "score out of range");
        let product: f64 = path.triples.iter().map(|t| t.weight).product();
        prop_ensure!(
            (path.score - product).abs() < 1e-9,
            "score {} != hop product {}",
            path.score,
            product
        );
        let mut nodes = path.nodes.clone();
        nodes.sort();
        nodes.dedup();
        prop_ensure_eq!(nodes.len(), path.nodes.len(), "path has a loop");
    }
    Ok(())
}

/// Ranked paths: randomized invariant sweep.
#[test]
fn ranked_paths_invariants() {
    check("store::ranked_paths_invariants", DEFAULT_CASES, |rng| {
        let triples = gen_triples(rng);
        ranked_paths_hold(&triples)
    });
}

/// Pinned counterexample ported from the retired
/// `prop_store.proptest-regressions` file: a low-weight 2-hop chain
/// `e1 -> e8 -> e0` coexisting with a heavier edge into `e8` once broke
/// the ranked-path score ordering.
#[test]
fn ranked_paths_regression_low_weight_chain() {
    let triples = [
        (Term::iri("e1"), Term::iri("p0"), Term::iri("e8"), 0.01),
        (Term::iri("e8"), Term::iri("p0"), Term::iri("e0"), 0.01),
        (Term::iri("e2"), Term::iri("p0"), Term::iri("e8"), 1.0),
    ];
    ranked_paths_hold(&triples).expect("regression case holds");
}

/// A batch of inserts leaves the store exactly as the same operations
/// applied one by one, and invariants always hold.
#[test]
fn batch_equals_sequential() {
    check("store::batch_equals_sequential", DEFAULT_CASES, |rng| {
        use hive_store::Op;
        let triples = gen_triples(rng);
        let ops: Vec<Op> = triples
            .iter()
            .map(|(s, p, o, w)| Op::Insert {
                s: s.clone(),
                p: p.clone(),
                o: o.clone(),
                weight: *w,
            })
            .collect();
        let mut batched = TripleStore::new();
        batched.apply_batch(&ops).map_err(|e| format!("batch: {e}"))?;
        let mut sequential = TripleStore::new();
        fill(&mut sequential, &triples)?;
        prop_ensure_eq!(batched.len(), sequential.len());
        prop_ensure!(batched.check_invariants());
        for t in sequential.iter() {
            let (s, p, o) = sequential.resolve_triple(&t);
            prop_ensure_eq!(batched.weight(&s, &p, &o), Some(t.weight));
        }
        Ok(())
    });
}
