//! Delta-maintenance property tests: patched snapshots must be
//! *bit-identical* to cold rebuilds, never merely close.
//!
//! Two layers are pinned down, both driven by the in-tree seeded
//! runner (`hive_bench::prop`):
//!
//! 1. **Store/view** — [`GraphView::apply_delta`] replays the triple
//!    store's delta-log suffix into the CSR in place; after any
//!    randomized mutation sequence the patched view must equal a cold
//!    [`GraphView::build`] under [`GraphView::bitwise_diff`] (floats by
//!    `to_bits`).
//! 2. **Facade** — a live [`Hive`] whose kn/rel snapshots are patched
//!    forward across interleaved mutations and queries must answer the
//!    battery exactly like a cold platform built from a clone of the
//!    same database.

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_rng::Rng;
use hive_store::{GraphView, Term, TripleStore};

// ---- layer 1: GraphView::apply_delta vs GraphView::build ---------------

/// A small universe of terms so mutations collide: overwrites, removes
/// of present and absent triples, rows appearing and vanishing.
fn gen_entity(rng: &mut Rng) -> Term {
    Term::iri(format!("e{}", rng.gen_range(0..10u32)))
}

fn gen_pred(rng: &mut Rng) -> Term {
    Term::iri(format!("p{}", rng.gen_range(0..3u32)))
}

fn gen_weight(rng: &mut Rng) -> f64 {
    rng.gen_range(1..=100u32) as f64 / 100.0
}

/// One random mutation; literal objects are mixed in so the patcher
/// must keep skipping attribute triples exactly like the cold scan.
fn mutate(st: &mut TripleStore, rng: &mut Rng) {
    match rng.gen_range(0..5u32) {
        0 | 1 => {
            let _ = st.insert(gen_entity(rng), gen_pred(rng), gen_entity(rng), gen_weight(rng));
        }
        2 => {
            let _ = st.insert(
                gen_entity(rng),
                gen_pred(rng),
                Term::str(format!("label{}", rng.gen_range(0..4u32))),
                1.0,
            );
        }
        3 => {
            st.remove(&gen_entity(rng), &gen_pred(rng), &gen_entity(rng));
        }
        _ => {
            let (s, p, o) = (gen_entity(rng), gen_pred(rng), gen_entity(rng));
            let w = gen_weight(rng);
            let _ = st.set_weight(&s, &p, &o, w);
        }
    }
}

/// After every mutation burst, a patched view equals a cold rebuild
/// bit-for-bit (or honestly refuses and the caller rebuilds).
#[test]
fn apply_delta_is_bitwise_identical_to_cold_rebuild() {
    check("delta::view_patch_equals_rebuild", DEFAULT_CASES, |rng| {
        let mut st = TripleStore::new();
        for _ in 0..rng.gen_range(0..40usize) {
            mutate(&mut st, rng);
        }
        let mut view = GraphView::build(&st);
        // Several bursts against the same live view: the patched state
        // of burst k is the starting point of burst k+1, so errors
        // would compound and surface.
        for _ in 0..rng.gen_range(1..4usize) {
            for _ in 0..rng.gen_range(0..12usize) {
                mutate(&mut st, rng);
            }
            if !view.apply_delta(&st) {
                view = GraphView::build(&st);
            }
            let cold = GraphView::build(&st);
            if let Some(diff) = view.bitwise_diff(&cold) {
                return Err(format!("patched view diverged from cold rebuild: {diff}"));
            }
            prop_ensure!(view.is_current(&st), "patched view must carry the new generation");
        }
        Ok(())
    });
}

/// When the delta window outgrows the view, `apply_delta` must refuse
/// (leaving the view untouched) rather than patch slower than a build.
#[test]
fn apply_delta_refuses_oversized_windows() {
    check("delta::view_patch_refuses_large_delta", DEFAULT_CASES / 4, |rng| {
        let mut st = TripleStore::new();
        st.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.5)
            .map_err(|e| e.to_string())?;
        let mut view = GraphView::build(&st);
        let before = view.clone();
        // Far past REBUILD_FRACTION of a 2-edge view (floor included).
        for i in 0..rng.gen_range(60..120u32) {
            st.insert(Term::iri(format!("n{i}")), Term::iri("p"), Term::iri("a"), 0.9)
                .map_err(|e| e.to_string())?;
        }
        prop_ensure!(!view.apply_delta(&st), "oversized delta must fall back to rebuild");
        prop_ensure!(
            view.bitwise_diff(&before).is_none(),
            "a refused patch must leave the view untouched"
        );
        let rebuilt = GraphView::build(&st);
        prop_ensure!(rebuilt.is_current(&st));
        Ok(())
    });
}

/// A view stamped by a *different* store (future generation) must
/// refuse to patch instead of splicing foreign deltas.
#[test]
fn apply_delta_refuses_foreign_generations() {
    let mut big = TripleStore::new();
    for i in 0..8 {
        big.insert(Term::iri(format!("x{i}")), Term::iri("p"), Term::iri("x0"), 0.5).unwrap();
    }
    let mut view = GraphView::build(&big);
    let mut other = TripleStore::new();
    other.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.5).unwrap();
    assert!(
        !view.apply_delta(&other),
        "a future-generation stamp must force a rebuild, not a patch"
    );
}

// ---- layer 2: delta-patched facade vs cold platform --------------------

/// Bit-exact rendering of the facade answers the oracle compares.
fn facade_battery(hive: &Hive) -> Vec<String> {
    let mut out = Vec::new();
    let users = hive.db().user_ids();
    let kn = hive.knowledge();
    for &u in users.iter().take(3) {
        let sims: Vec<String> = hive
            .similar_peers(u, 5)
            .iter()
            .map(|(v, s)| format!("{}={:016x}", v.iri(), s.to_bits()))
            .collect();
        out.push(format!("similar:{}:{}", u.iri(), sims.join("|")));
        let peers: Vec<String> = hive
            .recommend_peers(u, PeerRecConfig::default())
            .iter()
            .map(|r| format!("{}={:016x}", r.user.iri(), r.score.to_bits()))
            .collect();
        out.push(format!("peers:{}:{}", u.iri(), peers.join("|")));
    }
    if users.len() >= 2 {
        let (a, b) = (users[0], users[1]);
        out.push(format!("kn-sim:{:016x}", kn.user_similarity(a, b).to_bits()));
        let exp = hive.explain_relationship(a, b);
        let items: Vec<String> = exp
            .items
            .iter()
            .map(|i| format!("{:?}={:016x}:{}", i.kind, i.score.to_bits(), i.explanation))
            .collect();
        out.push(format!(
            "explain:{:016x}:[{}]:[{}]",
            exp.combined.to_bits(),
            items.join("|"),
            exp.paths.join("|")
        ));
    }
    out
}

/// One random patchable-or-structural facade mutation. Most choices
/// append patchable events (Follow / Connect / CheckIn / Attend /
/// ViewPaper); a rare structural one forces the rebuild path so both
/// maintenance tiers get exercised in every sequence.
fn facade_mutate(hive: &mut Hive, rng: &mut Rng) {
    let users = hive.db().user_ids();
    let sessions = hive.db().session_ids();
    let papers = hive.db().paper_ids();
    let confs = hive.db().conference_ids();
    let u = users[rng.gen_range(0..users.len())];
    let v = users[rng.gen_range(0..users.len())];
    match rng.gen_range(0..12u32) {
        0..=3 => {
            let _ = hive.follow(u, v);
        }
        4 | 5 => {
            if let Some(&s) = sessions.get(rng.gen_range(0..sessions.len().max(1))) {
                let _ = hive.check_in(u, s);
            }
        }
        6 | 7 => {
            if let Some(&p) = papers.get(rng.gen_range(0..papers.len().max(1))) {
                let _ = hive.view_paper(u, p);
            }
        }
        8 | 9 => {
            if let Some(&c) = confs.get(rng.gen_range(0..confs.len().max(1))) {
                let _ = hive.attend(u, c);
            }
        }
        10 => {
            let _ = hive.request_connection(u, v);
            let _ = hive.respond_connection(v, u, true);
        }
        _ => {
            hive.add_user(hive_core::model::User::new(
                format!("Latecomer {}", rng.gen_range(0..1000u32)),
                "Somewhere U",
            ));
        }
    }
}

/// Across interleaved mutations and queries, the live facade — whose
/// kn/rel snapshots are being patched in place — answers exactly like
/// a cold platform rebuilt from a clone of the same database. Also
/// asserts that the delta path actually ran (the property would be
/// vacuous if every checkpoint quietly rebuilt).
#[test]
fn delta_patched_facade_matches_cold_platform() {
    // Counters default to `Off` without HIVE_OBS; pin a recording level
    // so the did-the-delta-path-run assertion below has signal.
    hive_obs::with_level(hive_obs::Level::Counts, || {
        delta_patched_facade_matches_cold_platform_body();
    });
}

fn delta_patched_facade_matches_cold_platform_body() {
    let before = hive_obs::snapshot().counter("core.kn.delta");
    check("delta::facade_patch_equals_cold_platform", 10, |rng| {
        let sim = SimConfig { seed: rng.next_u64(), users: 10, ..SimConfig::small() };
        let world = WorldBuilder::new(sim).build();
        let mut hive = Hive::new(world.db);
        // Warm the snapshots so subsequent mutations patch, not rebuild.
        let _ = facade_battery(&hive);
        for _ in 0..rng.gen_range(2..5usize) {
            for _ in 0..rng.gen_range(1..6usize) {
                facade_mutate(&mut hive, rng);
            }
            let live = facade_battery(&hive);
            let cold = Hive::new(hive.db().clone());
            let fresh = facade_battery(&cold);
            prop_ensure_eq!(
                live.len(),
                fresh.len(),
                "battery shapes must match between live and cold platforms"
            );
            for (l, f) in live.iter().zip(&fresh) {
                if l != f {
                    return Err(format!(
                        "delta-patched facade diverged from cold platform:\n  live: {l}\n  cold: {f}"
                    ));
                }
            }
        }
        Ok(())
    });
    let after = hive_obs::snapshot().counter("core.kn.delta");
    assert!(
        after > before,
        "the knowledge snapshot must have been delta-patched at least once \
         ({before} -> {after}); otherwise this test only compared rebuilds"
    );
}
