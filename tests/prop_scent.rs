//! Property tests for the SCENT substrate: sketch estimator guarantees
//! and tensor algebra invariants. Driven by the in-tree seeded runner
//! (`hive_bench::prop`).

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_rng::Rng;
use hive_scent::{SketchConfig, SparseTensor, TensorSketch};

fn gen_tensor(rng: &mut Rng) -> SparseTensor {
    let mut t = SparseTensor::new(vec![8, 8, 2]);
    let n = rng.gen_range(0..40usize);
    for _ in 0..n {
        let i = rng.gen_range(0..8usize);
        let j = rng.gen_range(0..8usize);
        let k = rng.gen_range(0..2usize);
        let v = rng.gen_range(-100..100i32);
        if v != 0 {
            t.set(&[i, j, k], v as f64 / 10.0);
        }
    }
    t
}

/// Frobenius distance is a metric-ish: symmetric, zero on self, and
/// satisfies the triangle inequality.
#[test]
fn frobenius_metric() {
    check("scent::frobenius_metric", DEFAULT_CASES, |rng| {
        let a = gen_tensor(rng);
        let b = gen_tensor(rng);
        let c = gen_tensor(rng);
        prop_ensure!((a.frobenius_distance(&b) - b.frobenius_distance(&a)).abs() < 1e-9);
        prop_ensure!(a.frobenius_distance(&a) < 1e-12);
        let ab = a.frobenius_distance(&b);
        let bc = b.frobenius_distance(&c);
        let ac = a.frobenius_distance(&c);
        prop_ensure!(ac <= ab + bc + 1e-9, "triangle inequality violated");
        Ok(())
    });
}

/// The sketch is linear: sketching after a delta equals applying the
/// delta to the sketch.
#[test]
fn sketch_linearity() {
    check("scent::sketch_linearity", DEFAULT_CASES, |rng| {
        let t = gen_tensor(rng);
        let i = rng.gen_range(0..8usize);
        let j = rng.gen_range(0..8usize);
        let k = rng.gen_range(0..2usize);
        let dv = rng.gen_range(-50..50i32);
        let cfg = SketchConfig { measurements: 32, seed: 11 };
        let mut sk = TensorSketch::compute(&t, cfg);
        let mut t2 = t.clone();
        t2.add(&[i, j, k], dv as f64 / 10.0);
        sk.apply_delta(&[i, j, k], dv as f64 / 10.0);
        let fresh = TensorSketch::compute(&t2, cfg);
        prop_ensure!(sk.estimate_distance(&fresh) < 1e-9, "incremental != recompute");
        Ok(())
    });
}

/// The distance estimator is unbiased enough: with a large ensemble,
/// the estimate is within 60% of the true distance (JL concentration;
/// loose bound to keep the test deterministic-ish over seeds).
#[test]
fn sketch_estimates_distance() {
    check("scent::sketch_estimates_distance", DEFAULT_CASES, |rng| {
        let a = gen_tensor(rng);
        let b = gen_tensor(rng);
        let seed = rng.gen_range(0..20u64);
        let exact = a.frobenius_distance(&b);
        if exact <= 0.5 {
            return Ok(()); // skip near-identical pairs
        }
        let cfg = SketchConfig { measurements: 1024, seed };
        let sa = TensorSketch::compute(&a, cfg);
        let sb = TensorSketch::compute(&b, cfg);
        let est = sa.estimate_distance(&sb);
        let rel = (est - exact).abs() / exact;
        prop_ensure!(rel < 0.6, "estimate {est} vs exact {exact} (rel {rel})");
        Ok(())
    });
}

/// Identical tensors always sketch identically (estimate = 0).
#[test]
fn identical_sketches() {
    check("scent::identical_sketches", DEFAULT_CASES, |rng| {
        let t = gen_tensor(rng);
        let seed = rng.gen_range(0..20u64);
        let cfg = SketchConfig { measurements: 16, seed };
        let s1 = TensorSketch::compute(&t, cfg);
        let s2 = TensorSketch::compute(&t, cfg);
        prop_ensure_eq!(s1.estimate_distance(&s2), 0.0);
        Ok(())
    });
}

/// CUSUM on a constant score stream never fires, regardless of the
/// (positive) threshold and drift.
#[test]
fn cusum_quiet_on_constant_streams() {
    check("scent::cusum_quiet_on_constant_streams", DEFAULT_CASES, |rng| {
        use hive_scent::{detect_changes_cusum, EpochScore};
        let level = rng.gen_range(1..100u32);
        let threshold = rng.gen_range(1..10u32);
        let n = rng.gen_range(8..40usize);
        let scores: Vec<EpochScore> = (1..=n)
            .map(|e| EpochScore { epoch: e, score: level as f64 })
            .collect();
        let hits = detect_changes_cusum(&scores, threshold as f64, 0.5, 5);
        prop_ensure!(hits.is_empty(), "constant stream fired: {hits:?}");
        Ok(())
    });
}
