//! Property tests for the SCENT substrate: sketch estimator guarantees
//! and tensor algebra invariants.

use hive_scent::{SketchConfig, SparseTensor, TensorSketch};
use proptest::prelude::*;

fn arb_tensor() -> impl Strategy<Value = SparseTensor> {
    prop::collection::vec(
        ((0usize..8, 0usize..8, 0usize..2), -100i32..100),
        0..40,
    )
    .prop_map(|cells| {
        let mut t = SparseTensor::new(vec![8, 8, 2]);
        for ((i, j, k), v) in cells {
            if v != 0 {
                t.set(&[i, j, k], v as f64 / 10.0);
            }
        }
        t
    })
}

proptest! {
    /// Frobenius distance is a metric-ish: symmetric, zero on self, and
    /// satisfies the triangle inequality.
    #[test]
    fn frobenius_metric(a in arb_tensor(), b in arb_tensor(), c in arb_tensor()) {
        prop_assert!((a.frobenius_distance(&b) - b.frobenius_distance(&a)).abs() < 1e-9);
        prop_assert!(a.frobenius_distance(&a) < 1e-12);
        let ab = a.frobenius_distance(&b);
        let bc = b.frobenius_distance(&c);
        let ac = a.frobenius_distance(&c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    /// The sketch is linear: sketching after a delta equals applying the
    /// delta to the sketch.
    #[test]
    fn sketch_linearity(t in arb_tensor(), i in 0usize..8, j in 0usize..8, k in 0usize..2, dv in -50i32..50) {
        let cfg = SketchConfig { measurements: 32, seed: 11 };
        let mut sk = TensorSketch::compute(&t, cfg);
        let mut t2 = t.clone();
        t2.add(&[i, j, k], dv as f64 / 10.0);
        sk.apply_delta(&[i, j, k], dv as f64 / 10.0);
        let fresh = TensorSketch::compute(&t2, cfg);
        prop_assert!((sk.estimate_distance(&fresh)) < 1e-9, "incremental == recompute");
    }

    /// The distance estimator is unbiased enough: with a large ensemble,
    /// the estimate is within 60% of the true distance (JL concentration;
    /// loose bound to keep the test deterministic-ish over seeds).
    #[test]
    fn sketch_estimates_distance(a in arb_tensor(), b in arb_tensor(), seed in 0u64..20) {
        let exact = a.frobenius_distance(&b);
        prop_assume!(exact > 0.5); // skip near-identical pairs
        let cfg = SketchConfig { measurements: 1024, seed };
        let sa = TensorSketch::compute(&a, cfg);
        let sb = TensorSketch::compute(&b, cfg);
        let est = sa.estimate_distance(&sb);
        let rel = (est - exact).abs() / exact;
        prop_assert!(rel < 0.6, "estimate {est} vs exact {exact} (rel {rel})");
    }

    /// Identical tensors always sketch identically (estimate = 0).
    #[test]
    fn identical_sketches(t in arb_tensor(), seed in 0u64..20) {
        let cfg = SketchConfig { measurements: 16, seed };
        let s1 = TensorSketch::compute(&t, cfg);
        let s2 = TensorSketch::compute(&t, cfg);
        prop_assert_eq!(s1.estimate_distance(&s2), 0.0);
    }
}

proptest! {
    /// CUSUM on a constant score stream never fires, regardless of the
    /// (positive) threshold and drift.
    #[test]
    fn cusum_quiet_on_constant_streams(
        level in 1u32..100,
        threshold in 1u32..10,
        n in 8usize..40,
    ) {
        use hive_scent::{detect_changes_cusum, EpochScore};
        let scores: Vec<EpochScore> = (1..=n)
            .map(|e| EpochScore { epoch: e, score: level as f64 })
            .collect();
        let hits = detect_changes_cusum(&scores, threshold as f64, 0.5, 5);
        prop_assert!(hits.is_empty(), "constant stream fired: {:?}", hits);
    }
}
