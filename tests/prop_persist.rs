//! Property tests for snapshot JSON round-tripping (platform and store
//! layers): float weights survive bit-exactly, empty collections and
//! unicode text round-trip, and a re-render of a restored snapshot is
//! byte-identical to the original (canonical field order).

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_core::model::User;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::HiveDb;
use hive_store::snapshot::SNAPSHOT_VERSION;
use hive_store::{Term, TripleStore};

#[test]
fn platform_snapshot_roundtrips_byte_identically() {
    check("platform-snapshot-roundtrip", 12, |rng| {
        let sim = SimConfig {
            seed: rng.next_u64(),
            users: rng.gen_range(4..9usize),
            topics: rng.gen_range(2..5usize),
            conferences: rng.gen_range(1..3usize),
            sessions_per_conf: rng.gen_range(2..5usize),
            papers_per_conf: rng.gen_range(3..7usize),
            ..SimConfig::small()
        };
        let mut db = WorldBuilder::new(sim).build().db;
        // Unicode survives: names, affiliations, interests.
        db.add_user(
            User::new("Šárka Ångström 研究者 🐝", "Üniversität Zürich")
                .with_interests(vec!["グラフ解析 — tensor žürich".into()]),
        );
        let json = db.to_json().map_err(|e| e.to_string())?;
        let restored = HiveDb::from_json(&json).map_err(|e| e.to_string())?;
        let rejson = restored.to_json().map_err(|e| e.to_string())?;
        prop_ensure_eq!(json, rejson, "restored snapshot must re-render byte-identically");
        prop_ensure_eq!(restored.user_ids(), db.user_ids());
        prop_ensure_eq!(restored.now(), db.now());
        prop_ensure_eq!(restored.activity_log().len(), db.activity_log().len());
        Ok(())
    });
}

#[test]
fn empty_platform_roundtrips() {
    let db = HiveDb::new();
    let json = db.to_json().expect("serializes");
    let restored = HiveDb::from_json(&json).expect("empty collections load");
    assert!(restored.user_ids().is_empty());
    assert_eq!(restored.to_json().expect("re-renders"), json);
}

#[test]
fn store_snapshot_roundtrips_float_weights_bit_exactly() {
    check("store-snapshot-roundtrip", DEFAULT_CASES, |rng| {
        let mut st = TripleStore::new();
        let n = rng.gen_range(0..40usize);
        let mut triples = Vec::new();
        for i in 0..n {
            // Weights spread across the full (0, 1] range, including
            // values with long binary expansions.
            let w = (rng.gen_f64() + f64::MIN_POSITIVE).min(1.0);
            let s = Term::iri(format!("ノード:{i}—héllo"));
            let p = Term::iri(format!("rel:ähnlich-{}", i % 3));
            let o = if i % 4 == 0 {
                Term::str(format!("🐝 label {i}"))
            } else {
                Term::iri(format!("node:{}", rng.gen_range(0..50u32)))
            };
            if st.insert(s.clone(), p.clone(), o.clone(), w).is_ok() {
                triples.push((s, p, o, w));
            }
        }
        let json = st.to_json().map_err(|e| e.to_string())?;
        let restored = TripleStore::from_json(&json).map_err(|e| e.to_string())?;
        prop_ensure_eq!(restored.len(), st.len());
        let rejson = restored.to_json().map_err(|e| e.to_string())?;
        prop_ensure_eq!(json, rejson, "store snapshot must re-render byte-identically");
        for (s, p, o, w) in &triples {
            let got = restored.weight(s, p, o);
            prop_ensure!(
                got.map(f64::to_bits) == Some(w.to_bits()),
                "weight drifted: stored {w:?}, got {got:?}"
            );
        }
        Ok(())
    });
}

#[test]
fn empty_store_roundtrips() {
    let st = TripleStore::new();
    let restored = TripleStore::from_json(&st.to_json().expect("serializes")).expect("loads");
    assert!(restored.is_empty());
}

#[test]
fn bumped_versions_always_rejected_with_found_and_expected() {
    check("store-snapshot-version-gate", DEFAULT_CASES, |rng| {
        let bump = rng.gen_range(1..10_000u32);
        let found = SNAPSHOT_VERSION + bump;
        let json = TripleStore::new()
            .to_json()
            .map_err(|e| e.to_string())?
            .replace(
                &format!("\"version\":{SNAPSHOT_VERSION}"),
                &format!("\"version\":{found}"),
            );
        match TripleStore::from_json(&json) {
            Err(hive_store::StoreError::SnapshotVersion { found: f, expected }) => {
                prop_ensure_eq!(f, found);
                prop_ensure_eq!(expected, SNAPSHOT_VERSION);
                Ok(())
            }
            other => Err(format!("expected SnapshotVersion error, got {other:?}")),
        }
    });
}
