//! The paper's §1.1 use scenario ("Zach at EDBT'13") replayed end-to-end
//! against the API, asserting each bullet's observable outcome.

use hive_core::clock::Timestamp;
use hive_core::model::*;
use hive_core::peers::PeerRecConfig;
use hive_core::{Hive, HiveDb};

/// Builds the scenario fixture: Zach (2nd-year PhD), his advisor, prior
/// conferences (EDBT'12, SIGMOD'12) and EDBT'13 with sessions and papers.
fn scenario() -> (Hive, ScenarioIds) {
    let mut db = HiveDb::new();
    let zach = db.add_user(
        User::new("Zach", "ASU").with_interests(vec![
            "social media analysis".into(),
            "tensor streams".into(),
        ]),
    );
    let advisor = db.add_user(User::new("Advisor", "ASU").with_interests(vec![
        "tensor streams".into(),
    ]));
    let aaron = db.add_user(User::new("Aaron", "EPFL").with_interests(vec![
        "tensor streams".into(),
    ]));
    let ann = db.add_user(User::new("Ann", "UniTo").with_interests(vec![
        "community detection".into(),
    ]));
    let chair = db.add_user(User::new("Chair", "NEC").with_interests(vec![
        "graph processing".into(),
    ]));
    let edbt12 = db.add_conference(Conference::new("EDBT", 2012, "Berlin"));
    let sigmod12 = db.add_conference(Conference::new("SIGMOD", 2012, "Scottsdale"));
    let edbt13 = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
    let my_session = db
        .add_session({
            let mut s = Session::new(edbt13, "Social Media Analysis", "R1")
                .with_topics(vec!["social media tensor streams".into()]);
            s.chair = Some(chair);
            s
        })
        .unwrap();
    let graph_session = db
        .add_session(
            Session::new(edbt13, "Large Scale Graph Processing", "R2")
                .with_topics(vec!["large scale graph processing".into()]),
        )
        .unwrap();
    let community_session = db
        .add_session(
            Session::new(edbt13, "Community Detection", "R3")
                .with_topics(vec!["community detection in networks".into()]),
        )
        .unwrap();
    // Chair's earlier paper, which Zach cited at SIGMOD'12.
    let chair_paper = db
        .add_paper(
            Paper::new("Graph engines", vec![chair])
                .with_abstract("large scale graph processing engines")
                .at_venue(edbt12),
        )
        .unwrap();
    // Ann's EDBT'10-style paper that Zach cites.
    let ann_paper = db
        .add_paper(
            Paper::new("Detecting communities", vec![ann])
                .with_abstract("community detection in social networks"),
        )
        .unwrap();
    let zach_sigmod = db
        .add_paper(
            Paper::new("Social media tensors", vec![zach, advisor])
                .with_abstract("tensor streams for social media analysis")
                .at_venue(sigmod12)
                .citing(vec![chair_paper, ann_paper]),
        )
        .unwrap();
    let zach_edbt13 = db
        .add_paper(
            Paper::new("Streaming social tensors", vec![zach, advisor])
                .with_abstract("compressed monitoring of social tensor streams")
                .at_venue(edbt13)
                .citing(vec![zach_sigmod]),
        )
        .unwrap();
    // A graph-session paper citing what Zach cites (shared references).
    let graph_paper = db
        .add_paper(
            Paper::new("Graph partitioning at scale", vec![aaron])
                .with_abstract("large scale graph partitioning")
                .at_venue(edbt13)
                .citing(vec![chair_paper]),
        )
        .unwrap();
    db.add_presentation(
        Presentation::new(graph_paper, aaron, graph_session)
            .with_slides("graph partitioning slides"),
    )
    .unwrap();
    for u in [zach, advisor, aaron, ann, chair] {
        db.attend(u, edbt13).ok();
    }
    db.attend(zach, edbt12).unwrap();
    db.attend(zach, sigmod12).unwrap();
    let hive = Hive::new(db);
    (
        hive,
        ScenarioIds {
            zach,
            advisor,
            aaron,
            ann,
            chair,
            my_session,
            graph_session,
            community_session,
            zach_edbt13,
        },
    )
}

struct ScenarioIds {
    zach: hive_core::ids::UserId,
    advisor: hive_core::ids::UserId,
    aaron: hive_core::ids::UserId,
    ann: hive_core::ids::UserId,
    chair: hive_core::ids::UserId,
    my_session: hive_core::ids::SessionId,
    graph_session: hive_core::ids::SessionId,
    community_session: hive_core::ids::SessionId,
    zach_edbt13: hive_core::ids::PaperId,
}

#[test]
fn zach_scenario_end_to_end() {
    let (mut hive, ids) = scenario();

    // "Before leaving for EDBT'13, Zach uploads his presentation slides."
    let pres = hive
        .add_presentation(
            Presentation::new(ids.zach_edbt13, ids.zach, ids.my_session)
                .with_slides("slide 1: model; slide 2: equation E = mc3 (typo); slide 3: results"),
        )
        .unwrap();

    // "Hive proposes other researchers Zach may want to connect."
    let recs = hive.recommend_peers(ids.zach, PeerRecConfig::default());
    assert!(!recs.is_empty());
    assert!(
        recs.iter().all(|r| r.user != ids.zach),
        "no self-recommendation"
    );

    // "Hive reminds Zach that the chair of his session is one of the
    // authors whose paper he had cited" — evidence between Zach and chair.
    let exp = hive.explain_relationship(ids.zach, ids.chair);
    assert!(
        exp.items
            .iter()
            .any(|i| i.kind == hive_core::evidence::EvidenceKind::DirectCitation),
        "citation evidence to the session chair: {:?}",
        exp.items
    );

    // Zach follows the chair and drops avatars into his session workpad.
    hive.follow(ids.zach, ids.chair).unwrap();
    let pad = hive.create_workpad(ids.zach, "session").unwrap();
    hive.workpad_add(ids.zach, pad, WorkpadItem::UserAvatar(ids.chair)).unwrap();
    hive.workpad_add(ids.zach, pad, WorkpadItem::UserAvatar(ids.aaron)).unwrap();

    // "A few of the researchers he is following are checking into a
    // session on large scale graph processing."
    hive.follow(ids.zach, ids.aaron).unwrap();
    let since = hive.db().now();
    hive.advance_clock(2);
    hive.check_in(ids.aaron, ids.graph_session).unwrap();
    let updates = hive.updates_for(ids.zach, since);
    assert!(
        updates.iter().any(|u| u.actor == ids.aaron && u.text.contains("Graph")),
        "{updates:?}"
    );

    // Zach attends and posts questions; the exchange hits the hashtag.
    hive.check_in(ids.zach, ids.graph_session).unwrap();
    let q = hive
        .ask_question(
            ids.zach,
            QaTarget::Session(ids.graph_session),
            "how does partitioning interact with streaming updates?",
            true,
        )
        .unwrap();
    hive.answer_question(ids.aaron, q, "we rebalance lazily").unwrap();
    let ticker = hive.session_ticker(ids.graph_session, since);
    assert!(ticker.iter().any(|l| l.contains("[twitter]")));

    // "There is already a question posted regarding the presentation he
    // had uploaded... he notices a typo and corrects the slide."
    let q_since = hive.db().now();
    hive.advance_clock(1);
    hive.ask_question(
        ids.ann,
        QaTarget::Presentation(pres),
        "is the equation on slide 2 right?",
        false,
    )
    .unwrap();
    let my_updates = hive.updates_for(ids.zach, q_since);
    assert!(my_updates.iter().any(|u| u.text.contains("your presentation")));
    hive.revise_slides(ids.zach, pres, "slide 2: equation E = mc2 (fixed)")
        .unwrap();
    assert_eq!(hive.db().get_presentation(pres).unwrap().revision, 1);

    // "Zach sends a connection request to Aaron and receives an
    // acknowledgement."
    hive.request_connection(ids.zach, ids.aaron).unwrap();
    hive.respond_connection(ids.aaron, ids.zach, true).unwrap();
    assert!(hive.db().are_connected(ids.zach, ids.aaron));

    // "He adds Ann's avatar to his workpad and then goes to the session
    // on community detection."
    hive.workpad_add(ids.zach, pad, WorkpadItem::UserAvatar(ids.ann)).unwrap();
    hive.check_in(ids.zach, ids.community_session).unwrap();

    // "Back at the university, his advisor and Zach discuss his
    // activities" — the history service reconstructs the trip.
    let hist = hive.search_history(
        &hive_core::history::HistoryQuery::new()
            .with_actors(vec![ids.zach])
            .within(hive_core::TickRange::since(Timestamp(0))),
        None,
    );
    assert!(hist.len() >= 6, "the trip left a rich trace: {}", hist.len());
    let digest = hive.digest(ids.advisor, Timestamp(0));
    // The advisor follows nobody yet, so his digest is empty — he follows
    // Zach and sees the whole story.
    assert!(digest.updates.is_empty());
    let mut hive2 = hive;
    hive2.follow(ids.advisor, ids.zach).unwrap();
    let digest = hive2.digest(ids.advisor, Timestamp(0));
    assert!(!digest.updates.is_empty());
    assert!(digest.counts.contains_key("checkin"));
}
