//! Concurrent-serving properties of the epoch snapshot layer:
//! readers pinned to an epoch see no torn state, epoch generations are
//! monotone, a long-lived reader on an old epoch still answers
//! correctly after many writes, and the N-reader × 1-writer soak holds
//! the snapshot-consistency oracle across seeds.

use hive_core::discover::DiscoverConfig;
use hive_core::serve::{Epoch, HiveServer};
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_replica::{Cluster, ClusterConfig, FaultPlan};
use hive_rng::Rng;
use hive_sim_harness::{serve_soak, ServeConfig};
use std::sync::Arc;

fn server() -> HiveServer {
    HiveServer::new(WorldBuilder::new(SimConfig::small()).build().db)
}

fn battery(epoch: &Epoch) -> String {
    let users = epoch.db().user_ids();
    let u = users[0];
    let similar: Vec<String> = epoch
        .similar_peers(u, 5)
        .into_iter()
        .map(|(v, s)| format!("{}={:016x}", v.iri(), s.to_bits()))
        .collect();
    let hits: Vec<String> = epoch
        .search(u, "tensor stream sketch", DiscoverConfig::default())
        .into_iter()
        .map(|h| format!("{:016x}:{}", h.score.to_bits(), h.title))
        .collect();
    format!(
        "gen={} log={} similar={} search={}",
        epoch.generation(),
        epoch.db().activity_log().len(),
        similar.join("|"),
        hits.join("|")
    )
}

#[test]
fn pinned_epoch_sees_no_torn_state_across_repeated_calls() {
    let mut s = server();
    let pinned = s.current();
    let before = battery(&pinned);
    // Interleave heavy writes (unpublished and published) with repeated
    // reads of the pinned epoch: every call must answer identically.
    let users = s.hive().db().user_ids();
    for i in 0..8 {
        s.writer().advance_clock(3);
        s.writer().follow(users[i % users.len()], users[(i + 3) % users.len()]).ok();
        if i % 3 == 2 {
            s.publish();
        }
        assert_eq!(battery(&pinned), before, "pinned epoch tore at write {i}");
    }
}

#[test]
fn epoch_generations_and_seqs_are_monotone() {
    let mut s = server();
    let reader = s.reader();
    let users = s.hive().db().user_ids();
    let paper = s.hive().db().paper_ids()[0];
    let mut last_seq = s.current().seq();
    let mut last_gen = s.current().generation();
    for i in 0..12 {
        s.writer().advance_clock(1);
        s.writer().view_paper(users[i % users.len()], paper).ok();
        let e = s.publish();
        assert!(e.seq() > last_seq, "publish seq must strictly increase");
        assert!(e.generation() > last_gen, "mutations must advance the generation");
        last_seq = e.seq();
        last_gen = e.generation();
        let seen = reader.epoch();
        assert_eq!(seen.seq(), last_seq, "reader sees the latest publish");
    }
}

#[test]
fn long_lived_reader_on_old_epoch_answers_like_a_serial_replay() {
    let mut s = server();
    let reader = s.reader();
    let old = reader.epoch();
    let old_battery = battery(&old);
    let users = s.hive().db().user_ids();
    let sessions = s.hive().db().session_ids();
    for i in 0..60 {
        s.writer().advance_clock(2);
        match i % 3 {
            0 => {
                s.writer().follow(users[i % users.len()], users[(i + 5) % users.len()]).ok();
            }
            1 => {
                s.writer().check_in(users[i % users.len()], sessions[i % sessions.len()]).ok();
            }
            _ => {
                let papers = s.hive().db().paper_ids();
                s.writer().view_paper(users[i % users.len()], papers[i % papers.len()]).ok();
            }
        }
        if i % 10 == 9 {
            s.publish();
        }
    }
    assert!(
        reader.current_generation() > old.generation(),
        "the slot moved on while the old epoch stayed pinned"
    );
    // The old epoch answers exactly as it did before the writes...
    assert_eq!(battery(&old), old_battery);
    // ...and exactly as a cold platform rebuilt from its own snapshot.
    let cold = Epoch::rebuild(Arc::new(old.db().clone()));
    assert_eq!(battery(&old), battery(&cold));
    // The live epoch has genuinely diverged from the pinned one.
    let fresh = reader.epoch();
    assert!(fresh.generation() > old.generation());
    assert_ne!(
        fresh.db().activity_log().len(),
        old.db().activity_log().len(),
        "later epochs carry the new activity"
    );
}

#[test]
fn reader_pinned_across_failover_stays_replay_consistent() {
    // A long-lived ReadHandle taken from a follower must survive that
    // instance's whole demote/promote arc: the pinned epoch answers
    // identically throughout (and identically to a cold replay of its
    // own snapshot), and after promotion the same handle starts seeing
    // the new leader's epochs.
    let db = WorldBuilder::new(SimConfig::small()).build().db;
    let mut cluster = Cluster::new(
        db,
        1,
        ClusterConfig { seed: 77, checkpoint_every: 6, faults: FaultPlan::none() },
    );
    let reader = cluster.follower_reader(0).expect("bootstrapped follower serves");
    let pinned = reader.epoch();
    let before = battery(&pinned);
    let pinned_gen = reader.current_generation();

    let mut rng = Rng::seed_from_u64(77);
    let mut drive = |cluster: &mut Cluster, steps: std::ops::Range<usize>| {
        for step in steps {
            for op in hive_replica::synth::step_ops(cluster.leader_hive(), step, &mut rng) {
                let _ = cluster.apply(op);
            }
            cluster.commit();
        }
    };

    // Replicated writes land on the follower the handle points at...
    drive(&mut cluster, 0..25);
    assert!(cluster.heal(8));
    assert_eq!(battery(&pinned), before, "pinned epoch tore while following");
    assert!(
        reader.current_generation() > pinned_gen,
        "the follower must have published fresher epochs meanwhile"
    );

    // ...then the instance is promoted to leader mid-lifetime...
    cluster.promote(0).expect("caught-up follower promotes");
    let gen_at_promotion = reader.current_generation();
    drive(&mut cluster, 25..50);

    // ...and the very same handle now serves the leader's epochs,
    // while the pinned epoch still answers exactly as on day one.
    assert!(
        reader.current_generation() > gen_at_promotion,
        "the handle must see epochs published after promotion"
    );
    assert_eq!(battery(&pinned), before, "pinned epoch tore across failover");
    let cold = Epoch::rebuild(Arc::new(pinned.db().clone()));
    assert_eq!(battery(&pinned), battery(&cold), "pinned epoch must equal a cold replay");
    assert_eq!(
        reader.epoch().generation(),
        cluster.leader().generation(),
        "the handle tracks the promoted leader's head"
    );
}

#[test]
fn serve_soak_holds_across_seeds() {
    // Acceptance bar: ≥ 3 seeds × ≥ 200 steps of mixed reader/writer
    // traffic with zero snapshot-consistency violations.
    for seed in [41, 42, 43] {
        let report = serve_soak(ServeConfig {
            seed,
            steps: 200,
            readers: 3,
            publish_every: 10,
            users: 12,
        });
        assert!(report.ok(), "{}", report.render());
        assert!(report.publishes >= 20, "seed {seed}: expected ≥20 epochs");
        assert!(report.reads >= 4, "seed {seed}: every reader must read");
    }
}
