//! Property suite for the incremental PPR engine: across seeded random
//! graphs and randomized edge-arrival interleavings, forward-push
//! maintenance must stay within the certified L1 envelope of a cold
//! power iteration, preserve the exact top-k ordering the serving
//! battery fingerprints, and fall back bit-identically to cold when
//! its error budget is exhausted. A final leg proves the facade's
//! generation-keyed PPR tier emits its hit/delta/miss counters.

use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_graph::{
    personalized_pagerank_csr, CsrView, DynPprConfig, DynamicPpr, Graph, NodeId, PprConfig,
};
use hive_rng::Rng;
use std::collections::HashMap;

/// Serving-path accuracy envelope: full iteration sits within
/// `tolerance * d / (1 - d)` of the fixed point and the push engine
/// within its own `push_tolerance`, so the two may differ by at most
/// the sum — 1e-8 with the default configs.
const L1_ENVELOPE: f64 = 1e-8;

fn uniform_graph(n: usize, edges: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("u{i}"))).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..edges {
        let a = ids[rng.gen_range(0..n)];
        let b = ids[rng.gen_range(0..n)];
        if a != b {
            g.add_undirected_edge(a, b, rng.gen_range(0.1..1.0));
        }
    }
    g
}

/// Ring of cliques: the community-structured topology (strong
/// in-clique edges, weak bridges) where locality makes most arrivals
/// nearly free for the push engine.
fn community_graph(cliques: usize, size: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let mut rng = Rng::seed_from_u64(seed);
    let ids: Vec<NodeId> =
        (0..cliques * size).map(|i| g.add_node(format!("c{i}"))).collect();
    for c in 0..cliques {
        let base = c * size;
        for i in 0..size {
            for _ in 0..3 {
                let j = rng.gen_range(0..size);
                if i != j {
                    g.add_undirected_edge(
                        ids[base + i],
                        ids[base + j],
                        rng.gen_range(0.5..1.0),
                    );
                }
            }
        }
        let next = (c + 1) % cliques * size;
        for _ in 0..2 {
            g.add_undirected_edge(
                ids[base + rng.gen_range(0..size)],
                ids[next + rng.gen_range(0..size)],
                0.05,
            );
        }
    }
    g
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Ranking the serving path fingerprints: score descending via
/// `total_cmp`, NodeId ascending on exact ties.
fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked.into_iter().map(|(i, _)| i).collect()
}

/// Replays `rounds` random arrivals into an engine and a plain graph
/// copy, interleaving queries, and checks the L1 envelope plus exact
/// top-k agreement after every queried round.
fn check_interleaving(graph: Graph, seeds: HashMap<NodeId, f64>, seed: u64, rounds: usize) {
    let mut engine =
        DynamicPpr::new(graph.clone(), PprConfig::default(), DynPprConfig::default());
    let mut full = graph;
    let _ = engine.scores_incremental(&seeds);
    let mut rng = Rng::seed_from_u64(seed);
    for round in 0..rounds {
        // A burst of 1..=4 arrivals between queries: interleaving
        // pattern varies per round, driven by the same seeded stream.
        for _ in 0..rng.gen_range(1..=4usize) {
            let n = full.node_count();
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if u == v {
                continue;
            }
            let (u, v) = (NodeId(u as u32), NodeId(v as u32));
            let w = rng.gen_range(0.1..1.0);
            engine.apply_undirected_edge(u, v, w);
            full.add_undirected_edge(u, v, w);
        }
        let incr = engine.scores_incremental(&seeds);
        let cold =
            personalized_pagerank_csr(&CsrView::build(&full), &seeds, PprConfig::default());
        let drift = l1(&incr, &cold);
        assert!(
            drift <= L1_ENVELOPE,
            "round {round}: incremental drifted {drift:e} L1 from full iteration"
        );
        assert_eq!(
            top_k(&incr, 10),
            top_k(&cold, 10),
            "round {round}: top-10 order diverged from full iteration"
        );
    }
    let stats = engine.stats();
    assert!(
        stats.pushed_queries + stats.fallbacks + stats.exact_hits >= rounds as u64,
        "every queried round is accounted for: {stats:?}"
    );
}

#[test]
fn incremental_tracks_full_on_uniform_random_graphs() {
    for seed in [11, 12, 13] {
        let g = uniform_graph(300, 1200, seed);
        let mut seeds = HashMap::new();
        seeds.insert(NodeId(7), 1.0);
        check_interleaving(g, seeds, seed * 1000 + 1, 8);
    }
}

#[test]
fn incremental_tracks_full_on_community_graphs() {
    let g = community_graph(12, 25, 42);
    let mut seeds = HashMap::new();
    seeds.insert(NodeId(3), 0.7);
    seeds.insert(NodeId(4), 0.3);
    check_interleaving(g, seeds, 4242, 10);
}

#[test]
fn zero_budget_engine_replays_cold_bitwise() {
    let g = uniform_graph(200, 800, 99);
    let mut seeds = HashMap::new();
    seeds.insert(NodeId(0), 1.0);
    let mut engine = DynamicPpr::new(
        g.clone(),
        PprConfig::default(),
        DynPprConfig { error_budget: 0.0, ..DynPprConfig::default() },
    );
    let mut full = g;
    let _ = engine.scores_incremental(&seeds);
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..6 {
        let n = full.node_count();
        let (u, v) = (NodeId(rng.gen_range(0..n) as u32), NodeId(rng.gen_range(0..n) as u32));
        if u == v {
            continue;
        }
        let w = rng.gen_range(0.1..1.0);
        engine.apply_undirected_edge(u, v, w);
        full.add_undirected_edge(u, v, w);
        let incr = engine.scores_incremental(&seeds);
        let cold =
            personalized_pagerank_csr(&CsrView::build(&full), &seeds, PprConfig::default());
        for (i, (a, b)) in incr.iter().zip(&cold).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "node {i}: zero-budget fallback must be bit-identical to cold"
            );
        }
    }
    assert!(engine.stats().fallbacks > 0, "budget 0 must force the fallback path");
    assert_eq!(engine.stats().pushed_queries, 0, "budget 0 never serves a pushed result");
}

#[test]
fn arrivals_touching_new_nodes_grow_the_engine() {
    let g = uniform_graph(50, 150, 5);
    let mut seeds = HashMap::new();
    seeds.insert(NodeId(1), 1.0);
    let mut engine =
        DynamicPpr::new(g.clone(), PprConfig::default(), DynPprConfig::default());
    let mut full = g;
    let _ = engine.scores_incremental(&seeds);
    for i in 0..4 {
        let ke = engine.add_node(format!("late{i}"));
        let kf = full.add_node(format!("late{i}"));
        assert_eq!(ke, kf, "engine and plain graph assign the same fresh ids");
        engine.apply_undirected_edge(NodeId(i), ke, 0.4);
        full.add_undirected_edge(NodeId(i), kf, 0.4);
    }
    let incr = engine.scores_incremental(&seeds);
    let cold = personalized_pagerank_csr(&CsrView::build(&full), &seeds, PprConfig::default());
    assert_eq!(incr.len(), cold.len(), "score vector grew with the graph");
    assert!(l1(&incr, &cold) <= L1_ENVELOPE);
    assert_eq!(top_k(&incr, 10), top_k(&cold, 10));
}

#[test]
fn facade_ppr_tier_emits_generation_counters() {
    hive_obs::with_level(hive_obs::Level::Counts, || {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let mut hive = Hive::new(world.db);
        let users = hive.db().user_ids();
        hive_obs::reset();
        let first = hive.recommend_peers(users[0], PeerRecConfig::default());
        let second = hive.recommend_peers(users[0], PeerRecConfig::default());
        assert_eq!(first.len(), second.len(), "same generation, same answer");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        let counters: HashMap<String, u64> =
            hive_obs::drain_counters().into_iter().collect();
        assert_eq!(counters.get("core.ppr.miss"), Some(&1), "first probe builds the tier");
        assert!(
            counters.get("core.ppr.hit").copied().unwrap_or(0) >= 1,
            "second probe reuses it: {counters:?}"
        );
        assert!(
            counters.get("core.ppr.memo_hit").copied().unwrap_or(0) >= 1,
            "repeated seed distribution is memoized: {counters:?}"
        );
        // A journal-covered graph-touching mutation patches the tier
        // forward (clearing the memo) instead of rebuilding it.
        hive.follow(users[0], users[2]).unwrap();
        let _ = hive.recommend_peers(users[0], PeerRecConfig::default());
        let counters: HashMap<String, u64> =
            hive_obs::drain_counters().into_iter().collect();
        assert_eq!(
            counters.get("core.ppr.delta"),
            Some(&1),
            "journaled mutation takes the delta path: {counters:?}"
        );
    });
}
