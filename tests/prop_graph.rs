//! Property tests for the graph analytics substrate, driven by the
//! in-tree seeded runner (`hive_bench::prop`).

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_graph::{
    connected_components, core_numbers, diffuse, dijkstra, label_propagation, louvain,
    modularity, personalized_pagerank, DiffusionParams, Graph, NodeId, PprConfig,
};
use hive_rng::Rng;
use std::collections::HashMap;

fn gen_edges(rng: &mut Rng) -> Vec<(u32, u32, f64)> {
    let n = rng.gen_range(0..60usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..15u32),
                rng.gen_range(0..15u32),
                rng.gen_range(1..=100u32) as f64 / 100.0,
            )
        })
        .collect()
}

fn build(edges: &[(u32, u32, f64)]) -> Graph {
    let mut g = Graph::new();
    for i in 0..15 {
        g.add_node(format!("n{i}"));
    }
    for &(a, b, w) in edges {
        g.add_edge(NodeId(a), NodeId(b), w);
    }
    g
}

/// PageRank is a probability distribution and never negative.
#[test]
fn pagerank_is_a_distribution() {
    check("graph::pagerank_is_a_distribution", DEFAULT_CASES, |rng| {
        let g = build(&gen_edges(rng));
        let pr = personalized_pagerank(&g, &HashMap::new(), PprConfig::default());
        let total: f64 = pr.iter().sum();
        prop_ensure!((total - 1.0).abs() < 1e-6, "sum {total}");
        prop_ensure!(pr.iter().all(|&v| v >= 0.0));
        Ok(())
    });
}

/// Personalized PPR gives (almost) zero mass to nodes unreachable from
/// the seed.
#[test]
fn ppr_seed_dominates_unreachable() {
    check("graph::ppr_seed_dominates_unreachable", DEFAULT_CASES, |rng| {
        let g = build(&gen_edges(rng));
        let mut seeds = HashMap::new();
        seeds.insert(NodeId(0), 1.0);
        let ppr = personalized_pagerank(&g, &seeds, PprConfig::default());
        // Reachability under out-edges from node 0.
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for e in g.out_edges(u) {
                if !seen[e.neighbor.index()] {
                    seen[e.neighbor.index()] = true;
                    stack.push(e.neighbor);
                }
            }
        }
        for n in g.nodes() {
            if !seen[n.index()] {
                prop_ensure!(
                    ppr[n.index()] < 1e-9,
                    "unreachable node has rank {}",
                    ppr[n.index()]
                );
            }
        }
        Ok(())
    });
}

/// Dijkstra distances satisfy the triangle inequality over edges:
/// d(v) <= d(u) + w(u,v) for every edge, and d(source) = 0.
#[test]
fn dijkstra_relaxed_everywhere() {
    check("graph::dijkstra_relaxed_everywhere", DEFAULT_CASES, |rng| {
        let g = build(&gen_edges(rng));
        let dm = dijkstra(&g, NodeId(0));
        prop_ensure_eq!(dm.distance(NodeId(0)), 0.0);
        for (u, v, w) in g.edges() {
            if dm.distance(u).is_finite() {
                prop_ensure!(
                    dm.distance(v) <= dm.distance(u) + w + 1e-9,
                    "edge ({u:?}, {v:?}) not relaxed"
                );
            }
        }
        Ok(())
    });
}

/// Diffusion conserves mass (up to truncation loss) and never goes
/// negative.
#[test]
fn diffusion_mass_bounds() {
    check("graph::diffusion_mass_bounds", DEFAULT_CASES, |rng| {
        let g = build(&gen_edges(rng));
        let imp = diffuse(&g, NodeId(0), DiffusionParams { alpha: 0.5, epsilon: 1e-6 });
        let total: f64 = imp.values().sum();
        prop_ensure!(total <= 1.0 + 1e-9, "mass exceeds 1: {total}");
        prop_ensure!(total > 0.5, "too much truncation loss: {total}");
        prop_ensure!(imp.values().all(|&v| v >= 0.0));
        Ok(())
    });
}

/// Community assignments cover every node, and singleton partitions
/// never beat the discovered partition on modularity.
#[test]
fn community_quality() {
    check("graph::community_quality", DEFAULT_CASES, |rng| {
        let g = build(&gen_edges(rng));
        let asg = louvain(&g);
        prop_ensure_eq!(asg.labels().len(), g.node_count());
        let lp = label_propagation(&g, 3, 50);
        prop_ensure_eq!(lp.labels().len(), g.node_count());
        let singletons =
            hive_graph::CommunityAssignment::from_labels((0..g.node_count()).collect());
        prop_ensure!(
            modularity(&g, &asg) >= modularity(&g, &singletons) - 1e-9,
            "louvain at least matches singletons"
        );
        Ok(())
    });
}

/// Connected components: nodes sharing an edge share a component.
#[test]
fn components_respect_edges() {
    check("graph::components_respect_edges", DEFAULT_CASES, |rng| {
        let g = build(&gen_edges(rng));
        let comp = connected_components(&g);
        for (u, v, _) in g.edges() {
            prop_ensure_eq!(comp[u.index()], comp[v.index()]);
        }
        Ok(())
    });
}

/// Core numbers are bounded by the (simple, symmetrized) degree and
/// never decrease when an edge is added.
#[test]
fn kcore_bounds_and_monotonicity() {
    check("graph::kcore_bounds_and_monotonicity", DEFAULT_CASES, |rng| {
        let mut g = build(&gen_edges(rng));
        let a = rng.gen_range(0..15u32);
        let b = rng.gen_range(0..15u32);
        let core = core_numbers(&g);
        for v in g.nodes() {
            let mut nbrs: std::collections::HashSet<NodeId> = g
                .out_edges(v)
                .map(|e| e.neighbor)
                .chain(g.in_edges(v).map(|e| e.neighbor))
                .collect();
            nbrs.remove(&v);
            prop_ensure!(core[v.index()] <= nbrs.len(), "core <= simple degree");
        }
        if a != b {
            g.add_edge(NodeId(a), NodeId(b), 1.0);
            let after = core_numbers(&g);
            for (x, y) in core.iter().zip(&after) {
                prop_ensure!(y >= x, "core numbers are monotone under edge insertion");
            }
        }
        Ok(())
    });
}
