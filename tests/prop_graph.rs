//! Property tests for the graph analytics substrate.

use hive_graph::{
    connected_components, core_numbers, diffuse, dijkstra, label_propagation, louvain,
    modularity, personalized_pagerank, DiffusionParams, Graph, NodeId, PprConfig,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec(
        (0u32..15, 0u32..15, 1u32..=100).prop_map(|(a, b, w)| (a, b, w as f64 / 100.0)),
        0..60,
    )
}

fn build(edges: &[(u32, u32, f64)]) -> Graph {
    let mut g = Graph::new();
    for i in 0..15 {
        g.add_node(format!("n{i}"));
    }
    for &(a, b, w) in edges {
        g.add_edge(NodeId(a), NodeId(b), w);
    }
    g
}

proptest! {
    /// PageRank is a probability distribution and every node with an
    /// in-edge or restart mass gets positive rank.
    #[test]
    fn pagerank_is_a_distribution(edges in arb_edges()) {
        let g = build(&edges);
        let pr = personalized_pagerank(&g, &HashMap::new(), PprConfig::default());
        let total: f64 = pr.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {}", total);
        prop_assert!(pr.iter().all(|&v| v >= 0.0));
    }

    /// Personalized PPR never gives unreachable nodes more rank than the
    /// seed itself.
    #[test]
    fn ppr_seed_dominates_unreachable(edges in arb_edges()) {
        let g = build(&edges);
        let mut seeds = HashMap::new();
        seeds.insert(NodeId(0), 1.0);
        let ppr = personalized_pagerank(&g, &seeds, PprConfig::default());
        // Nodes not reachable from the seed carry (almost) zero mass.
        let dm = {
            // Reachability under out-edges from node 0.
            let mut seen = vec![false; g.node_count()];
            let mut stack = vec![NodeId(0)];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for e in g.out_edges(u) {
                    if !seen[e.neighbor.index()] {
                        seen[e.neighbor.index()] = true;
                        stack.push(e.neighbor);
                    }
                }
            }
            seen
        };
        for n in g.nodes() {
            if !dm[n.index()] {
                prop_assert!(ppr[n.index()] < 1e-9, "unreachable node has rank {}", ppr[n.index()]);
            }
        }
    }

    /// Dijkstra distances satisfy the triangle inequality over edges:
    /// d(v) <= d(u) + w(u,v) for every edge, and d(source) = 0.
    #[test]
    fn dijkstra_relaxed_everywhere(edges in arb_edges()) {
        let g = build(&edges);
        let dm = dijkstra(&g, NodeId(0));
        prop_assert_eq!(dm.distance(NodeId(0)), 0.0);
        for (u, v, w) in g.edges() {
            if dm.distance(u).is_finite() {
                prop_assert!(dm.distance(v) <= dm.distance(u) + w + 1e-9);
            }
        }
    }

    /// Diffusion conserves mass (up to truncation loss) and never goes
    /// negative.
    #[test]
    fn diffusion_mass_bounds(edges in arb_edges()) {
        let g = build(&edges);
        let imp = diffuse(&g, NodeId(0), DiffusionParams { alpha: 0.5, epsilon: 1e-6 });
        let total: f64 = imp.values().sum();
        prop_assert!(total <= 1.0 + 1e-9, "mass exceeds 1: {}", total);
        prop_assert!(total > 0.5, "too much truncation loss: {}", total);
        prop_assert!(imp.values().all(|&v| v >= 0.0));
    }

    /// Community assignments cover every node, and singleton partitions
    /// never beat the discovered partition on modularity.
    #[test]
    fn community_quality(edges in arb_edges()) {
        let g = build(&edges);
        let asg = louvain(&g);
        prop_assert_eq!(asg.labels().len(), g.node_count());
        let lp = label_propagation(&g, 3, 50);
        prop_assert_eq!(lp.labels().len(), g.node_count());
        let singletons = hive_graph::CommunityAssignment::from_labels(
            (0..g.node_count()).collect(),
        );
        prop_assert!(
            modularity(&g, &asg) >= modularity(&g, &singletons) - 1e-9,
            "louvain at least matches singletons"
        );
    }

    /// Connected components: nodes sharing an edge share a component.
    #[test]
    fn components_respect_edges(edges in arb_edges()) {
        let g = build(&edges);
        let comp = connected_components(&g);
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comp[u.index()], comp[v.index()]);
        }
    }
}

proptest! {
    /// Core numbers are bounded by the (simple, symmetrized) degree and
    /// never decrease when an edge is added.
    #[test]
    fn kcore_bounds_and_monotonicity(edges in arb_edges(), extra in (0u32..15, 0u32..15)) {
        let mut g = build(&edges);
        let core = core_numbers(&g);
        for v in g.nodes() {
            let mut nbrs: std::collections::HashSet<NodeId> = g
                .out_edges(v)
                .map(|e| e.neighbor)
                .chain(g.in_edges(v).map(|e| e.neighbor))
                .collect();
            nbrs.remove(&v);
            prop_assert!(core[v.index()] <= nbrs.len(), "core <= simple degree");
        }
        let (a, b) = extra;
        if a != b {
            g.add_edge(NodeId(a), NodeId(b), 1.0);
            let after = core_numbers(&g);
            for (x, y) in core.iter().zip(&after) {
                prop_assert!(y >= x, "core numbers are monotone under edge insertion");
            }
        }
    }
}
