//! Cross-crate integration: the knowledge pipeline — platform DB ->
//! layered knowledge network -> weighted RDF store -> ranked paths ->
//! evidence, and concept layers -> alignment -> propagation.

use hive_concept::propagate::{top_activated, PropagationConfig};
use hive_core::evidence::{combined_score, relationship_evidence};
use hive_core::knowledge::KnowledgeNetwork;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_store::{PathQuery, StoreStats, Term, TripleStore};
use std::collections::HashMap;

#[test]
fn knowledge_network_round_trips_through_the_store() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let kn = KnowledgeNetwork::build(&world.db);
    let store = kn.to_store(&world.db);
    assert!(store.len() > 100, "store should be populated, got {}", store.len());
    assert!(store.check_invariants());
    // Snapshot round trip preserves everything.
    let json = store.to_json().expect("serializable");
    let restored = TripleStore::from_json(&json).expect("parses");
    assert_eq!(restored.len(), store.len());
    let stats = StoreStats::compute(&restored);
    assert!(stats.per_predicate.len() >= 5, "several relationship predicates");
}

#[test]
fn coauthors_are_connected_by_short_strong_paths() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let kn = KnowledgeNetwork::build(&world.db);
    let store = kn.to_store(&world.db);
    let paper = world
        .db
        .paper_ids()
        .into_iter()
        .map(|p| world.db.get_paper(p).unwrap().clone())
        .find(|p| p.authors.len() >= 2)
        .expect("multi-author paper");
    let paths = PathQuery::new(
        Term::iri(paper.authors[0].iri()),
        Term::iri(paper.authors[1].iri()),
    )
    .top_k(3)
    .run(&store)
    .expect("both in store");
    assert!(!paths.is_empty());
    for w in paths.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    // Restricted to the co-authorship layer, the direct edge is the
    // single-hop strongest path.
    let direct = PathQuery::new(
        Term::iri(paper.authors[0].iri()),
        Term::iri(paper.authors[1].iri()),
    )
    .over_predicates(vec![Term::iri("rel:coauthor")])
    .run(&store)
    .expect("both in store");
    assert_eq!(direct[0].hops(), 1, "direct co-author edge wins in-layer");
}

#[test]
fn evidence_agrees_with_planted_topics() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let kn = KnowledgeNetwork::build(&world.db);
    // Average same-topic vs cross-topic evidence over a few pairs.
    let mut same = Vec::new();
    let mut cross = Vec::new();
    let c0 = &world.planted_communities[0];
    let c1 = &world.planted_communities[1];
    for i in 0..3.min(c0.len() - 1) {
        same.push(combined_score(&relationship_evidence(
            &world.db, &kn, c0[i], c0[i + 1],
        )));
        cross.push(combined_score(&relationship_evidence(
            &world.db, &kn, c0[i], c1[i],
        )));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&same) > avg(&cross),
        "same-topic pairs carry more evidence: {} vs {}",
        avg(&same),
        avg(&cross)
    );
}

#[test]
fn concept_layers_propagate_across_alignment() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let kn = KnowledgeNetwork::build(&world.db);
    assert_eq!(kn.concepts.layer_count(), 2);
    let g = kn.concepts.integrated_graph(0.9);
    assert!(g.node_count() > 0);
    // Seed from the most significant paper concept; activation should
    // reach at least one other node (its neighborhood).
    let (lid, layer) = kn.concepts.layers().next().expect("papers layer");
    if let Some((top, _)) = layer.map.top_concepts(1).first() {
        let mut seeds = HashMap::new();
        seeds.insert(kn.concepts.node_key(lid, top), 1.0);
        let activated = top_activated(&g, &seeds, 10, PropagationConfig::default());
        assert!(
            !activated.is_empty(),
            "propagation reaches beyond the seed concept"
        );
    }
}

#[test]
fn unified_graph_is_mostly_connected() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let kn = KnowledgeNetwork::build(&world.db);
    let comp = hive_graph::connected_components(&kn.unified);
    let mut sizes: HashMap<usize, usize> = HashMap::new();
    for c in &comp {
        *sizes.entry(*c).or_insert(0) += 1;
    }
    let largest = sizes.values().copied().max().unwrap_or(0);
    assert!(
        largest as f64 >= comp.len() as f64 * 0.9,
        "the fused network should form one giant component ({largest}/{})",
        comp.len()
    );
}
