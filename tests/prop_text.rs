//! Property tests for the text substrate: tokenization, TF-IDF, and the
//! AlphaSum summarizer's core invariants.

use hive_text::summarize::{summarize_table, Strategy as SumStrategy, SummaryConfig, Table, ValueLattice};
use hive_text::tfidf::{Corpus, SparseVector};
use hive_text::tokenize::{tokenize, tokenize_filtered};
use proptest::prelude::*;

proptest! {
    /// Tokenization is deterministic, produces lowercase tokens of
    /// length >= 2, and filtered output is a subset-transform of raw.
    #[test]
    fn tokenize_invariants(text in ".{0,200}") {
        let a = tokenize(&text);
        let b = tokenize(&text);
        prop_assert_eq!(&a, &b);
        for t in &a {
            prop_assert!(t.chars().count() >= 2);
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(t.clone(), t.to_lowercase());
        }
        prop_assert!(tokenize_filtered(&text).len() <= a.len());
    }

    /// Cosine is symmetric, bounded, and 1 on self for non-zero vectors.
    #[test]
    fn cosine_properties(
        entries_a in prop::collection::vec((0u32..40, 1u32..100), 0..20),
        entries_b in prop::collection::vec((0u32..40, 1u32..100), 0..20),
    ) {
        let a = SparseVector::from_entries(
            entries_a.into_iter().map(|(t, w)| (t, w as f64)),
        );
        let b = SparseVector::from_entries(
            entries_b.into_iter().map(|(t, w)| (t, w as f64)),
        );
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&ab));
        if !a.is_empty() {
            prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
        }
    }

    /// TF-IDF vectors are unit length (or empty) and IDF is positive.
    #[test]
    fn tfidf_normalization(docs in prop::collection::vec("[a-z]{3,8}( [a-z]{3,8}){0,10}", 1..10)) {
        let mut corpus = Corpus::new();
        let tfs: Vec<_> = docs.iter().map(|d| corpus.index_document(d)).collect();
        for tf in &tfs {
            let v = corpus.tfidf(tf);
            if !v.is_empty() {
                prop_assert!((v.norm() - 1.0).abs() < 1e-9);
            }
        }
        for t in 0..corpus.term_count() as u32 {
            prop_assert!(corpus.idf(t) > 0.0);
        }
    }
}

/// Strategy for random small activity tables over a fixed 2-level lattice.
fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((0usize..4, 0usize..3, 0usize..3), 1..40).prop_map(|rows| {
        let mut place = ValueLattice::new("*");
        for t in 0..2 {
            place.add_child("*", format!("track{t}"));
            for s in 0..2 {
                place.add_child(format!("track{t}"), format!("s{t}_{s}"));
            }
        }
        let mut who = ValueLattice::new("*");
        for u in 0..4 {
            who.add_child("*", format!("u{u}"));
        }
        let mut what = ValueLattice::new("*");
        for a in ["checkin", "view", "ask"] {
            what.add_child("*", a);
        }
        let mut table = Table::new(
            vec!["who".into(), "where".into(), "what".into()],
            vec![who, place, what],
        );
        for (u, s, a) in rows {
            table.push_row(vec![
                format!("u{u}"),
                format!("s{}_{}", s % 2, s % 2),
                ["checkin", "view", "ask"][a].to_string(),
            ]);
        }
        table
    })
}

proptest! {
    /// AlphaSum invariants, any strategy: the budget is respected, every
    /// source row is covered exactly once, loss is non-negative and
    /// monotonically non-increasing in k, and retained is in [0,1].
    #[test]
    fn summarizer_invariants(table in arb_table(), k in 1usize..6) {
        for strategy in [SumStrategy::Greedy, SumStrategy::RandomMerge(7)] {
            let s = summarize_table(&table, SummaryConfig { max_rows: k, strategy });
            prop_assert!(s.rows.len() <= k);
            let covered: usize = s.rows.iter().map(|(_, c)| c).sum();
            prop_assert_eq!(covered, table.rows.len());
            prop_assert!(s.loss >= -1e-12);
            prop_assert!((0.0..=1.0).contains(&s.retained));
        }
        // Greedy loss is monotone non-increasing in the budget.
        let l1 = summarize_table(&table, SummaryConfig { max_rows: k, strategy: SumStrategy::Greedy }).loss;
        let l2 = summarize_table(&table, SummaryConfig { max_rows: k + 1, strategy: SumStrategy::Greedy }).loss;
        prop_assert!(l2 <= l1 + 1e-9, "more budget cannot hurt: {} vs {}", l2, l1);
    }

    /// Generalized cells are always ancestors of the cells they cover.
    #[test]
    fn summary_cells_are_ancestors(table in arb_table(), k in 1usize..4) {
        let s = summarize_table(&table, SummaryConfig { max_rows: k, strategy: SumStrategy::Greedy });
        // Reconstruct which original rows each summary row covers is not
        // exposed; instead check that every summary cell is a valid
        // lattice value (an ancestor of *some* leaf or the root).
        for (row, _) in &s.rows {
            for (c, val) in row.iter().enumerate() {
                let lat = &table.lattices[c];
                let known = table.rows.iter().any(|r| {
                    lat.ancestors(&r[c]).contains(val)
                });
                prop_assert!(known, "cell {val:?} is not on any leaf's ancestor chain");
            }
        }
    }
}

proptest! {
    /// MinHash similarity is symmetric, in [0,1], and 1 on self.
    #[test]
    fn minhash_properties(a in "[a-z]{3,7}( [a-z]{3,7}){0,15}", b in "[a-z]{3,7}( [a-z]{3,7}){0,15}") {
        use hive_text::MinHashSignature;
        let sa = MinHashSignature::compute(&a, 2, 64);
        let sb = MinHashSignature::compute(&b, 2, 64);
        let ab = sa.similarity(&sb);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - sb.similarity(&sa)).abs() < 1e-12);
        prop_assert_eq!(sa.similarity(&sa), 1.0);
    }
}
