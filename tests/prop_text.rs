//! Property tests for the text substrate: tokenization, TF-IDF, and the
//! AlphaSum summarizer's core invariants. Driven by the in-tree seeded
//! runner (`hive_bench::prop`).

use hive_bench::prop::{check, DEFAULT_CASES};
use hive_bench::{prop_ensure, prop_ensure_eq};
use hive_rng::{Rng, SliceRandom};
use hive_text::summarize::{
    summarize_table, Strategy as SumStrategy, SummaryConfig, Table, ValueLattice,
};
use hive_text::tfidf::{Corpus, SparseVector};
use hive_text::tokenize::{tokenize, tokenize_filtered};

/// Arbitrary text over a messy character pool (letters, digits,
/// punctuation, whitespace, a few non-ASCII letters).
fn gen_text(rng: &mut Rng) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Q', '0', '7', ' ', ' ', '\t', '\n', '.', ',', '!',
        '-', '_', '(', ')', '"', '\'', 'é', 'ß', 'λ', '中',
    ];
    let n = rng.gen_range(0..200usize);
    (0..n)
        .filter_map(|_| POOL.choose(rng).copied())
        .collect()
}

/// A lowercase word of 3..=8 letters.
fn gen_word(rng: &mut Rng) -> String {
    let n = rng.gen_range(3..=8usize);
    (0..n)
        .map(|_| char::from(b'a' + rng.gen_range(0..26u8)))
        .collect()
}

/// A sentence of 1..=11 such words.
fn gen_word_text(rng: &mut Rng, max_extra_words: usize) -> String {
    let n = 1 + rng.gen_range(0..=max_extra_words);
    (0..n).map(|_| gen_word(rng)).collect::<Vec<_>>().join(" ")
}

/// Tokenization is deterministic, produces lowercase alphanumeric tokens
/// of length >= 2, and filtered output is a subset-transform of raw.
#[test]
fn tokenize_invariants() {
    check("text::tokenize_invariants", DEFAULT_CASES, |rng| {
        let text = gen_text(rng);
        let a = tokenize(&text);
        let b = tokenize(&text);
        prop_ensure_eq!(a, b);
        for t in &a {
            prop_ensure!(t.chars().count() >= 2, "short token {t:?}");
            prop_ensure!(t.chars().all(|c| c.is_alphanumeric()), "bad token {t:?}");
            prop_ensure_eq!(t.clone(), t.to_lowercase());
        }
        prop_ensure!(tokenize_filtered(&text).len() <= a.len());
        Ok(())
    });
}

/// Cosine is symmetric, bounded, and 1 on self for non-zero vectors.
#[test]
fn cosine_properties() {
    check("text::cosine_properties", DEFAULT_CASES, |rng| {
        let gen_entries = |rng: &mut Rng| -> Vec<(u32, f64)> {
            let n = rng.gen_range(0..20usize);
            (0..n)
                .map(|_| (rng.gen_range(0..40u32), rng.gen_range(1..100u32) as f64))
                .collect()
        };
        let a = SparseVector::from_entries(gen_entries(rng));
        let b = SparseVector::from_entries(gen_entries(rng));
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_ensure!((ab - ba).abs() < 1e-12, "cosine not symmetric");
        prop_ensure!((-1e-12..=1.0 + 1e-12).contains(&ab), "cosine {ab} out of range");
        if !a.is_empty() {
            prop_ensure!((a.cosine(&a) - 1.0).abs() < 1e-9, "self-cosine != 1");
        }
        Ok(())
    });
}

/// TF-IDF vectors are unit length (or empty) and IDF is positive.
#[test]
fn tfidf_normalization() {
    check("text::tfidf_normalization", DEFAULT_CASES, |rng| {
        let n_docs = rng.gen_range(1..10usize);
        let docs: Vec<String> = (0..n_docs).map(|_| gen_word_text(rng, 10)).collect();
        let mut corpus = Corpus::new();
        let tfs: Vec<_> = docs.iter().map(|d| corpus.index_document(d)).collect();
        for tf in &tfs {
            let v = corpus.tfidf(tf);
            if !v.is_empty() {
                prop_ensure!((v.norm() - 1.0).abs() < 1e-9, "tfidf not unit norm");
            }
        }
        for t in 0..corpus.term_count() as u32 {
            prop_ensure!(corpus.idf(t) > 0.0, "non-positive idf for term {t}");
        }
        Ok(())
    });
}

/// Random small activity tables over a fixed 2-level lattice.
fn gen_table(rng: &mut Rng) -> Table {
    let mut place = ValueLattice::new("*");
    for t in 0..2 {
        place.add_child("*", format!("track{t}"));
        for s in 0..2 {
            place.add_child(format!("track{t}"), format!("s{t}_{s}"));
        }
    }
    let mut who = ValueLattice::new("*");
    for u in 0..4 {
        who.add_child("*", format!("u{u}"));
    }
    let mut what = ValueLattice::new("*");
    for a in ["checkin", "view", "ask"] {
        what.add_child("*", a);
    }
    let mut table = Table::new(
        vec!["who".into(), "where".into(), "what".into()],
        vec![who, place, what],
    );
    let rows = 1 + rng.gen_range(0..39usize);
    for _ in 0..rows {
        let u = rng.gen_range(0..4usize);
        let s = rng.gen_range(0..3usize);
        let a = rng.gen_range(0..3usize);
        table.push_row(vec![
            format!("u{u}"),
            format!("s{}_{}", s % 2, s % 2),
            ["checkin", "view", "ask"][a].to_string(),
        ]);
    }
    table
}

/// AlphaSum invariants, any strategy: the budget is respected, every
/// source row is covered exactly once, loss is non-negative and
/// monotonically non-increasing in k, and retained is in [0,1].
#[test]
fn summarizer_invariants() {
    check("text::summarizer_invariants", DEFAULT_CASES, |rng| {
        let table = gen_table(rng);
        let k = rng.gen_range(1..6usize);
        for strategy in [SumStrategy::Greedy, SumStrategy::RandomMerge(7)] {
            let s = summarize_table(&table, SummaryConfig { max_rows: k, strategy });
            prop_ensure!(s.rows.len() <= k, "budget exceeded");
            let covered: usize = s.rows.iter().map(|(_, c)| c).sum();
            prop_ensure_eq!(covered, table.rows.len());
            prop_ensure!(s.loss >= -1e-12, "negative loss");
            prop_ensure!((0.0..=1.0).contains(&s.retained), "retained out of range");
        }
        // Greedy loss is monotone non-increasing in the budget.
        let l1 = summarize_table(
            &table,
            SummaryConfig { max_rows: k, strategy: SumStrategy::Greedy },
        )
        .loss;
        let l2 = summarize_table(
            &table,
            SummaryConfig { max_rows: k + 1, strategy: SumStrategy::Greedy },
        )
        .loss;
        prop_ensure!(l2 <= l1 + 1e-9, "more budget cannot hurt: {l2} vs {l1}");
        Ok(())
    });
}

/// Generalized cells are always ancestors of the cells they cover.
#[test]
fn summary_cells_are_ancestors() {
    check("text::summary_cells_are_ancestors", DEFAULT_CASES, |rng| {
        let table = gen_table(rng);
        let k = rng.gen_range(1..4usize);
        let s = summarize_table(
            &table,
            SummaryConfig { max_rows: k, strategy: SumStrategy::Greedy },
        );
        // Which original rows each summary row covers is not exposed;
        // instead check that every summary cell is a valid lattice value
        // (an ancestor of *some* leaf or the root).
        for (row, _) in &s.rows {
            for (c, val) in row.iter().enumerate() {
                let lat = &table.lattices[c];
                let known = table.rows.iter().any(|r| lat.ancestors(&r[c]).contains(val));
                prop_ensure!(known, "cell {val:?} is not on any leaf's ancestor chain");
            }
        }
        Ok(())
    });
}

/// MinHash similarity is symmetric, in [0,1], and 1 on self.
#[test]
fn minhash_properties() {
    check("text::minhash_properties", DEFAULT_CASES, |rng| {
        use hive_text::MinHashSignature;
        let a = gen_word_text(rng, 15);
        let b = gen_word_text(rng, 15);
        let sa = MinHashSignature::compute(&a, 2, 64);
        let sb = MinHashSignature::compute(&b, 2, 64);
        let ab = sa.similarity(&sb);
        prop_ensure!((0.0..=1.0).contains(&ab), "similarity {ab} out of range");
        prop_ensure!((ab - sb.similarity(&sa)).abs() < 1e-12, "not symmetric");
        prop_ensure_eq!(sa.similarity(&sa), 1.0);
        Ok(())
    });
}
