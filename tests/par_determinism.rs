//! Parallel == serial, bit for bit: the hive-par chunked schedule must
//! not change any result, for any `HIVE_THREADS`. Each test runs the
//! same computation under `with_threads(1)` and `with_threads(4)` and
//! asserts exact equality (no tolerances).

use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;
use hive_graph::{personalized_pagerank_csr, CsrView, Graph, NodeId, PprConfig};
use hive_par::with_threads;
use hive_rng::Rng;
use hive_scent::{cp_als, SparseTensor};
use hive_text::tfidf::Corpus;
use std::collections::HashMap;

fn big_graph(n: usize, out_deg: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..n {
        for _ in 0..out_deg {
            let j = rng.gen_range(0..n);
            g.add_edge(ids[i], ids[j], rng.gen_range(0.1..1.0));
        }
    }
    g
}

#[test]
fn ppr_vector_is_bit_identical_across_thread_counts() {
    // 2000 nodes x 20 out-edges = 40k edges, above the 32_768-edge gate,
    // so the parallel path genuinely runs.
    let g = big_graph(2_000, 20, 11);
    let csr = CsrView::build(&g);
    let mut seeds = HashMap::new();
    seeds.insert(NodeId(5), 0.7);
    seeds.insert(NodeId(17), 0.3);
    let cfg = PprConfig::default();
    let serial = with_threads(1, || personalized_pagerank_csr(&csr, &seeds, cfg));
    let par = with_threads(4, || personalized_pagerank_csr(&csr, &seeds, cfg));
    assert_eq!(serial.len(), par.len());
    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "node {i}: {a} != {b}");
    }
}

#[test]
fn peer_ranking_is_identical_across_thread_counts() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let hive = Hive::new(world.db);
    let zach = hive.db().user_ids()[0];
    let cfg = PeerRecConfig { candidate_pool: 20, ..Default::default() };
    let serial = with_threads(1, || hive.recommend_peers(zach, cfg));
    let par = with_threads(4, || hive.recommend_peers(zach, cfg));
    assert_eq!(serial.len(), par.len());
    for (s, p) in serial.iter().zip(&par) {
        assert_eq!(s.user, p.user, "ranking order must match");
        assert!(s.score.to_bits() == p.score.to_bits(), "{} != {}", s.score, p.score);
        assert_eq!(s.reasons, p.reasons);
        assert_eq!(s.likely_sessions.len(), p.likely_sessions.len());
        for ((ss, sv), (ps, pv)) in s.likely_sessions.iter().zip(&p.likely_sessions) {
            assert_eq!(ss, ps);
            assert!(sv.to_bits() == pv.to_bits());
        }
    }
}

#[test]
fn tfidf_batch_is_identical_across_thread_counts() {
    let mut corpus = Corpus::new();
    for i in 0..300 {
        corpus.index_document(&format!(
            "tensor stream monitoring social network community detection doc {i}"
        ));
    }
    let tfs: Vec<_> = (0..300)
        .map(|i| corpus.vectorize_known(&format!("tensor community doc {i}")))
        .collect();
    let serial = with_threads(1, || corpus.tfidf_batch(&tfs));
    let par = with_threads(4, || corpus.tfidf_batch(&tfs));
    assert_eq!(serial, par, "SparseVector scores must be exactly equal");
}

#[test]
fn cp_als_factors_are_bit_identical_across_thread_counts() {
    // 100x100x3 tensor with ~4000 entries, above the 2_048-entry gate.
    let mut t = SparseTensor::new(vec![100, 100, 3]);
    let mut rng = Rng::seed_from_u64(9);
    for _ in 0..4_000 {
        let idx = vec![rng.gen_range(0..100usize), rng.gen_range(0..100usize), rng.gen_range(0..3usize)];
        t.set(&idx, rng.gen_range(0.1..1.0));
    }
    let serial = with_threads(1, || cp_als(&t, 3, 5, 1));
    let par = with_threads(4, || cp_als(&t, 3, 5, 1));
    assert!(serial.residual.to_bits() == par.residual.to_bits());
    for (m, (fs, fp)) in serial.factors.iter().zip(&par.factors).enumerate() {
        assert_eq!(fs.len(), fp.len());
        for (r, (rs, rp)) in fs.iter().zip(fp).enumerate() {
            for (c, (a, b)) in rs.iter().zip(rp).enumerate() {
                assert!(a.to_bits() == b.to_bits(), "factor {m}[{r}][{c}]: {a} != {b}");
            }
        }
    }
}
