//! Cross-crate integration: the full platform lifecycle on a simulated
//! world, exercising DB semantics, feeds, reports, and workpads together.

use hive_core::clock::Timestamp;
use hive_core::discover::DiscoverConfig;
use hive_core::history::HistoryQuery;
use hive_core::model::{QaTarget, WorkpadItem};
use hive_core::peers::PeerRecConfig;
use hive_core::reports::ReportScope;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

#[test]
fn simulated_world_supports_every_service_group() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let u = users[0];

    // Concept map & personalization.
    let ctx = hive.activity_context(u);
    assert!(!ctx.is_empty());
    // Peer network.
    let peers = hive.recommend_peers(u, PeerRecConfig::default());
    assert!(!peers.is_empty());
    for p in &peers {
        assert_ne!(p.user, u);
        assert!(p.score.is_finite());
    }
    // Discovery + preview.
    let hits = hive.search(u, "tensor stream", DiscoverConfig::default());
    assert!(!hits.is_empty());
    // Collaborative filtering.
    let cf = hive.collaborative_recommendations(u, 5);
    assert!(cf.len() <= 5);
    // Community discovery.
    let comms = hive.discover_communities();
    assert!(comms.count() >= 2);
    // Reports.
    let report = hive.update_report(&ReportScope::Platform, Timestamp(0), Timestamp(u64::MAX), 6);
    assert!(report.summary.rows.len() <= 6);
    let covered: usize = report.summary.rows.iter().map(|(_, c)| c).sum();
    assert_eq!(covered, report.total_events);
    // History.
    let hist = hive.search_history(&HistoryQuery::new().limit(10), Some(u));
    assert!(!hist.is_empty());
}

#[test]
fn connection_flow_updates_recommendations_and_feeds() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let u = hive.db().user_ids()[0];
    let recs = hive.recommend_peers(u, PeerRecConfig::default());
    let target = recs[0].user;
    // Connect to the top recommendation; it must vanish from the list.
    hive.request_connection(u, target).expect("fresh pair");
    hive.respond_connection(target, u, true).expect("pending");
    let recs_after = hive.recommend_peers(u, PeerRecConfig::default());
    assert!(
        recs_after.iter().all(|r| r.user != target),
        "connected peers are not re-recommended"
    );
    // Following routes updates (the simulator may already have u follow
    // some peers; pick one not yet followed).
    let already: std::collections::HashSet<_> = hive.db().following(u).into_iter().collect();
    let followee = recs_after
        .iter()
        .map(|r| r.user)
        .find(|v| !already.contains(v))
        .expect("an unfollowed recommendation exists");
    hive.follow(u, followee).expect("not following yet");
    let since = hive.db().now();
    let session = hive.db().session_ids()[0];
    hive.advance_clock(1);
    hive.check_in(followee, session).expect("valid session");
    let updates = hive.updates_for(u, since);
    assert!(
        updates.iter().any(|up| up.actor == followee),
        "followee check-in reaches the feed"
    );
}

#[test]
fn workpad_switch_changes_search_results() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let u = hive.db().user_ids()[0];
    // Two pads seeded from different planted topics.
    let s_a = world.session_topics.iter().find(|(_, t)| *t == 0).map(|(s, _)| *s).unwrap();
    let s_b = world.session_topics.iter().find(|(_, t)| *t == 1).map(|(s, _)| *s).unwrap();
    let pad_a = hive.create_workpad(u, "a").unwrap();
    hive.workpad_add(u, pad_a, WorkpadItem::Session(s_a)).unwrap();
    let pad_b = hive.create_workpad(u, "b").unwrap();
    hive.workpad_add(u, pad_b, WorkpadItem::Session(s_b)).unwrap();
    let cfg = DiscoverConfig { include_users: false, ..Default::default() };
    hive.activate_workpad(u, pad_a).unwrap();
    let top_a: Vec<String> = hive.search(u, "", cfg).into_iter().map(|h| h.resource.iri()).collect();
    hive.activate_workpad(u, pad_b).unwrap();
    let top_b: Vec<String> = hive.search(u, "", cfg).into_iter().map(|h| h.resource.iri()).collect();
    assert_ne!(top_a, top_b, "different contexts must rank differently");
    assert!(top_a.contains(&s_a.iri()) || !top_a.is_empty());
}

#[test]
fn collections_move_context_between_users() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let (ann, zach) = (users[1], users[0]);
    let paper = hive.db().paper_ids()[0];
    let pad = hive.create_workpad(ann, "reading list").unwrap();
    hive.workpad_add(ann, pad, WorkpadItem::Paper(paper)).unwrap();
    let col = hive.export_workpad(ann, pad).unwrap();
    let imported = hive.import_collection(zach, col).unwrap();
    assert_eq!(hive.db().active_workpad_of(zach), Some(imported));
    let ctx = hive.activity_context(zach);
    assert!(
        ctx.seeds.contains_key(&paper.iri()),
        "imported collection seeds the context"
    );
}

#[test]
fn qa_broadcast_reaches_the_session_ticker() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let pres = hive.db().presentation_ids()[0];
    let session = hive.db().get_presentation(pres).unwrap().session;
    let since = hive.db().now();
    hive.advance_clock(1);
    let q = hive
        .ask_question(users[2], QaTarget::Presentation(pres), "why this decay?", true)
        .unwrap();
    hive.answer_question(users[3], q, "it bounds the neighborhood").unwrap();
    let ticker = hive.session_ticker(session, since);
    assert!(ticker.iter().any(|l| l.contains("why this decay?")));
    assert!(ticker.iter().any(|l| l.contains("[twitter]")), "broadcast mirrored");
    assert!(ticker.iter().any(|l| l.contains("bounds the neighborhood")));
}

#[test]
fn trends_and_highlights_follow_live_activity() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let session = hive.db().session_ids()[0];
    let since = hive.db().now();
    hive.advance_clock(1);
    // A burst of activity on one session makes it trend.
    for &u in users.iter().take(6) {
        hive.check_in(u, session).expect("valid");
    }
    let q = hive
        .ask_question(users[1], QaTarget::Session(session), "trending question?", true)
        .expect("valid");
    hive.answer_question(users[2], q, "indeed").expect("valid");
    let trending = hive.trending_sessions(since, Timestamp(u64::MAX), 3);
    assert_eq!(trending[0].0, session, "the busy session trends: {trending:?}");
    // Highlights surface the burst for a follower.
    hive.follow(users[9], users[1]).ok();
    let hl = hive.highlights(users[9], since, 5);
    assert!(!hl.is_empty(), "follower sees highlights");
}

#[test]
fn platform_snapshot_survives_service_usage() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let hive = Hive::new(world.db);
    let json = hive.db().to_json().expect("serializes");
    let restored = hive_core::HiveDb::from_json(&json).expect("restores");
    let hive2 = Hive::new(restored);
    let u = hive2.db().user_ids()[0];
    // The restored platform answers services identically to the original.
    let a: Vec<_> = hive
        .recommend_peers(u, PeerRecConfig::default())
        .into_iter()
        .map(|r| r.user)
        .collect();
    let b: Vec<_> = hive2
        .recommend_peers(u, PeerRecConfig::default())
        .into_iter()
        .map(|r| r.user)
        .collect();
    assert_eq!(a, b, "restored platform recommends identically");
}
