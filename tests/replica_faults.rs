//! Deterministic fault matrix for the replication protocol: every
//! combination of transport fault and crash point must either converge
//! to a bit-identical replica or refuse loudly with a typed error —
//! a follower never serves a divergent read.

use hive_core::sim::{SimConfig, WorldBuilder};
use hive_replica::{frame, FaultPlan, Follower, Ingest, Leader, ReplicaError, Transport};
use hive_rng::Rng;
use hive_sim_harness::{replica_soak, FaultMenu, ReplicaSoakConfig};

#[test]
fn fault_matrix_converges_or_refuses_typed() {
    // Every armed fault × crash point: the soak asserts that followers
    // converge back to bit-identical state (violations would be
    // recorded otherwise), and its refusal counter only ever carries
    // typed errors — a panic would abort the test outright.
    let menus =
        [FaultMenu::Drop, FaultMenu::Dup, FaultMenu::Reorder, FaultMenu::Truncate, FaultMenu::All];
    for (i, faults) in menus.into_iter().enumerate() {
        for (j, crash_at) in [0usize, 12, 24].into_iter().enumerate() {
            let seed = 100 + (i * 3 + j) as u64;
            let report = replica_soak(ReplicaSoakConfig {
                seed,
                steps: 40,
                followers: 2,
                faults,
                crash_at,
                promote_at_end: false,
                ..ReplicaSoakConfig::default()
            });
            assert!(
                report.ok(),
                "faults={} crash_at={crash_at}:\n{}",
                faults.label(),
                report.render()
            );
        }
    }
}

#[test]
fn armed_faults_actually_bite_and_heal() {
    // Sanity on the matrix itself: with everything armed the channel
    // must cause real typed refusals and real re-syncs, not silently
    // behave like a clean wire.
    let report = replica_soak(ReplicaSoakConfig {
        seed: 17,
        steps: 60,
        followers: 2,
        faults: FaultMenu::All,
        crash_at: 0,
        promote_at_end: false,
        ..ReplicaSoakConfig::default()
    });
    assert!(report.ok(), "{}", report.render());
    assert!(report.refusals > 0, "armed faults must produce typed refusals");
    assert!(report.resyncs > 0, "typed refusals must force checkpoint re-syncs");
}

fn leader_and_follower(seed: u64) -> (Leader, Follower) {
    let db = WorldBuilder::new(SimConfig {
        seed,
        users: 8,
        topics: 4,
        conferences: 2,
        sessions_per_conf: 3,
        papers_per_conf: 5,
        ..SimConfig::small()
    })
    .build()
    .db;
    let mut leader = Leader::new(db, 100);
    let mut follower = Follower::blank(0);
    for f in leader.seal_frames(true) {
        follower.ingest(&frame::encode(&f)).expect("bootstrap checkpoint installs");
    }
    assert!(follower.is_streaming());
    (leader, follower)
}

fn sealed_ops_frame(leader: &mut Leader, rng: &mut Rng, step: usize) -> frame::Frame {
    loop {
        for op in hive_replica::synth::step_ops(leader.hive(), step, rng) {
            let _ = leader.apply(op);
        }
        if leader.pending_ops() > 0 {
            let frames = leader.seal_frames(false);
            return frames.into_iter().find(|f| !f.is_checkpoint()).expect("ops frame sealed");
        }
    }
}

#[test]
fn duplicate_and_stale_frames_are_ignored() {
    let (mut leader, mut follower) = leader_and_follower(3);
    let mut rng = Rng::seed_from_u64(3);
    let f1 = sealed_ops_frame(&mut leader, &mut rng, 0);
    let wire = frame::encode(&f1);
    assert!(matches!(follower.ingest(&wire), Ok(Ingest::Applied { .. })));
    // The same frame again — and again — must be a no-op, not a replay.
    let gen_after = follower.generation();
    assert_eq!(follower.ingest(&wire), Ok(Ingest::Duplicate));
    assert_eq!(follower.ingest(&wire), Ok(Ingest::Duplicate));
    assert_eq!(follower.generation(), gen_after, "duplicates must not re-apply ops");
}

#[test]
fn gap_flips_to_resync_and_ops_frames_drop_until_checkpoint() {
    let (mut leader, mut follower) = leader_and_follower(4);
    let mut rng = Rng::seed_from_u64(4);
    let f1 = sealed_ops_frame(&mut leader, &mut rng, 0);
    let f2 = sealed_ops_frame(&mut leader, &mut rng, 1);
    // Deliver frame 2 without frame 1: a gap.
    let err = follower.ingest(&frame::encode(&f2)).expect_err("gap must refuse");
    assert!(matches!(err, ReplicaError::Gap { expected: 1, got: 2 }), "got {err:?}");
    assert!(follower.needs_resync());
    // Ops frames are now dropped quietly (no error spam, no state).
    assert_eq!(follower.ingest(&frame::encode(&f1)), Ok(Ingest::AwaitingResync));
    // The re-sync checkpoint re-bootstraps at the leader's head.
    let cp = leader.seal_frames(true).pop().expect("checkpoint frame");
    assert!(cp.is_checkpoint());
    assert_eq!(follower.ingest(&frame::encode(&cp)), Ok(Ingest::Checkpoint));
    assert!(follower.is_streaming());
    assert_eq!(follower.next_seq(), leader.next_seq());
    assert_eq!(follower.generation(), leader.generation());
}

#[test]
fn corrupt_wire_refuses_typed_and_recovers() {
    let (mut leader, mut follower) = leader_and_follower(5);
    let mut rng = Rng::seed_from_u64(5);
    let f1 = sealed_ops_frame(&mut leader, &mut rng, 0);
    let mut wire = frame::encode(&f1);
    let mut cut = wire.len() / 2;
    while !wire.is_char_boundary(cut) {
        cut -= 1;
    }
    wire.truncate(cut);
    let err = follower.ingest(&wire).expect_err("damage must refuse");
    assert!(matches!(err, ReplicaError::Corrupt(_)), "got {err:?}");
    assert!(follower.needs_resync());
    let cp = leader.seal_frames(true).pop().expect("checkpoint frame");
    assert_eq!(follower.ingest(&frame::encode(&cp)), Ok(Ingest::Checkpoint));
    assert!(follower.is_streaming());
}

#[test]
fn tampered_frame_breaks_follower_but_never_its_reads() {
    let (mut leader, mut follower) = leader_and_follower(6);
    let mut rng = Rng::seed_from_u64(6);
    let reader = follower.reader().expect("bootstrapped follower serves");
    let consistent_gen = reader.epoch().generation();

    // An adversarial frame that passes the checksum but lies about the
    // generation window it covers: replay disagrees, so the follower
    // must mark itself broken — and keep serving the epoch from before
    // the tampered frame, never a half-applied one.
    let mut f1 = sealed_ops_frame(&mut leader, &mut rng, 0);
    f1.end_gen += 1;
    let err = follower.ingest(&frame::encode(&f1)).expect_err("tampering must refuse");
    assert!(matches!(err, ReplicaError::Diverged { .. }), "got {err:?}");
    assert!(follower.is_broken());

    // Broken is terminal: every further frame is refused typed-ly...
    let f2 = sealed_ops_frame(&mut leader, &mut rng, 1);
    let err = follower.ingest(&frame::encode(&f2)).expect_err("broken refuses all");
    assert!(matches!(err, ReplicaError::Broken(_)), "got {err:?}");
    let cp = leader.seal_frames(true).pop().expect("checkpoint frame");
    let err = follower.ingest(&frame::encode(&cp)).expect_err("even checkpoints");
    assert!(matches!(err, ReplicaError::Broken(_)), "got {err:?}");

    // ...while the read path still serves the last consistent epoch.
    assert_eq!(
        reader.epoch().generation(),
        consistent_gen,
        "a failed ingest must never publish"
    );
}

#[test]
fn checkpoint_resync_through_a_faulty_channel_retries_until_landed() {
    // A checkpoint lost to the transport is not fatal: the next round
    // ships another one, deterministically from the seed.
    let (mut leader, mut follower) = leader_and_follower(8);
    let mut transport = Transport::new(9, FaultPlan::drops(0.5));
    let mut rng = Rng::seed_from_u64(8);
    // Put the follower into re-sync via a gap.
    let _lost = sealed_ops_frame(&mut leader, &mut rng, 0);
    let f2 = sealed_ops_frame(&mut leader, &mut rng, 1);
    let _ = follower.ingest(&frame::encode(&f2));
    assert!(follower.needs_resync());
    let mut rounds = 0;
    while follower.needs_resync() && rounds < 64 {
        rounds += 1;
        let cp = leader.seal_frames(true).pop().expect("checkpoint frame");
        transport.send(&frame::encode(&cp));
        for arrived in transport.drain() {
            let _ = follower.ingest(&arrived);
        }
    }
    assert!(follower.is_streaming(), "re-sync must land within the bound");
    assert_eq!(follower.generation(), leader.generation());
    assert!(transport.stats().dropped > 0, "the channel must actually drop");
}
