//! Replication failover properties: leader-vs-follower fingerprints
//! are bit-identical at every checkpoint, a follower crash/restart
//! mid-stream converges back, gap detection triggers a snapshot
//! re-sync, and a promoted follower continues the log exactly like a
//! leader that never failed.

use hive_core::sim::{SimConfig, WorldBuilder};
use hive_replica::{Cluster, ClusterConfig, FaultPlan};
use hive_rng::Rng;
use hive_sim_harness::oracle::fingerprint;
use hive_sim_harness::{replica_soak, FaultMenu, ReplicaSoakConfig};

#[test]
fn fingerprints_bit_identical_at_every_checkpoint_across_seeds() {
    // Acceptance bar: ≥ 3 seeds × ≥ 200 steps under full fault
    // injection, with a mid-soak crash/restart and an end-of-soak
    // promotion, and zero fingerprint divergences anywhere.
    for seed in [41, 42, 43] {
        let report = replica_soak(ReplicaSoakConfig {
            seed,
            steps: 200,
            followers: 2,
            faults: FaultMenu::All,
            crash_at: 70,
            promote_at_end: true,
            ..ReplicaSoakConfig::default()
        });
        assert!(report.ok(), "{}", report.render());
        assert!(
            report.fingerprint_checks >= 20,
            "seed {seed}: the oracle must fire at checkpoints, got {}",
            report.fingerprint_checks
        );
        assert!(report.promoted, "seed {seed}: promotion must happen");
    }
}

#[test]
fn crash_restart_mid_stream_converges() {
    let report = replica_soak(ReplicaSoakConfig {
        seed: 7,
        steps: 80,
        followers: 2,
        faults: FaultMenu::None,
        crash_at: 30,
        promote_at_end: false,
        ..ReplicaSoakConfig::default()
    });
    assert!(report.ok(), "{}", report.render());
    // The restarted follower comes back blank, so even on clean
    // channels it must re-bootstrap through a re-sync checkpoint.
    assert!(report.resyncs >= 1, "restart must force a re-sync checkpoint");
}

fn small_world(seed: u64) -> hive_core::HiveDb {
    WorldBuilder::new(SimConfig {
        seed,
        users: 10,
        topics: 4,
        conferences: 2,
        sessions_per_conf: 3,
        papers_per_conf: 6,
        ..SimConfig::small()
    })
    .build()
    .db
}

#[test]
fn gap_detection_triggers_snapshot_resync() {
    // A heavily dropping channel loses ops frames; the follower must
    // detect the sequence gap, refuse typed-ly, and recover through an
    // on-demand checkpoint — ending bit-identical to the leader.
    let mut cluster = Cluster::new(
        small_world(11),
        1,
        ClusterConfig { seed: 11, checkpoint_every: 100, faults: FaultPlan::drops(0.5) },
    );
    let mut rng = Rng::seed_from_u64(11);
    for step in 0..60 {
        for op in hive_replica::synth::step_ops(cluster.leader_hive(), step, &mut rng) {
            let _ = cluster.apply(op);
        }
        cluster.commit();
    }
    assert!(cluster.heal(64), "drops at p=0.5 must still converge within the bound");
    let stats = cluster.stats();
    assert!(stats.gaps > 0, "a dropping channel must produce detected gaps");
    assert!(stats.resync_checkpoints > 0, "gaps must trigger snapshot re-sync");
    let follower = cluster.follower(0).expect("slot 0 exists");
    let fhive = follower.hive().expect("caught-up follower has state");
    assert_eq!(
        fingerprint(cluster.leader_hive()).diff(&fingerprint(fhive)),
        Vec::<String>::new(),
        "re-synced follower must be bit-identical to the leader"
    );
}

#[test]
fn promoted_follower_continues_log_like_a_never_failed_leader() {
    // Two clusters over bit-identical worlds, driven by identical
    // forked op streams. Cluster A promotes follower 0 halfway;
    // cluster B keeps its original leader the whole time. Afterwards
    // both leaders must agree on every frame sequence number and
    // answer the full query battery bit-for-bit — the promoted
    // instance is indistinguishable from a leader that never failed.
    let cfg = ClusterConfig { seed: 99, checkpoint_every: 6, faults: FaultPlan::none() };
    let mut a = Cluster::new(small_world(23), 2, cfg);
    let mut b = Cluster::new(small_world(23), 2, cfg);
    let mut rng_a = Rng::seed_from_u64(555);
    let mut rng_b = Rng::seed_from_u64(555);

    let mut drive = |c: &mut Cluster, rng: &mut Rng, steps: std::ops::Range<usize>| {
        for step in steps {
            for op in hive_replica::synth::step_ops(c.leader_hive(), step, rng) {
                let _ = c.apply(op);
            }
            c.commit();
        }
    };

    drive(&mut a, &mut rng_a, 0..40);
    drive(&mut b, &mut rng_b, 0..40);
    assert!(a.heal(8) && b.heal(8));
    assert_eq!(a.leader().next_seq(), b.leader().next_seq());

    // Failover in A only.
    a.promote(0).expect("caught-up follower promotes");
    assert_eq!(a.follower_count(), 1, "the promoted slot leaves the follower set");

    drive(&mut a, &mut rng_a, 40..80);
    drive(&mut b, &mut rng_b, 40..80);
    assert!(a.heal(8) && b.heal(8));

    assert_eq!(
        a.leader().next_seq(),
        b.leader().next_seq(),
        "the promoted leader must continue the exact sequence numbering"
    );
    assert_eq!(
        fingerprint(a.leader_hive()).diff(&fingerprint(b.leader_hive())),
        Vec::<String>::new(),
        "promoted-leader state must match the never-failed leader bit-for-bit"
    );
    // And A's surviving follower tracked the promoted leader just as
    // B's followers tracked the original.
    let fa = a.follower(0).and_then(|f| f.hive()).expect("survivor caught up");
    assert_eq!(
        fingerprint(a.leader_hive()).diff(&fingerprint(fa)),
        Vec::<String>::new(),
        "the surviving follower must stay bit-identical under the new leader"
    );
}

#[test]
fn promotion_of_a_lagging_follower_is_refused_typed() {
    let mut cluster = Cluster::new(
        small_world(31),
        1,
        ClusterConfig { seed: 31, checkpoint_every: 8, faults: FaultPlan::none() },
    );
    let mut rng = Rng::seed_from_u64(31);
    for step in 0..10 {
        for op in hive_replica::synth::step_ops(cluster.leader_hive(), step, &mut rng) {
            let _ = cluster.apply(op);
        }
    }
    // Pending ops are sealed at promote time's seq check: the follower
    // has not seen the next commit, so it lags once we commit without
    // shipping (crash its channel by taking it down).
    cluster.crash_follower(0).expect("slot exists");
    cluster.commit();
    cluster.restart_follower(0).expect("slot exists");
    let err = cluster.promote(0).expect_err("a lagging follower must not promote");
    assert!(
        matches!(err, hive_replica::ReplicaError::NotCaughtUp { .. }),
        "want NotCaughtUp, got {err:?}"
    );
    // After healing it is promotable.
    assert!(cluster.heal(8));
    cluster.promote(0).expect("caught-up follower promotes");
}
