//! A small study of the peer-recommendation engine: how the evidence mix
//! and the blend strategy shape who gets recommended, and how a single
//! interaction (a question, a check-in) shifts the ranking in real time.
//!
//! Run: `cargo run -p hive-core --example peer_recommendation_study`

use hive_core::evidence::combined_score;
use hive_core::model::QaTarget;
use hive_core::peers::{PeerRecConfig, PeerStrategy};
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn main() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let me = users[0];
    let name = |hive: &Hive, u| hive.db().get_user(u).expect("exists").name.clone();
    println!("peer recommendation study for {}", name(&hive, me));

    // --- the three strategies side by side --------------------------------
    println!("\nstrategy comparison (top 5):");
    for strategy in [PeerStrategy::Blend, PeerStrategy::PprOnly, PeerStrategy::EvidenceOnly] {
        let recs = hive.recommend_peers(
            me,
            PeerRecConfig::defaults().with_strategy(strategy),
        );
        let list: Vec<String> = recs
            .iter()
            .map(|r| format!("{} ({:.2})", name(&hive, r.user), r.score))
            .collect();
        println!("  {strategy:?}: {}", list.join(", "));
    }

    // --- the evidence anatomy of the top pick ------------------------------
    let recs = hive.recommend_peers(me, PeerRecConfig::default());
    let top = recs.first().expect("recommendations exist");
    println!(
        "\nwhy {} (combined evidence {:.3}):",
        name(&hive, top.user),
        combined_score(&top.reasons)
    );
    for item in &top.reasons {
        println!("  {:<28} {:.3}  {}", item.kind.label(), item.score, item.explanation);
    }
    println!("sessions they'll likely attend:");
    for (s, score) in &top.likely_sessions {
        println!(
            "  {:.2}  {}",
            score,
            hive.db().get_session(*s).expect("exists").title
        );
    }

    // --- interactions move the needle ---------------------------------------
    // Pick a currently low-ranked peer and interact with them.
    let low = recs.last().expect("non-empty").user;
    let before = recs.iter().position(|r| r.user == low).unwrap_or(usize::MAX);
    println!(
        "\ninteracting with {} (currently rank {})...",
        name(&hive, low),
        before + 1
    );
    // Attend the same session and exchange a question/answer.
    let session = hive.db().session_ids()[0];
    hive.advance_clock(1);
    hive.check_in(me, session).expect("valid");
    hive.check_in(low, session).expect("valid");
    let q = hive
        .ask_question(me, QaTarget::Session(session), "what about the decay parameter?", false)
        .expect("valid");
    hive.answer_question(low, q, "it bounds the diffusion neighborhood")
        .expect("valid");
    let _ = hive.follow(me, low); // and start following them
    let after_recs = hive.recommend_peers(me, PeerRecConfig::default());
    let after = after_recs
        .iter()
        .position(|r| r.user == low)
        .map(|p| (p + 1).to_string())
        .unwrap_or_else(|| "off-list".into());
    println!(
        "rank before: {}, after co-attending + Q&A: {}",
        before + 1,
        after
    );
    println!("(reciprocal activity is one of the paper's nine relationship evidences)");
}
