//! Quickstart: stand up a Hive platform, register a handful of
//! researchers and a conference, and run one call from each Table 1
//! service group.
//!
//! Run: `cargo run -p hive-core --example quickstart`

use hive_core::clock::Timestamp;
use hive_core::discover::DiscoverConfig;
use hive_core::model::*;
use hive_core::peers::PeerRecConfig;
use hive_core::reports::ReportScope;
use hive_core::{Hive, HiveDb};

fn main() {
    // ---- populate a tiny platform --------------------------------------
    let mut db = HiveDb::new();
    let zach = db.add_user(
        User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()]),
    );
    let ann = db.add_user(
        User::new("Ann", "UniTo").with_interests(vec!["tensor streams".into()]),
    );
    let bob = db.add_user(
        User::new("Bob", "MIT").with_interests(vec!["transaction processing".into()]),
    );
    let edbt = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
    let tensors = db
        .add_session(
            Session::new(edbt, "Tensor Streams", "R1")
                .with_topics(vec!["tensor stream monitoring".into()]),
        )
        .expect("conference exists");
    let paper = db
        .add_paper(
            Paper::new("Compressed tensor monitoring", vec![zach])
                .with_abstract(
                    "Randomized ensembles sketch tensor streams so structural \
                     changes surface in real time.",
                )
                .at_venue(edbt),
        )
        .expect("authors exist");
    db.add_paper(
        Paper::new("Detecting change in streams", vec![ann])
            .with_abstract("Structural change detection over evolving tensor streams.")
            .at_venue(edbt)
            .citing(vec![paper]),
    )
    .expect("valid paper");
    for u in [zach, ann, bob] {
        db.attend(u, edbt).expect("valid");
    }
    db.check_in(ann, tensors).expect("valid");

    let mut hive = Hive::new(db);

    // ---- concept map & personalization ---------------------------------
    let concepts = hive.bootstrap_concepts(
        "my notes",
        &["tensor stream sketches detect changes in evolving social networks"],
    );
    println!("bootstrapped concepts: {:?}", concepts.top_concepts(3));

    // ---- peer network ----------------------------------------------------
    let peers = hive.recommend_peers(zach, PeerRecConfig::default());
    println!("\npeers recommended for Zach:");
    for p in &peers {
        let name = hive.db().get_user(p.user).expect("exists").name.clone();
        println!("  {name} (score {:.2})", p.score);
        if let Some(reason) = p.reasons.first() {
            println!("    because: {}", reason.explanation);
        }
    }
    // Connect to the top recommendation.
    if let Some(top) = peers.first() {
        let who = top.user;
        hive.request_connection(zach, who).expect("fresh pair");
        hive.respond_connection(who, zach, true).expect("pending");
        println!("  -> connected to {}", hive.db().get_user(who).expect("exists").name);
    }

    // ---- discovery & preview ----------------------------------------------
    let hits = hive.search(zach, "structural change detection", DiscoverConfig::default());
    println!("\nsearch results for \"structural change detection\":");
    for h in hits.iter().take(3) {
        println!("  [{}] {} (score {:.3})", h.resource.kind(), h.title, h.score);
        if let Some(p) = &h.preview {
            println!("    preview: {p}");
        }
    }

    // ---- activity history & report ------------------------------------------
    let report = hive.update_report(&ReportScope::Platform, Timestamp(0), Timestamp(u64::MAX), 4);
    println!("\n{}", report.render());
}
