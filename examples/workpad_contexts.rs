//! Workpads as switchable contexts (paper Figure 4): build two workpads
//! with different "states of mind", run the same query under each, and
//! watch search results, resource recommendations, and peer suggestions
//! all follow the active pad.
//!
//! Run: `cargo run -p hive-core --example workpad_contexts`

use hive_core::discover::DiscoverConfig;
use hive_core::model::WorkpadItem;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn main() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let me = hive.db().user_ids()[0];

    // Two pads from two planted topics: "tensors" and "graphs" mindsets.
    let topic_sessions = |t: usize| {
        world
            .session_topics
            .iter()
            .filter(move |(_, tt)| *tt == t)
            .map(|(s, _)| *s)
            .take(2)
            .collect::<Vec<_>>()
    };
    let pad_tensors = hive.create_workpad(me, "tensors mindset").expect("valid");
    for s in topic_sessions(0) {
        hive.workpad_add(me, pad_tensors, WorkpadItem::Session(s)).expect("valid");
    }
    hive.workpad_note(me, pad_tensors, "ask about sketch ensemble sizes")
        .expect("owner");
    let pad_graphs = hive.create_workpad(me, "graphs mindset").expect("valid");
    for s in topic_sessions(1) {
        hive.workpad_add(me, pad_graphs, WorkpadItem::Session(s)).expect("valid");
    }

    let cfg = DiscoverConfig::defaults().with_top_k(5).with_include_users(false);
    for pad in [pad_tensors, pad_graphs] {
        hive.activate_workpad(me, pad).expect("owner");
        let pad_name = hive.db().get_workpad(pad).expect("exists").name.clone();
        println!("\n=== active workpad: \"{pad_name}\" ===");
        let ctx = hive.activity_context(me);
        println!("context terms: {:?}", ctx.terms.iter().take(6).collect::<Vec<_>>());

        println!("same query, this context — \"scalable processing\":");
        for h in hive.search(me, "scalable processing", cfg) {
            println!("  [{}] {} ({:.3})", h.resource.kind(), h.title, h.score);
        }
        println!("contextual recommendations (no query):");
        for h in hive.recommend_resources(me, cfg).into_iter().take(3) {
            println!("  [{}] {}", h.resource.kind(), h.title);
        }
        let peers = hive.recommend_peers(me, PeerRecConfig::defaults().with_top_k(3));
        let names: Vec<String> = peers
            .iter()
            .map(|r| hive.db().get_user(r.user).expect("exists").name.clone())
            .collect();
        println!("peers for this mindset: {}", names.join(", "));
    }

    // Export one pad, as the paper's sharing flow describes.
    let col = hive.export_workpad(me, pad_tensors).expect("owner");
    let other = hive.db().user_ids()[1];
    let imported = hive.import_collection(other, col).expect("exists");
    println!(
        "\nexported \"tensors mindset\" as a collection; user {} imported it as workpad {:?}",
        hive.db().get_user(other).expect("exists").name,
        imported
    );
}
