//! Querying the knowledge network directly: export the platform's
//! relationship layers into the weighted RDF store, run SPARQL-flavored
//! queries over them, explore ranked paths, and snapshot/restore the
//! whole platform.
//!
//! Run: `cargo run -p hive-core --example knowledge_queries`

use hive_core::knowledge::KnowledgeNetwork;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::HiveDb;
use hive_store::{run_query, PathQuery, StoreStats, Term};

fn main() {
    let world = WorldBuilder::new(SimConfig::small()).build();
    let kn = KnowledgeNetwork::build(&world.db);
    let store = kn.to_store(&world.db);
    let stats = StoreStats::compute(&store);
    println!(
        "knowledge store: {} triples, {} predicates",
        stats.triples,
        stats.per_predicate.len()
    );

    // --- SPARQL-flavored queries -----------------------------------------
    println!("\nco-authors of user:0 and what they wrote:");
    let rows = run_query(
        &store,
        "SELECT ?who ?paper WHERE {
             <user:0> <rel:coauthor> ?who .
             ?who <rel:authored> ?paper
         } LIMIT 5",
    )
    .expect("valid query");
    for r in &rows {
        println!("  {} wrote {} (strength {:.2})", r.values[0], r.values[1], r.score);
    }
    if rows.is_empty() {
        println!("  (user:0 has no co-authors in this seed — try another)");
    }

    println!("\nstrong co-author pairs (weight >= 0.6):");
    for r in run_query(
        &store,
        "SELECT ?a ?b WHERE { ?a <rel:coauthor> ?b [0.6] } LIMIT 5",
    )
    .expect("valid query")
    {
        println!("  {} -- {}", r.values[0], r.values[1]);
    }

    println!("\nwho checked into sessions that host presentations:");
    for r in run_query(
        &store,
        "SELECT ?who ?session WHERE {
             ?who <rel:checked_in> ?session .
             ?paper <rel:presented_in> ?session
         } LIMIT 5",
    )
    .expect("valid query")
    {
        println!("  {} was in {}", r.values[0], r.values[1]);
    }

    // --- Ranked paths (the Figure 2 primitive) ----------------------------
    let users = world.db.user_ids();
    let (a, b) = (users[0], users[users.len() / 2]);
    println!("\nstrongest connections {} -> {}:", a.iri(), b.iri());
    match PathQuery::new(Term::iri(a.iri()), Term::iri(b.iri()))
        .top_k(3)
        .run(&store)
    {
        Ok(paths) if !paths.is_empty() => {
            for (i, p) in paths.iter().enumerate() {
                println!("  {}. [{:.3}] {}", i + 1, p.score, p.explain(&store));
            }
        }
        _ => println!("  no path within 4 hops"),
    }

    // --- Platform persistence ----------------------------------------------
    let json = world.db.to_json().expect("serializes");
    let restored = HiveDb::from_json(&json).expect("restores");
    println!(
        "\nplatform snapshot: {} bytes of JSON; restored {} users, {} log records",
        json.len(),
        restored.user_ids().len(),
        restored.activity_log().len()
    );
    // The restored platform derives the identical knowledge network.
    let kn2 = KnowledgeNetwork::build(&restored);
    let store2 = kn2.to_store(&restored);
    println!(
        "restored knowledge store: {} triples ({})",
        store2.len(),
        if store2.len() == store.len() { "identical" } else { "MISMATCH" }
    );
}
