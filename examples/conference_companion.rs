//! The paper's §1.1 use scenario as a runnable walkthrough: "Zach" at a
//! simulated EDBT'13, from pre-conference prep to the post-conference
//! debrief with his advisor. Each step prints what the paper's narrative
//! describes.
//!
//! Run: `cargo run -p hive-core --example conference_companion`

use hive_core::clock::Timestamp;
use hive_core::model::*;
use hive_core::peers::PeerRecConfig;
use hive_core::sim::{SimConfig, WorldBuilder};
use hive_core::Hive;

fn main() {
    // A populated conference world stands in for the production MM'11 /
    // SIGMOD'12 deployments.
    let world = WorldBuilder::new(SimConfig::small()).build();
    let mut hive = Hive::new(world.db);
    let users = hive.db().user_ids();
    let zach = users[0];
    let name = |hive: &Hive, u| hive.db().get_user(u).expect("exists").name.clone();
    println!("== Hive conference companion: {} ==", name(&hive, zach));

    // --- Before leaving: upload slides, check who's coming ----------------
    let my_paper = *hive
        .db()
        .papers_of(zach)
        .first()
        .expect("the simulator gives everyone a paper eventually — pick any");
    let session = hive.db().session_ids()[0];
    let pres = hive
        .add_presentation(
            Presentation::new(my_paper, zach, session)
                .with_slides("motivation; model; equation (with a typo); evaluation"),
        )
        .expect("zach authors this paper");
    println!("\n[prep] uploaded slides for {:?}", hive.db().get_paper(my_paper).unwrap().title);

    let recs = hive.recommend_peers(zach, PeerRecConfig::default());
    println!("[prep] Hive proposes {} researchers to meet:", recs.len());
    for r in &recs {
        println!(
            "  - {} (score {:.2}); likely sessions: {:?}",
            name(&hive, r.user),
            r.score,
            r.likely_sessions
                .iter()
                .map(|(s, _)| hive.db().get_session(*s).unwrap().title.clone())
                .collect::<Vec<_>>()
        );
        if let Some(reason) = r.reasons.first() {
            println!("      evidence: {}", reason.explanation);
        }
    }

    // Follow the two most promising and pin them on a workpad.
    let pad = hive.create_workpad(zach, "session").expect("valid");
    for r in recs.iter().take(2) {
        let _ = hive.follow(zach, r.user);
        let _ = hive.workpad_add(zach, pad, WorkpadItem::UserAvatar(r.user));
    }
    println!("[prep] following {} peers; avatars pinned to the 'session' workpad", 2);

    // --- Day 1: follow the keynote traffic, join a trending session --------
    let t0 = hive.db().now();
    hive.advance_clock(10);
    let followees = hive.db().following(zach);
    let graph_session = hive.db().session_ids()[1];
    for &f in followees.iter().take(2) {
        hive.check_in(f, graph_session).expect("valid");
    }
    let updates = hive.updates_for(zach, t0);
    println!("\n[day 1] real-time updates:");
    for u in updates.iter().take(4) {
        println!("  {}", u.text);
    }
    hive.check_in(zach, graph_session).expect("valid");
    let q = hive
        .ask_question(
            zach,
            QaTarget::Session(graph_session),
            "how does the partitioning react to streaming updates?",
            true, // also broadcast to the session hashtag
        )
        .expect("valid");
    if let Some(&answerer) = followees.first() {
        hive.advance_clock(3);
        hive.answer_question(answerer, q, "lazily, with bounded staleness")
            .expect("valid");
    }
    println!("[day 1] session ticker (Hive + twitter bridge):");
    for line in hive.session_ticker(graph_session, t0).iter().take(5) {
        println!("  {line}");
    }

    // --- Break: a question on Zach's own talk; fix the typo ----------------
    let t1 = hive.db().now();
    hive.advance_clock(5);
    let asker = users[3];
    hive.ask_question(
        asker,
        QaTarget::Presentation(pres),
        "is the equation on slide 3 correct?",
        false,
    )
    .expect("valid");
    for u in hive.updates_for(zach, t1) {
        println!("\n[break] {}", u.text);
    }
    hive.revise_slides(zach, pres, "motivation; model; equation (fixed); evaluation")
        .expect("presenter");
    println!("[break] typo fixed (slides revision {})", hive.db().get_presentation(pres).unwrap().revision);
    // Thank the reporter and connect.
    if hive.request_connection(zach, asker).is_ok() {
        hive.respond_connection(asker, zach, true).expect("pending");
        println!("[break] connected with {}", name(&hive, asker));
    }

    // --- After the event: the advisor's digest ------------------------------
    let advisor = users[4];
    hive.follow(advisor, zach).expect("valid");
    let digest = hive.digest(advisor, Timestamp(0));
    println!("\n[debrief] advisor's digest of Zach's conference:");
    for (cat, n) in &digest.counts {
        println!("  {cat}: {n} events");
    }
    println!("  ({} updates total)", digest.updates.len());
}
